//! Reproductions of every table and figure in the paper's evaluation (§5).
//!
//! Each function returns structured rows so the `nakika-bench` experiment
//! binaries can print them and EXPERIMENTS.md can record paper-vs-measured.
//! Absolute numbers differ from the paper (2006 Pentium 4 + Apache vs. a
//! modern CPU + this reimplementation); what is reproduced is the *shape*:
//! orderings, ratios and crossovers.

use crate::net::{LinkModel, ServerModel, SimProxy};
use crate::stats::Summary;
use crate::workload::{client_ip, ScriptedOrigin, SimmWorkload, SpecWorkload, MICRO_PAGE_BYTES};
use nakika_core::node::OriginFetch;
use nakika_core::resource::ResourceKind;
use nakika_core::scripts;
use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::{NodeBuilder, NodeHandle};
use nakika_http::Request;
use nakika_overlay::cluster::sites;
use nakika_overlay::{key_for, Location, Overlay};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Table 1 / Table 2: micro-benchmark configurations and latency
// ---------------------------------------------------------------------------

/// The nine micro-benchmark configurations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroConfig {
    /// A regular Apache proxy.
    Proxy,
    /// The proxy with an integrated DHT.
    Dht,
    /// Empty event handlers for the two administrative control stages.
    Admin,
    /// Admin plus a stage evaluating predicates for `n` policy objects, none
    /// matching.
    Pred(usize),
    /// Admin plus a stage with one matching predicate and empty handlers.
    Match1,
}

impl MicroConfig {
    /// All configurations in the order Table 2 reports them.
    pub fn all() -> Vec<MicroConfig> {
        vec![
            MicroConfig::Proxy,
            MicroConfig::Dht,
            MicroConfig::Admin,
            MicroConfig::Pred(0),
            MicroConfig::Pred(1),
            MicroConfig::Match1,
            MicroConfig::Pred(10),
            MicroConfig::Pred(50),
            MicroConfig::Pred(100),
        ]
    }

    /// The configuration's display name as used in Table 2.
    pub fn name(&self) -> String {
        match self {
            MicroConfig::Proxy => "Proxy".to_string(),
            MicroConfig::Dht => "DHT".to_string(),
            MicroConfig::Admin => "Admin".to_string(),
            MicroConfig::Pred(n) => format!("Pred-{n}"),
            MicroConfig::Match1 => "Match-1".to_string(),
        }
    }
}

/// One row of Table 2: latency for accessing the static page.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Configuration name.
    pub config: String,
    /// Cold-cache latency in milliseconds.
    pub cold_ms: f64,
    /// Warm-cache latency in milliseconds.
    pub warm_ms: f64,
}

/// The benchmark URL: Google's home page without inline images.
const MICRO_URL: &str = "http://www.google.com/";

fn build_micro_setup(config: MicroConfig) -> NodeHandle {
    let origin = ScriptedOrigin::micro_benchmark();
    let mut builder = match config {
        MicroConfig::Proxy => NodeBuilder::plain_proxy("bench"),
        MicroConfig::Dht => NodeBuilder::proxy_with_dht("bench"),
        _ => NodeBuilder::scripted("bench"),
    }
    .without_resource_controls(); // resource control disabled (§5.1)
    match config {
        MicroConfig::Proxy | MicroConfig::Dht => {}
        MicroConfig::Admin => {
            origin.route_script("/clientwall.js", scripts::EMPTY_WALL);
            origin.route_script("/serverwall.js", scripts::EMPTY_WALL);
        }
        MicroConfig::Pred(n) => {
            origin.route_script("/clientwall.js", scripts::EMPTY_WALL);
            origin.route_script("/serverwall.js", scripts::EMPTY_WALL);
            origin.route_script("/nakika.js", &scripts::pred_n_stage(n));
        }
        MicroConfig::Match1 => {
            origin.route_script("/clientwall.js", scripts::EMPTY_WALL);
            origin.route_script("/serverwall.js", scripts::EMPTY_WALL);
            origin.route_script("/nakika.js", &scripts::match_1_stage("www.google.com"));
        }
    }
    if config == MicroConfig::Dht {
        let overlay = Arc::new(Overlay::with_defaults());
        let id = key_for("bench");
        overlay.join(id, sites::US_EAST);
        overlay.join(key_for("other"), sites::US_EAST_LAN);
        builder = builder.overlay(overlay, id);
    }
    builder.origin(Arc::new(origin)).build()
}

/// Runs the Table 2 micro-benchmark: cold- and warm-cache latency for
/// accessing the 2,096-byte static page under each configuration.  Latency is
/// the measured processing time of the real node plus the modelled LAN
/// exchange (client, proxy and server share a switched 100 Mbit Ethernet).
pub fn table2(iterations: usize) -> Vec<MicroRow> {
    let lan = LinkModel::lan();
    let link_ms = lan.exchange_ms(400, MICRO_PAGE_BYTES) + lan.exchange_ms(400, MICRO_PAGE_BYTES);
    MicroConfig::all()
        .into_iter()
        .map(|config| {
            let mut cold = Summary::new();
            let mut warm = Summary::new();
            for i in 0..iterations.max(1) {
                let edge = build_micro_setup(config);
                let start = Instant::now();
                let _ = edge.call(Request::get(MICRO_URL), &RequestCtx::at(10));
                cold.add(start.elapsed().as_secs_f64() * 1000.0 + link_ms);
                // Warm cache: the page, the scripts, the decision trees and
                // the scripting contexts are all reused.
                let start = Instant::now();
                let _ = edge.call(Request::get(MICRO_URL), &RequestCtx::at(20 + i as u64));
                warm.add(
                    start.elapsed().as_secs_f64() * 1000.0 + lan.exchange_ms(400, MICRO_PAGE_BYTES),
                );
            }
            MicroRow {
                config: config.name(),
                cold_ms: cold.mean(),
                warm_ms: warm.mean(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.1 capacity: scripted node vs. plain proxy
// ---------------------------------------------------------------------------

/// Result of the capacity experiment.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// Plain-proxy capacity in requests per second.
    pub proxy_rps: f64,
    /// Match-1 (scripted) capacity in requests per second.
    pub match1_rps: f64,
    /// Sustained throughput with `clients` load generators for the proxy.
    pub proxy_at_load: f64,
    /// Sustained throughput with `clients` load generators for Match-1.
    pub match1_at_load: f64,
    /// Number of load generators used for the `*_at_load` figures.
    pub clients: usize,
}

fn measure_warm_service_ms(config: MicroConfig, samples: usize) -> f64 {
    let edge = build_micro_setup(config);
    let _ = edge.call(Request::get(MICRO_URL), &RequestCtx::at(1)); // warm everything
    let start = Instant::now();
    for i in 0..samples.max(1) {
        let _ = edge.call(Request::get(MICRO_URL), &RequestCtx::at(2 + i as u64));
    }
    (start.elapsed().as_secs_f64() * 1000.0 / samples.max(1) as f64).max(0.001)
}

/// Measures node capacity (requests per second at saturation) for the plain
/// proxy and the Match-1 scripted configuration, and the sustained throughput
/// with `clients` closed-loop load generators — the paper reports 603 rps vs
/// 294 rps on its hardware, i.e. roughly a 2× gap.
pub fn capacity(clients: usize, samples: usize) -> CapacityResult {
    let proxy_ms = measure_warm_service_ms(MicroConfig::Proxy, samples);
    let match1_ms = measure_warm_service_ms(MicroConfig::Match1, samples);
    let think_ms = 1.0;
    let proxy_model = ServerModel {
        service_ms: proxy_ms,
        think_ms,
    };
    let match1_model = ServerModel {
        service_ms: match1_ms,
        think_ms,
    };
    CapacityResult {
        proxy_rps: proxy_model.capacity_rps(),
        match1_rps: match1_model.capacity_rps(),
        proxy_at_load: proxy_model.throughput_rps(clients),
        match1_at_load: match1_model.throughput_rps(clients),
        clients,
    }
}

// ---------------------------------------------------------------------------
// §5.1 resource controls under a flash crowd
// ---------------------------------------------------------------------------

/// Result of one resource-control run.
#[derive(Debug, Clone)]
pub struct ResourceControlRow {
    /// Scenario label (e.g. "30 generators", "30 generators + misbehaving").
    pub scenario: String,
    /// Throughput without resource controls (requests per second).
    pub rps_without: f64,
    /// Throughput with resource controls.
    pub rps_with: f64,
    /// Fraction of requests rejected by throttling (with controls).
    pub reject_fraction: f64,
    /// Fraction of requests dropped by termination (with controls).
    pub drop_fraction: f64,
}

/// The misbehaving script: consumes all available memory by repeatedly
/// doubling a string (paper §5.1).
const MISBEHAVING_SITE_SCRIPT: &str = r#"
p = new Policy();
p.url = ["hog.example.org"];
p.onResponse = function() {
    var s = 'xxxxxxxxxxxxxxxx';
    while (true) { s = s + s; }
};
p.register();
"#;

fn flash_crowd_origin(with_hog: bool) -> Arc<ScriptedOrigin> {
    let origin = ScriptedOrigin::micro_benchmark().with_empty_walls();
    origin.route_script("/clientwall.js", scripts::EMPTY_WALL);
    origin.route_script("/serverwall.js", scripts::EMPTY_WALL);
    if with_hog {
        origin.route_script("/nakika.js", MISBEHAVING_SITE_SCRIPT);
    }
    Arc::new(origin)
}

fn run_flash_crowd(controls: bool, requests: usize, hog_every: Option<usize>) -> (f64, f64, f64) {
    // Calibrate CPU/memory capacity per control period so a flash crowd of
    // this size congests the node (the paper's proxy saturates at ~300 rps).
    let mut builder = NodeBuilder::scripted("edge")
        .control_period_secs(1)
        .resource_capacity(ResourceKind::Cpu, 40_000.0)
        .resource_capacity(ResourceKind::Memory, 8.0 * 1024.0 * 1024.0)
        .origin(flash_crowd_origin(hog_every.is_some()));
    if !controls {
        builder = builder.without_resource_controls();
    }
    let edge = builder.build();

    let start = Instant::now();
    let mut completed = 0u64;
    for i in 0..requests {
        let now = i as u64 / 10; // ~10 offered requests per virtual second
        let url = match hog_every {
            Some(every) if i % every == 0 => "http://hog.example.org/burn",
            _ => "http://www.google.com/",
        };
        let result = edge.call(
            Request::get(url).with_client_ip(client_ip(i)),
            &RequestCtx::at(now),
        );
        if matches!(result, Ok(ref r) if r.status.is_success()) {
            completed += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-6);
    let stats = edge.node().stats();
    let offered = requests as f64;
    (
        completed as f64 / elapsed,
        stats.throttled as f64 / offered,
        stats.terminated as f64 / offered,
    )
}

/// Runs the flash-crowd / misbehaving-script experiment with and without
/// congestion-based resource controls.  `requests` is the offered load per
/// scenario (the paper drives the node at and beyond its ~300 rps capacity).
pub fn resource_controls(requests: usize) -> Vec<ResourceControlRow> {
    let scenarios: [(&str, Option<usize>); 3] = [
        ("flash crowd (at capacity)", None),
        ("flash crowd (3x overload)", None),
        ("flash crowd + misbehaving script", Some(10)),
    ];
    scenarios
        .iter()
        .enumerate()
        .map(|(i, (label, hog))| {
            let load = if i == 1 { requests * 3 } else { requests };
            let (rps_without, _, _) = run_flash_crowd(false, load, *hog);
            let (rps_with, reject, drop) = run_flash_crowd(true, load, *hog);
            ResourceControlRow {
                scenario: label.to_string(),
                rps_without,
                rps_with,
                reject_fraction: reject,
                drop_fraction: drop,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.2 SIMMs: single server vs Na Kika, local and wide-area (Figure 7)
// ---------------------------------------------------------------------------

/// One configuration's results for a SIMM experiment.
#[derive(Debug, Clone)]
pub struct SimmResult {
    /// Configuration label ("single server", "Na Kika cold", "Na Kika warm").
    pub config: String,
    /// Number of simulated clients.
    pub clients: usize,
    /// 90th-percentile latency for HTML content, in milliseconds.
    pub html_p90_ms: f64,
    /// Mean latency for HTML content, in milliseconds.
    pub html_mean_ms: f64,
    /// Fraction of multimedia accesses seeing at least 140 kbit/s.
    pub video_ok_fraction: f64,
    /// Fraction of multimedia accesses that failed outright.
    pub video_failure_fraction: f64,
    /// CDF of HTML latency (seconds), for Figure 7.
    pub html_cdf: crate::stats::Cdf,
}

/// Parameters of a SIMM experiment run.
#[derive(Debug, Clone)]
pub struct SimmScenario {
    /// Number of clients.
    pub clients: usize,
    /// Accesses per client.
    pub accesses_per_client: usize,
    /// Client-to-proxy link.
    pub client_link: LinkModel,
    /// Proxy-to-origin (and client-to-origin, for the single server) link.
    pub origin_link: LinkModel,
    /// Origin service time for a personalised XML page (content creation).
    pub origin_dynamic_ms: f64,
    /// Origin service time for rendering XML to HTML (offloaded to the edge
    /// in the Na Kika port).
    pub origin_render_ms: f64,
    /// Client think time between accesses.
    pub think_ms: f64,
}

impl SimmScenario {
    /// The paper's local setup: everything on a switched 100 Mbit LAN.
    pub fn local(clients: usize) -> SimmScenario {
        SimmScenario {
            clients,
            accesses_per_client: 8,
            client_link: LinkModel::lan(),
            origin_link: LinkModel::lan(),
            origin_dynamic_ms: 4.0,
            origin_render_ms: 6.0,
            think_ms: 2_000.0,
        }
    }

    /// The paper's shaped-WAN setup: 80 ms artificial delay and an 8 Mbit/s
    /// cap between the server and everyone else.
    pub fn shaped_wan(clients: usize) -> SimmScenario {
        SimmScenario {
            origin_link: LinkModel {
                latency_ms: 40.0,
                bandwidth_bps: 8e6,
            },
            ..SimmScenario::local(clients)
        }
    }

    /// The PlanetLab-style wide-area setup: clients on the US East Coast,
    /// West Coast and Asia; origin in New York; per-slice bandwidth limited.
    pub fn wide_area(clients: usize) -> SimmScenario {
        SimmScenario {
            clients,
            accesses_per_client: 6,
            client_link: LinkModel {
                latency_ms: 3.0,
                bandwidth_bps: 5e6,
            },
            origin_link: LinkModel::between(&sites::US_EAST, &sites::ASIA, 2e6),
            origin_dynamic_ms: 4.0,
            origin_render_ms: 6.0,
            think_ms: 1_000.0,
        }
    }
}

/// Runs the single-server baseline for a SIMM scenario.
pub fn simm_single_server(scenario: &SimmScenario) -> SimmResult {
    let workload = SimmWorkload::default();
    let accesses = workload.generate(scenario.clients, scenario.accesses_per_client);
    // The single server performs personalisation *and* rendering for HTML and
    // serves all multimedia itself.
    let html_model = ServerModel {
        service_ms: scenario.origin_dynamic_ms + scenario.origin_render_ms,
        think_ms: scenario.think_ms,
    };
    let mut html = Summary::new();
    let mut video_kbps = Summary::new();
    let mut video_failures = 0usize;
    let mut videos = 0usize;
    // Bandwidth at the origin's access link is shared by the clients that are
    // *concurrently active* (downloading rather than thinking); this is what
    // starves video playback in the paper's WAN runs while leaving the LAN
    // runs unconstrained.
    let avg_bytes = workload.html_bytes as f64 * (1.0 - workload.video_fraction)
        + workload.video_bytes as f64 * workload.video_fraction;
    let base_transfer_ms =
        crate::net::transfer_ms(avg_bytes as usize, scenario.origin_link.bandwidth_bps);
    let busy_ms = html_model.service_ms + 2.0 * scenario.origin_link.latency_ms + base_transfer_ms;
    let active = ((scenario.clients as f64) * busy_ms / (busy_ms + scenario.think_ms)).max(1.0);
    let shared_origin_link = LinkModel {
        latency_ms: scenario.origin_link.latency_ms,
        bandwidth_bps: (scenario.origin_link.bandwidth_bps / active).max(8_000.0),
    };
    for access in &accesses {
        match access {
            crate::workload::SimmAccess::Html { .. } => {
                let latency = html_model.response_ms(scenario.clients)
                    + shared_origin_link.exchange_ms(400, workload.html_bytes);
                html.add(latency);
            }
            crate::workload::SimmAccess::Video { .. } => {
                videos += 1;
                let kbps = shared_origin_link.effective_kbps(workload.video_bytes);
                if kbps < 20.0 {
                    video_failures += 1;
                } else {
                    video_kbps.add(kbps);
                }
            }
        }
    }
    SimmResult {
        config: "single server".to_string(),
        clients: scenario.clients,
        html_p90_ms: html.percentile(90.0),
        html_mean_ms: html.mean(),
        video_ok_fraction: if videos == 0 {
            0.0
        } else {
            video_kbps.fraction(|k| k >= 140.0) * (videos - video_failures) as f64 / videos as f64
        },
        video_failure_fraction: if videos == 0 {
            0.0
        } else {
            video_failures as f64 / videos as f64
        },
        html_cdf: html.cdf(40),
    }
}

/// Runs the Na Kika configuration for a SIMM scenario.  `warm` pre-populates
/// every proxy cache before measurement (the paper's warm-cache runs).
pub fn simm_nakika(scenario: &SimmScenario, proxies: usize, warm: bool) -> SimmResult {
    let workload = SimmWorkload::default();
    let origin = workload.origin();
    let dyn_origin: Arc<dyn OriginFetch> = origin.clone();
    let overlay = Arc::new(Overlay::with_defaults());

    // Proxies spread over the client regions; each client uses the proxy for
    // its region (DNS redirection to a nearby node).
    let regions = [sites::US_EAST, sites::US_WEST, sites::ASIA];
    let mut sim_proxies = Vec::new();
    for i in 0..proxies.max(1) {
        let location = regions[i % regions.len()];
        let id = key_for(&format!("edge-{i}"));
        overlay.join(id, location);
        let handle = NodeBuilder::scripted(&format!("edge-{i}"))
            .without_resource_controls()
            .overlay(overlay.clone(), id)
            .origin(dyn_origin.clone())
            .build();
        sim_proxies.push(SimProxy::new(
            handle,
            location,
            scenario.client_link,
            LinkModel {
                latency_ms: location
                    .latency_ms(&sites::US_EAST)
                    .max(scenario.origin_link.latency_ms),
                bandwidth_bps: scenario.origin_link.bandwidth_bps,
            },
            ServerModel {
                // The origin only personalises; rendering happens on the edge.
                service_ms: scenario.origin_dynamic_ms,
                think_ms: scenario.think_ms,
            },
            2.0 + scenario.origin_render_ms,
        ));
    }

    let accesses = workload.generate(scenario.clients, scenario.accesses_per_client);
    if warm {
        // Pre-warm: each proxy sees the shared content once.
        for (i, proxy) in sim_proxies.iter().enumerate() {
            for access in accesses.iter().filter(|a| a.is_video()).take(200) {
                let req = access.to_request(client_ip(1000 + i));
                proxy.run_request(req, 1, 1);
            }
        }
    }

    // The origin's load now comes only from misses / personalised pages; the
    // per-client origin load is far lower than in the single-server case.
    let origin_load_per_request = (scenario.clients / sim_proxies.len().max(1)).max(1);

    let mut html = Summary::new();
    let mut video_kbps = Summary::new();
    let mut video_failures = 0usize;
    let mut videos = 0usize;
    for (i, access) in accesses.iter().enumerate() {
        let proxy = &sim_proxies[i % sim_proxies.len()];
        let req = access.to_request(client_ip(i % scenario.clients.max(1)));
        let now = 100 + (i / 50) as u64;
        let (_, timing) = proxy.run_request(req, now, origin_load_per_request);
        match access {
            crate::workload::SimmAccess::Html { .. } => html.add(timing.total_ms),
            crate::workload::SimmAccess::Video { .. } => {
                videos += 1;
                // Served from the edge when cached: the client link's
                // bandwidth applies; otherwise the (shared) origin path does.
                let link = if timing.origin_accesses == 0 {
                    scenario.client_link
                } else {
                    LinkModel {
                        latency_ms: proxy.origin_link.latency_ms,
                        bandwidth_bps: (proxy.origin_link.bandwidth_bps
                            / origin_load_per_request as f64)
                            .max(8_000.0),
                    }
                };
                let kbps = link.effective_kbps(timing.response_bytes.max(workload.video_bytes));
                if kbps < 20.0 {
                    video_failures += 1;
                } else {
                    video_kbps.add(kbps);
                }
            }
        }
    }
    SimmResult {
        config: if warm { "Na Kika warm" } else { "Na Kika cold" }.to_string(),
        clients: scenario.clients,
        html_p90_ms: html.percentile(90.0),
        html_mean_ms: html.mean(),
        video_ok_fraction: if videos == 0 {
            0.0
        } else {
            video_kbps.fraction(|k| k >= 140.0) * (videos - video_failures) as f64 / videos as f64
        },
        video_failure_fraction: if videos == 0 {
            0.0
        } else {
            video_failures as f64 / videos as f64
        },
        html_cdf: html.cdf(40),
    }
}

/// Runs the Figure-7 wide-area comparison for the given client counts,
/// returning (single server, Na Kika cold, Na Kika warm) per count.
pub fn figure7(client_counts: &[usize], proxies: usize) -> Vec<SimmResult> {
    let mut results = Vec::new();
    for &clients in client_counts {
        let scenario = SimmScenario::wide_area(clients);
        results.push(simm_single_server(&scenario));
        results.push(simm_nakika(&scenario, proxies, false));
        results.push(simm_nakika(&scenario, proxies, true));
    }
    results
}

// ---------------------------------------------------------------------------
// §5.3 SPECweb99-like hard-state experiment
// ---------------------------------------------------------------------------

/// Result of the SPECweb99-like experiment.
#[derive(Debug, Clone)]
pub struct SpecResult {
    /// Configuration label.
    pub config: String,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
    /// Throughput in requests per second.
    pub rps: f64,
}

/// Runs the hard-state experiment: a single PHP-style dynamic server on the
/// East Coast versus the same workload spread over `edge_nodes` Na Kika nodes
/// on the West Coast with replicated user registrations.
pub fn specweb(connections: usize, requests: usize, edge_nodes: usize) -> Vec<SpecResult> {
    let workload = SpecWorkload::default();
    let accesses = workload.generate(connections, requests);
    let coast_to_coast = LinkModel::between(&sites::US_WEST, &sites::US_EAST, 5e6);
    let local = LinkModel::lan();

    // --- Single PHP server -------------------------------------------------
    // Every request crosses the country and queues at one server; dynamic
    // requests are expensive (interpreted PHP + database access).
    let php_model = ServerModel {
        service_ms: 14.0,
        think_ms: 500.0,
    };
    let mut php = Summary::new();
    for access in &accesses {
        let dynamic = !matches!(access, crate::workload::SpecAccess::Static { .. });
        let service = php_model.response_ms(connections) * if dynamic { 1.0 } else { 0.3 };
        php.add(service + coast_to_coast.exchange_ms(500, workload.static_bytes));
    }
    let php_mean = php.mean();
    let php_rps = (connections as f64 * 1000.0) / (php_mean + 500.0);

    // --- Na Kika -----------------------------------------------------------
    // Five edge nodes near the clients serve static content from cache and
    // dynamic content from scripts over replicated hard state; only cache
    // misses cross the country.
    let origin = workload.origin();
    let dyn_origin: Arc<dyn OriginFetch> = origin.clone();
    let overlay = Arc::new(Overlay::with_defaults());
    let mut proxies = Vec::new();
    for i in 0..edge_nodes.max(1) {
        let id = key_for(&format!("spec-edge-{i}"));
        let location = Location::new(sites::US_WEST.x + i as f64 * 0.5, 0.0);
        overlay.join(id, location);
        let handle = NodeBuilder::scripted(&format!("spec-edge-{i}"))
            .without_resource_controls()
            .overlay(overlay.clone(), id)
            .origin(dyn_origin.clone())
            .build();
        proxies.push(SimProxy::new(
            handle,
            location,
            local,
            coast_to_coast,
            ServerModel {
                service_ms: 8.0,
                think_ms: 500.0,
            },
            3.0,
        ));
    }
    let mut nakika = Summary::new();
    let origin_load = (connections / proxies.len().max(1)).max(1);
    for (i, access) in accesses.iter().enumerate() {
        let proxy = &proxies[i % proxies.len()];
        let req = access.to_request(client_ip(i % connections.max(1)));
        let now = 100 + (i / 20) as u64;
        let (_, timing) = proxy.run_request(req, now, origin_load);
        nakika.add(timing.total_ms);
    }
    let nakika_mean = nakika.mean();
    let nakika_rps = (connections as f64 * 1000.0) / (nakika_mean + 500.0);

    vec![
        SpecResult {
            config: "single PHP server".to_string(),
            mean_response_ms: php_mean,
            rps: php_rps,
        },
        SpecResult {
            config: format!("Na Kika ({edge_nodes} edge nodes)"),
            mean_response_ms: nakika_mean,
            rps: nakika_rps,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ordering_matches_the_paper() {
        let rows = table2(2);
        assert_eq!(rows.len(), 9);
        let get = |name: &str| rows.iter().find(|r| r.config == name).unwrap();
        // Cold: Proxy <= Admin <= Pred-100 (the scripting pipeline costs).
        assert!(get("Proxy").cold_ms <= get("Admin").cold_ms);
        assert!(get("Admin").cold_ms <= get("Pred-100").cold_ms * 1.5);
        assert!(get("Pred-0").cold_ms <= get("Pred-100").cold_ms);
        // Warm is always much cheaper than cold for scripted configurations.
        for name in ["Admin", "Pred-10", "Pred-100", "Match-1"] {
            let row = get(name);
            assert!(
                row.warm_ms < row.cold_ms,
                "{name}: warm {} !< cold {}",
                row.warm_ms,
                row.cold_ms
            );
        }
    }

    #[test]
    fn capacity_gap_between_proxy_and_scripted_node() {
        let result = capacity(30, 50);
        assert!(
            result.proxy_rps > result.match1_rps,
            "scripting costs throughput"
        );
        assert!(result.proxy_at_load > 0.0 && result.match1_at_load > 0.0);
    }

    #[test]
    fn resource_controls_preserve_throughput_under_misbehaviour() {
        // Small run: shapes only.
        let rows = resource_controls(60);
        assert_eq!(rows.len(), 3);
        let misbehaving = &rows[2];
        assert!(
            misbehaving.rps_with > misbehaving.rps_without,
            "controls should win under a misbehaving script: with={} without={}",
            misbehaving.rps_with,
            misbehaving.rps_without
        );
        for row in &rows {
            assert!(
                row.reject_fraction <= 0.6,
                "rejections bounded: {}",
                row.reject_fraction
            );
            assert!(row.drop_fraction <= 0.2);
        }
    }

    #[test]
    fn simm_local_shapes() {
        // On the LAN the single server holds its own; over the shaped WAN the
        // Na Kika proxy wins decisively (paper: 8.88 s vs 1.21 s p90).
        let lan = SimmScenario::local(40);
        let server_lan = simm_single_server(&lan);
        let nakika_lan = simm_nakika(&lan, 1, true);
        assert!(server_lan.html_p90_ms < nakika_lan.html_p90_ms * 4.0);

        let wan = SimmScenario::shaped_wan(40);
        let server_wan = simm_single_server(&wan);
        let nakika_wan = simm_nakika(&wan, 1, true);
        assert!(
            server_wan.html_p90_ms > nakika_wan.html_p90_ms,
            "shaped WAN: single server {} should exceed Na Kika {}",
            server_wan.html_p90_ms,
            nakika_wan.html_p90_ms
        );
        assert!(server_wan.video_ok_fraction <= nakika_wan.video_ok_fraction + 1e-9);
    }

    #[test]
    fn figure7_wide_area_ordering() {
        let results = figure7(&[60], 6);
        assert_eq!(results.len(), 3);
        let server = &results[0];
        let cold = &results[1];
        let warm = &results[2];
        assert!(
            server.html_p90_ms > cold.html_p90_ms,
            "server {} vs cold {}",
            server.html_p90_ms,
            cold.html_p90_ms
        );
        assert!(
            cold.html_p90_ms >= warm.html_p90_ms,
            "cold {} vs warm {}",
            cold.html_p90_ms,
            warm.html_p90_ms
        );
        assert!(warm.video_ok_fraction >= server.video_ok_fraction);
        assert!(server.video_failure_fraction >= warm.video_failure_fraction);
        assert!(!warm.html_cdf.steps.is_empty());
    }

    #[test]
    fn specweb_nakika_outperforms_single_php_server() {
        let results = specweb(40, 200, 5);
        assert_eq!(results.len(), 2);
        let php = &results[0];
        let nakika = &results[1];
        assert!(
            nakika.mean_response_ms < php.mean_response_ms,
            "Na Kika {} should beat PHP {}",
            nakika.mean_response_ms,
            php.mean_response_ms
        );
        assert!(nakika.rps > php.rps);
    }
}
