//! Network and server models for the wide-area experiments.
//!
//! Latency is modelled with the overlay's 2-D coordinate space (one-way
//! milliseconds), bandwidth with simple store-and-forward transfer times, and
//! origin-server queueing with a closed interactive-system model — enough to
//! reproduce the *shapes* of the paper's end-to-end results (who wins, by
//! what factor, and where the crossovers lie) without packet-level detail.
//!
//! The simulator is a transport like any other: it owns a [`VirtualClock`],
//! mints a [`RequestCtx`] per simulated exchange, and drives the node through
//! the [`HttpService`] stack its [`NodeHandle`] exposes — the same node code
//! that runs under the real TCP servers.

use nakika_core::service::{Clock, CtxFactory, HttpService, NakikaError, RequestCtx};
use nakika_core::NodeHandle;
use nakika_http::{Request, Response};
use nakika_overlay::Location;
use std::sync::Arc;

/// The simulator's [`Clock`]: virtual seconds advanced by the experiment
/// harness, never by wall time.  Same mechanics as the test transport's
/// manually driven clock, re-exported under its domain name.
pub use nakika_core::service::ManualClock as VirtualClock;

/// A point-to-point link: propagation latency plus bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// One-way propagation latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkModel {
    /// A link between two locations with the given bandwidth.
    pub fn between(a: &Location, b: &Location, bandwidth_bps: f64) -> LinkModel {
        LinkModel {
            latency_ms: a.latency_ms(b),
            bandwidth_bps,
        }
    }

    /// A LAN link: sub-millisecond latency, 100 Mbit/s (the paper's
    /// micro-benchmark setup).
    pub fn lan() -> LinkModel {
        LinkModel {
            latency_ms: 0.2,
            bandwidth_bps: 100e6,
        }
    }

    /// Time in milliseconds for one request/response exchange of
    /// `request_bytes` up and `response_bytes` down, including one round
    /// trip of propagation.
    pub fn exchange_ms(&self, request_bytes: usize, response_bytes: usize) -> f64 {
        2.0 * self.latency_ms
            + transfer_ms(request_bytes, self.bandwidth_bps)
            + transfer_ms(response_bytes, self.bandwidth_bps)
    }

    /// The bandwidth a transfer of `bytes` effectively sees when the transfer
    /// also pays the link's round-trip time, in kilobits per second — the
    /// metric the SIMM experiments report for video playback.
    pub fn effective_kbps(&self, bytes: usize) -> f64 {
        let ms = self.exchange_ms(200, bytes);
        if ms <= 0.0 {
            return f64::INFINITY;
        }
        (bytes as f64 * 8.0 / 1000.0) / (ms / 1000.0)
    }
}

/// Time to push `bytes` through `bandwidth_bps`, in milliseconds.
pub fn transfer_ms(bytes: usize, bandwidth_bps: f64) -> f64 {
    if bandwidth_bps <= 0.0 {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / bandwidth_bps * 1000.0
}

/// A closed interactive-system model of a server: `n_clients` each issue a
/// request, wait for the response (service time `service_ms` under no load),
/// think for `think_ms`, and repeat.  Standard asymptotic bounds give the
/// throughput and response time; past saturation, response time grows
/// linearly with population — which is exactly the "single dynamic web server
/// collapses under load" behaviour the paper's §5.2/§5.3 baselines show.
#[derive(Debug, Clone, Copy)]
pub struct ServerModel {
    /// Service demand per request at the server, in milliseconds.
    pub service_ms: f64,
    /// Client think time between requests, in milliseconds.
    pub think_ms: f64,
}

impl ServerModel {
    /// Server capacity in requests per second.
    pub fn capacity_rps(&self) -> f64 {
        1000.0 / self.service_ms
    }

    /// Throughput (requests per second) with `n_clients` closed-loop clients.
    pub fn throughput_rps(&self, n_clients: usize) -> f64 {
        let unsaturated = n_clients as f64 * 1000.0 / (self.service_ms + self.think_ms);
        unsaturated.min(self.capacity_rps())
    }

    /// Mean response time in milliseconds with `n_clients` clients
    /// (interactive response-time law `R = N/X - Z`).
    pub fn response_ms(&self, n_clients: usize) -> f64 {
        if n_clients == 0 {
            return self.service_ms;
        }
        let x = self.throughput_rps(n_clients) / 1000.0; // req per ms
        (n_clients as f64 / x - self.think_ms).max(self.service_ms)
    }

    /// Utilisation in `[0, 1]` with `n_clients` clients.
    pub fn utilisation(&self, n_clients: usize) -> f64 {
        (self.throughput_rps(n_clients) / self.capacity_rps()).min(1.0)
    }
}

/// A Na Kika proxy placed at a location, with links to its clients and to the
/// origin server; wraps a real node's [`HttpService`] stack and converts its
/// observable behaviour (cache hit, peer fetch, origin fetch, script work)
/// into client-perceived latency.
pub struct SimProxy {
    handle: NodeHandle,
    clock: Arc<VirtualClock>,
    ctx_factory: CtxFactory,
    /// Where the proxy sits in latency space.
    pub location: Location,
    /// Link from clients (assumed co-located with the proxy's region) to the
    /// proxy.
    pub client_link: LinkModel,
    /// Link from the proxy to the origin server.
    pub origin_link: LinkModel,
    /// Origin service model (shared with the single-server baseline).
    pub origin_model: ServerModel,
    /// Per-request CPU overhead of the scripting pipeline on this node, in
    /// milliseconds (calibrated from the component micro-benchmarks).
    pub pipeline_overhead_ms: f64,
}

/// Latency breakdown of one simulated request through a proxy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Total client-perceived latency in milliseconds.
    pub total_ms: f64,
    /// True if the proxy answered from its local cache.
    pub local_hit: bool,
    /// True if a peer copy (overlay) avoided the origin.
    pub peer_hit: bool,
    /// Number of origin accesses the request caused (scripts included).
    pub origin_accesses: u64,
    /// True if the request was rejected (server busy).
    pub rejected: bool,
    /// The HTTP response.
    pub status: u16,
    /// Response body size in bytes.
    pub response_bytes: usize,
}

impl SimProxy {
    /// Places `handle` at `location` behind the given link and server models.
    pub fn new(
        handle: NodeHandle,
        location: Location,
        client_link: LinkModel,
        origin_link: LinkModel,
        origin_model: ServerModel,
        pipeline_overhead_ms: f64,
    ) -> SimProxy {
        let clock = Arc::new(VirtualClock::new(0));
        let ctx_factory = CtxFactory::new(clock.clone() as Arc<dyn Clock>);
        SimProxy {
            handle,
            clock,
            ctx_factory,
            location,
            client_link,
            origin_link,
            origin_model,
            pipeline_overhead_ms,
        }
    }

    /// The wrapped node's handle (statistics, cache, stores).
    pub fn handle(&self) -> &NodeHandle {
        &self.handle
    }

    /// Runs one request through the proxy at virtual time `now_secs`,
    /// charging link and server latencies according to what the node actually
    /// did, with `origin_load` concurrent clients loading the origin.
    pub fn run_request(
        &self,
        request: Request,
        now_secs: u64,
        origin_load: usize,
    ) -> (Response, RequestTiming) {
        self.clock.set(now_secs);
        let ctx: RequestCtx = self.ctx_factory.make(request.client_ip);
        let request_bytes = request.body.len();

        let before = self.handle.node().stats();
        let result = self.handle.call(request, &ctx);
        let after = self.handle.node().stats();

        let origin_accesses = after.origin_fetches - before.origin_fetches;
        let peer_fetches = after.peer_hits - before.peer_hits;
        let cache_hits = after.cache_hits - before.cache_hits;
        // The transport decides the status mapping for platform errors.
        let (response, rejected) = match result {
            Ok(response) => (response, false),
            Err(error @ (NakikaError::Throttled { .. } | NakikaError::Terminated { .. })) => {
                (error.to_response(), true)
            }
            Err(error) => (error.to_response(), false),
        };

        let mut total_ms = self
            .client_link
            .exchange_ms(request_bytes + 400, response.body.len());
        if !rejected {
            total_ms += self.pipeline_overhead_ms;
            // Each origin access pays the wide-area link plus the origin's
            // (load-dependent) service time.
            let origin_response_ms = self.origin_model.response_ms(origin_load);
            total_ms += origin_accesses as f64
                * (self
                    .origin_link
                    .exchange_ms(400, response.body.len().max(2048))
                    + origin_response_ms);
            // Peer fetches pay a regional link (approximated as twice the
            // client link — peers are nearby by construction of the overlay's
            // clusters).
            total_ms += peer_fetches as f64
                * (2.0 * self.client_link.exchange_ms(400, response.body.len()));
            let _ = cache_hits;
        }

        let timing = RequestTiming {
            total_ms,
            local_hit: cache_hits > 0 && origin_accesses == 0 && peer_fetches == 0,
            peer_hit: peer_fetches > 0,
            origin_accesses,
            rejected,
            status: response.status.as_u16(),
            response_bytes: response.body.len(),
        };
        (response, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::NodeBuilder;
    use nakika_overlay::cluster::sites;

    #[test]
    fn link_arithmetic() {
        let lan = LinkModel::lan();
        assert!(lan.exchange_ms(100, 2096) < 1.0);
        let wan = LinkModel {
            latency_ms: 40.0,
            bandwidth_bps: 8e6,
        };
        let ms = wan.exchange_ms(400, 1_000_000);
        assert!(
            ms > 80.0 + 1000.0,
            "1 MB over 8 Mbit/s takes ~1 s plus RTT, got {ms}"
        );
        assert!(transfer_ms(1_000_000, 8e6) >= 999.0);
        assert_eq!(transfer_ms(0, 8e6), 0.0);
        assert!(transfer_ms(1, 0.0).is_infinite());
    }

    #[test]
    fn effective_bandwidth_reflects_link_capacity() {
        let fast = LinkModel {
            latency_ms: 5.0,
            bandwidth_bps: 10e6,
        };
        let slow = LinkModel {
            latency_ms: 5.0,
            bandwidth_bps: 64e3,
        };
        assert!(fast.effective_kbps(500_000) > 140.0);
        assert!(slow.effective_kbps(500_000) < 140.0);
    }

    #[test]
    fn server_model_saturates() {
        let model = ServerModel {
            service_ms: 10.0,
            think_ms: 90.0,
        };
        assert!((model.capacity_rps() - 100.0).abs() < 1e-9);
        // Few clients: response time near the base service time.
        assert!(model.response_ms(1) <= 11.0);
        // Many clients: throughput pegged at capacity and response time
        // growing roughly linearly.
        assert!((model.throughput_rps(1000) - 100.0).abs() < 1e-9);
        assert!(model.response_ms(1000) > model.response_ms(100) * 5.0);
        assert!(model.utilisation(1000) >= 0.99);
        assert!(model.utilisation(1) < 0.2);
    }

    #[test]
    fn sim_proxy_latency_tracks_cache_state() {
        let handle = NodeBuilder::plain_proxy("edge")
            .origin_fn(|_req| {
                Response::ok("text/html", "x".repeat(2096))
                    .with_header("Cache-Control", "max-age=300")
            })
            .build();
        let proxy = SimProxy::new(
            handle,
            sites::US_WEST,
            LinkModel::lan(),
            LinkModel::between(&sites::US_WEST, &sites::US_EAST, 8e6),
            ServerModel {
                service_ms: 5.0,
                think_ms: 1000.0,
            },
            0.5,
        );
        let (_, cold) = proxy.run_request(Request::get("http://site.example/"), 10, 1);
        let (_, warm) = proxy.run_request(Request::get("http://site.example/"), 20, 1);
        assert!(cold.origin_accesses == 1 && !cold.local_hit);
        assert!(warm.local_hit && warm.origin_accesses == 0);
        assert!(
            cold.total_ms > warm.total_ms * 5.0,
            "cold {} should dwarf warm {}",
            cold.total_ms,
            warm.total_ms
        );
    }
}
