//! Latency and throughput statistics: means, percentiles, CDFs.

/// A collection of samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn sorted_samples(&mut self) -> &[f64] {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        &self.samples
    }

    /// The `p`-th percentile (p in 0..=100), using nearest-rank.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted_samples();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&mut self) -> f64 {
        self.sorted_samples().last().copied().unwrap_or(0.0)
    }

    /// Minimum sample (0 when empty).
    pub fn min(&mut self) -> f64 {
        self.sorted_samples().first().copied().unwrap_or(0.0)
    }

    /// Fraction of samples satisfying `predicate`.
    pub fn fraction(&self, predicate: impl Fn(f64) -> bool) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| predicate(**s)).count() as f64 / self.samples.len() as f64
    }

    /// Builds a CDF over the samples with `points` evenly spaced probability
    /// steps.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        let mut steps = Vec::with_capacity(points);
        if self.samples.is_empty() || points == 0 {
            return Cdf { steps };
        }
        for i in 1..=points {
            let p = i as f64 / points as f64;
            steps.push((self.percentile(p * 100.0), p));
        }
        Cdf { steps }
    }
}

/// A cumulative distribution function as `(value, cumulative probability)`
/// steps — the form in which Figure 7 plots client-perceived latency.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    /// `(value, probability)` pairs with non-decreasing probability.
    pub steps: Vec<(f64, f64)>,
}

impl Cdf {
    /// The fraction of samples at or below `value`.
    pub fn probability_at(&self, value: f64) -> f64 {
        self.steps
            .iter()
            .filter(|(v, _)| *v <= value)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }

    /// Renders the CDF as `value<TAB>probability` lines for plotting.
    pub fn to_table(&self) -> String {
        self.steps
            .iter()
            .map(|(v, p)| format!("{v:.3}\t{p:.3}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Throughput bookkeeping for load experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Throughput {
    /// Completed requests.
    pub completed: u64,
    /// Requests rejected (throttled or dropped).
    pub rejected: u64,
    /// Virtual duration of the run in seconds.
    pub duration_secs: f64,
}

impl Throughput {
    /// Completed requests per second.
    pub fn rps(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.duration_secs
        }
    }

    /// Fraction of all offered requests that were rejected.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.completed + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(values: &[f64]) -> Summary {
        let mut s = Summary::new();
        for v in values {
            s.add(*v);
        }
        s
    }

    #[test]
    fn mean_median_percentiles() {
        let mut s = summary_of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert!((s.mean() - 5.5).abs() < 1e-9);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.percentile(90.0), 9.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn empty_summary_is_safe() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(90.0), 0.0);
        assert!(s.cdf(10).steps.is_empty());
    }

    #[test]
    fn fractions_and_cdf() {
        let mut s = summary_of(&[100.0, 200.0, 300.0, 400.0]);
        assert!((s.fraction(|v| v >= 140.0) - 0.75).abs() < 1e-9);
        let cdf = s.cdf(4);
        assert_eq!(cdf.steps.len(), 4);
        assert!((cdf.probability_at(250.0) - 0.5).abs() < 1e-9);
        assert_eq!(cdf.probability_at(50.0), 0.0);
        assert!((cdf.probability_at(1000.0) - 1.0).abs() < 1e-9);
        assert!(cdf.to_table().contains('\t'));
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            completed: 600,
            rejected: 3,
            duration_secs: 2.0,
        };
        assert!((t.rps() - 300.0).abs() < 1e-9);
        assert!((t.rejection_rate() - 3.0 / 603.0).abs() < 1e-9);
        assert_eq!(Throughput::default().rps(), 0.0);
        assert_eq!(Throughput::default().rejection_rate(), 0.0);
    }
}
