//! Workload generators and simulated origin servers for the evaluation.
//!
//! Three workloads drive the experiments, mirroring §5 of the paper:
//!
//! * the **micro-benchmark** workload — a single 2,096-byte static page
//!   (Google's home page without inline images) behind the various node
//!   configurations of Table 1;
//! * the **SIMM** workload — a synthetic stand-in for NYU's Surgical
//!   Interactive Multimedia Modules: per-student personalised XML content
//!   rendered to HTML plus large shared multimedia objects;
//! * the **SPECweb99-like** workload — a static/dynamic mix with user
//!   registrations against replicated hard state.

use nakika_core::node::OriginFetch;
use nakika_core::scripts;
use nakika_http::{Method, Request, Response, StatusCode};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The size of the micro-benchmark's static page (paper §5.1).
pub const MICRO_PAGE_BYTES: usize = 2_096;

/// A configurable simulated origin server: a map from URL paths to responses
/// plus a default page, counting every access.
pub struct ScriptedOrigin {
    routes: Mutex<HashMap<String, Response>>,
    default_body: Vec<u8>,
    default_type: String,
    default_cache_control: String,
    hits: AtomicU64,
}

impl ScriptedOrigin {
    /// Creates an origin whose default response is a cacheable page of
    /// `MICRO_PAGE_BYTES` bytes.
    pub fn micro_benchmark() -> ScriptedOrigin {
        ScriptedOrigin {
            routes: Mutex::new(HashMap::new()),
            default_body: vec![b'g'; MICRO_PAGE_BYTES],
            default_type: "text/html".to_string(),
            default_cache_control: "max-age=300".to_string(),
            hits: AtomicU64::new(0),
        }
    }

    /// Creates an origin with an arbitrary default page.
    pub fn with_default(body: Vec<u8>, content_type: &str, cache_control: &str) -> ScriptedOrigin {
        ScriptedOrigin {
            routes: Mutex::new(HashMap::new()),
            default_body: body,
            default_type: content_type.to_string(),
            default_cache_control: cache_control.to_string(),
            hits: AtomicU64::new(0),
        }
    }

    /// Serves `body` with `content_type` at `path` (exact match on the URL
    /// path), cacheable for `max_age` seconds.
    pub fn route(&self, path: &str, content_type: &str, body: &str, max_age: u64) {
        let response = Response::ok(content_type, body)
            .with_header("Cache-Control", &format!("max-age={max_age}"));
        self.routes.lock().insert(path.to_string(), response);
    }

    /// Serves a Na Kika script at `path`.
    pub fn route_script(&self, path: &str, source: &str) {
        self.route(path, "application/javascript", source, 300);
    }

    /// Installs the empty-handler walls at the well-known wall paths (the
    /// `Admin` baseline of Table 1).
    pub fn with_empty_walls(self) -> ScriptedOrigin {
        self.route_script("/clientwall.js", scripts::EMPTY_WALL);
        self.route_script("/serverwall.js", scripts::EMPTY_WALL);
        self
    }

    /// Number of requests the origin has served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

impl OriginFetch for ScriptedOrigin {
    fn fetch_origin(&self, request: &Request) -> Response {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(response) = self.routes.lock().get(&request.uri.path) {
            return response.clone();
        }
        if request.uri.path.ends_with(".js") {
            // Unrouted scripts (e.g. a site without nakika.js) do not exist.
            return Response::error(StatusCode::NOT_FOUND);
        }
        Response::ok(&self.default_type, self.default_body.clone())
            .with_header("Cache-Control", &self.default_cache_control)
    }
}

// --------------------------------------------------------------------------
// SIMM workload (paper §5.2)
// --------------------------------------------------------------------------

/// Parameters of the synthetic SIMM workload.
#[derive(Debug, Clone)]
pub struct SimmWorkload {
    /// Number of modules (the paper has five).
    pub modules: usize,
    /// Lecture pages per module.
    pub pages_per_module: usize,
    /// Size of a rendered HTML/XML lecture page in bytes.
    pub html_bytes: usize,
    /// Size of one multimedia (video) segment in bytes.
    pub video_bytes: usize,
    /// Fraction of accesses that go to multimedia content.
    pub video_fraction: f64,
    /// Deterministic seed for session generation.
    pub seed: u64,
}

impl Default for SimmWorkload {
    fn default() -> Self {
        SimmWorkload {
            modules: 5,
            pages_per_module: 40,
            html_bytes: 30 * 1024,
            video_bytes: 512 * 1024,
            video_fraction: 0.3,
            seed: 7,
        }
    }
}

/// One request of a SIMM session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimmAccess {
    /// A personalised lecture page for `student`.
    Html {
        /// Module index.
        module: usize,
        /// Page index within the module.
        page: usize,
        /// Student identifier (URL-based session identifier in the port).
        student: usize,
    },
    /// A shared multimedia segment.
    Video {
        /// Module index.
        module: usize,
        /// Segment index.
        segment: usize,
    },
}

impl SimmAccess {
    /// The request this access issues against the SIMM site.
    pub fn to_request(&self, client_ip: IpAddr) -> Request {
        let url = match self {
            SimmAccess::Html {
                module,
                page,
                student,
            } => format!(
                "http://simms.med.nyu.edu/module{module}/lecture{page}.nkp?student={student}"
            ),
            SimmAccess::Video { module, segment } => {
                format!("http://simms.med.nyu.edu/module{module}/video{segment}.bin")
            }
        };
        Request::get(&url).with_client_ip(client_ip)
    }

    /// True for multimedia accesses.
    pub fn is_video(&self) -> bool {
        matches!(self, SimmAccess::Video { .. })
    }
}

impl SimmWorkload {
    /// Generates a log-replay-style access sequence for `students` students
    /// issuing `accesses_per_student` requests each (module popularity is
    /// Zipf-like: earlier modules are used more, as in a curriculum).
    pub fn generate(&self, students: usize, accesses_per_student: usize) -> Vec<SimmAccess> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut accesses = Vec::with_capacity(students * accesses_per_student);
        for student in 0..students {
            for _ in 0..accesses_per_student {
                // Zipf-ish module choice.
                let r: f64 = rng.gen();
                let module = ((self.modules as f64) * r * r) as usize % self.modules.max(1);
                if rng.gen::<f64>() < self.video_fraction {
                    accesses.push(SimmAccess::Video {
                        module,
                        segment: rng.gen_range(0..self.pages_per_module),
                    });
                } else {
                    accesses.push(SimmAccess::Html {
                        module,
                        page: rng.gen_range(0..self.pages_per_module),
                        student,
                    });
                }
            }
        }
        accesses
    }

    /// Builds the SIMM origin server: per-student lecture pages as Na Kika
    /// Pages (XML rendered on the edge), shared video segments as large
    /// cacheable binaries, and a `nakika.js` that renders lecture XML to HTML
    /// and opts into access logging.
    pub fn origin(&self) -> Arc<ScriptedOrigin> {
        let origin =
            ScriptedOrigin::with_default(vec![b'v'; self.video_bytes], "video/mp4", "max-age=3600")
                .with_empty_walls();
        // The site script: render lecture XML to HTML on the edge and log
        // accesses back to the medical school (paper §5.2 / §3.3).
        origin.route_script(
            "/nakika.js",
            r#"
            Log.post('http://simms.med.nyu.edu/log-sink');
            p = new Policy();
            p.url = ["simms.med.nyu.edu"];
            p.onResponse = function() {
                if (Response.contentType != 'text/xml') { return; }
                var buff = null, body = new ByteArray();
                while (buff = Response.read()) { body.append(buff); }
                var html = Xml.toHtml(body.toString());
                Response.setHeader('Content-Type', 'text/html');
                Response.setHeader('Content-Length', html.length);
                Response.write(html);
            };
            p.register();
            "#,
        );
        // Lecture pages: the origin produces personalised XML (it keeps doing
        // the personalisation; the edge renders and distributes).
        let xml_filler = "x".repeat(self.html_bytes / 2);
        for module in 0..self.modules {
            for page in 0..self.pages_per_module {
                origin.route(
                    &format!("/module{module}/lecture{page}.nkp"),
                    "text/xml",
                    &format!(
                        "<lecture><module>{module}</module><page>{page}</page><body>{xml_filler}</body></lecture>"
                    ),
                    120,
                );
            }
        }
        Arc::new(origin)
    }
}

// --------------------------------------------------------------------------
// SPECweb99-like workload (paper §5.3)
// --------------------------------------------------------------------------

/// Parameters of the SPECweb99-like workload.
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    /// Fraction of requests that are dynamic (the paper uses 80%).
    pub dynamic_fraction: f64,
    /// Fraction of dynamic requests that are POSTs updating user state.
    pub post_fraction: f64,
    /// Number of distinct static files.
    pub static_files: usize,
    /// Static file size in bytes.
    pub static_bytes: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SpecWorkload {
    fn default() -> Self {
        SpecWorkload {
            dynamic_fraction: 0.8,
            post_fraction: 0.25,
            static_files: 100,
            static_bytes: 14 * 1024,
            seed: 11,
        }
    }
}

/// One SPECweb99-like request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecAccess {
    /// A static file fetch.
    Static {
        /// File index.
        file: usize,
    },
    /// A dynamic GET (personalised ad rotation / profile lookup).
    DynamicGet {
        /// User identifier.
        user: usize,
    },
    /// A dynamic POST registering or updating a user profile.
    DynamicPost {
        /// User identifier.
        user: usize,
    },
}

impl SpecAccess {
    /// The request this access issues.
    pub fn to_request(&self, client_ip: IpAddr) -> Request {
        match self {
            SpecAccess::Static { file } => {
                Request::get(&format!("http://specweb.example.org/file{file}.html"))
                    .with_client_ip(client_ip)
            }
            SpecAccess::DynamicGet { user } => Request::get(&format!(
                "http://specweb.example.org/dynamic.nkp?user={user}"
            ))
            .with_client_ip(client_ip),
            SpecAccess::DynamicPost { user } => Request::new(
                Method::Post,
                format!("http://specweb.example.org/register.nkp?user={user}&name=user{user}")
                    .parse()
                    .expect("valid url"),
            )
            .with_client_ip(client_ip)
            .with_body(format!("user={user}")),
        }
    }

    /// True for the POST (hard-state update) accesses.
    pub fn is_post(&self) -> bool {
        matches!(self, SpecAccess::DynamicPost { .. })
    }
}

impl SpecWorkload {
    /// Generates `count` accesses for `users` distinct users.
    pub fn generate(&self, users: usize, count: usize) -> Vec<SpecAccess> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| {
                if rng.gen::<f64>() < self.dynamic_fraction {
                    let user = rng.gen_range(0..users.max(1));
                    if rng.gen::<f64>() < self.post_fraction {
                        SpecAccess::DynamicPost { user }
                    } else {
                        SpecAccess::DynamicGet { user }
                    }
                } else {
                    SpecAccess::Static {
                        file: rng.gen_range(0..self.static_files.max(1)),
                    }
                }
            })
            .collect()
    }

    /// Builds the SPECweb99 origin: static files, and a site script that
    /// serves the dynamic pages on the edge using replicated hard state for
    /// user registrations (paper §5.3).
    pub fn origin(&self) -> Arc<ScriptedOrigin> {
        let origin =
            ScriptedOrigin::with_default(vec![b's'; self.static_bytes], "text/html", "max-age=600")
                .with_empty_walls();
        origin.route_script(
            "/nakika.js",
            r#"
            p = new Policy();
            p.url = ["specweb.example.org/register"];
            p.method = ["POST"];
            p.onRequest = function() {
                var user = Request.query('user');
                var name = Request.query('name');
                HardState.put('user:' + user, name);
                Request.respond('text/html', '<p>registered ' + name + '</p>');
            };
            p.register();
            q = new Policy();
            q.url = ["specweb.example.org/dynamic"];
            q.onRequest = function() {
                var user = Request.query('user');
                var profile = HardState.get('user:' + user);
                Request.respond('text/html',
                    '<html><body>ad for ' + (profile == null ? 'anonymous' : profile) + '</body></html>');
            };
            q.register();
            "#,
        );
        Arc::new(origin)
    }
}

/// A deterministic client IP for client index `i` (used by all workloads).
pub fn client_ip(i: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(
        10,
        ((i >> 16) & 0xff) as u8,
        ((i >> 8) & 0xff) as u8,
        (i & 0xff) as u8,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_origin_routes_and_defaults() {
        let origin = ScriptedOrigin::micro_benchmark().with_empty_walls();
        let page = origin.fetch_origin(&Request::get("http://www.google.com/"));
        assert_eq!(page.body.len(), MICRO_PAGE_BYTES);
        let wall = origin.fetch_origin(&Request::get("http://nakika.net/clientwall.js"));
        assert!(wall.body.to_text().contains("Policy"));
        let missing = origin.fetch_origin(&Request::get("http://site.example/nakika.js"));
        assert_eq!(missing.status, StatusCode::NOT_FOUND);
        assert_eq!(origin.hits(), 3);
    }

    #[test]
    fn simm_workload_is_deterministic_and_mixed() {
        let workload = SimmWorkload::default();
        let a = workload.generate(10, 20);
        let b = workload.generate(10, 20);
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.len(), 200);
        let videos = a.iter().filter(|x| x.is_video()).count();
        assert!(
            videos > 20 && videos < 120,
            "video mix looks wrong: {videos}"
        );
        // Requests are well-formed.
        let req = a[0].to_request(client_ip(1));
        assert_eq!(req.uri.host, "simms.med.nyu.edu");
    }

    #[test]
    fn simm_origin_serves_xml_pages_and_video() {
        let origin = SimmWorkload::default().origin();
        let page = origin.fetch_origin(&Request::get(
            "http://simms.med.nyu.edu/module0/lecture0.nkp?student=3",
        ));
        assert_eq!(page.headers.content_type(), Some("text/xml"));
        assert!(page.body.to_text().contains("<lecture>"));
        let video =
            origin.fetch_origin(&Request::get("http://simms.med.nyu.edu/module0/video1.bin"));
        assert_eq!(video.body.len(), SimmWorkload::default().video_bytes);
        let script = origin.fetch_origin(&Request::get("http://simms.med.nyu.edu/nakika.js"));
        assert!(script.body.to_text().contains("Xml.toHtml"));
    }

    #[test]
    fn spec_workload_mix_matches_parameters() {
        let workload = SpecWorkload::default();
        let accesses = workload.generate(50, 1000);
        let dynamic = accesses
            .iter()
            .filter(|a| !matches!(a, SpecAccess::Static { .. }))
            .count();
        assert!(
            (700..900).contains(&dynamic),
            "expected ~80% dynamic, got {dynamic}/1000"
        );
        let posts = accesses.iter().filter(|a| a.is_post()).count();
        assert!(posts > 100 && posts < 350);
        let origin = workload.origin();
        let script = origin.fetch_origin(&Request::get("http://specweb.example.org/nakika.js"));
        assert!(script.body.to_text().contains("HardState"));
    }

    #[test]
    fn client_ips_are_distinct() {
        assert_ne!(client_ip(1), client_ip(2));
        assert_ne!(client_ip(1), client_ip(257));
    }
}
