//! Wide-area simulation and experiment harness for the Na Kika evaluation.
//!
//! The paper evaluates Na Kika on a LAN testbed and on PlanetLab; neither is
//! available here, so this crate provides the substitute described in
//! DESIGN.md: simulated clients, origin servers and Na Kika proxies connected
//! by links with latency and bandwidth, driven in virtual time.  Every proxy
//! decision — caching, predicate matching, pipeline execution, congestion
//! control, overlay lookups — is made by the *real* `nakika-core` code; only
//! packet transport and server queueing are modelled analytically.
//!
//! The [`experiments`] module reproduces each table and figure of the paper's
//! §5 (see DESIGN.md's experiment index and EXPERIMENTS.md for the measured
//! results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod net;
pub mod stats;
pub mod workload;

pub use net::{LinkModel, ServerModel, SimProxy};
pub use stats::{Cdf, Summary};
