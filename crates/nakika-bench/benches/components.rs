//! Component micro-benchmarks backing the cost breakdown of §5.1 and the
//! Table-2 configurations: script parsing and execution, scripting-context
//! creation vs reuse, decision-tree construction vs cached retrieval,
//! predicate evaluation, proxy-cache hits, and whole-request handling per
//! node configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nakika_core::pipeline::{CompiledStage, StageCache, StageLookup};
use nakika_core::scripts;
use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::vocab::VocabHooks;
use nakika_core::{NodeBuilder, ProxyCache};
use nakika_http::{Method, Request, Response};
use nakika_script::{parse_program, stdlib, Context, ContextPool, Interpreter};
use nakika_sim::workload::ScriptedOrigin;
use std::sync::Arc;
use std::time::Duration;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_script_engine(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("script_engine");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);

    let source = scripts::IMAGE_TRANSCODER;
    group.bench_function("parse_transcoder_script", |b| {
        b.iter(|| parse_program(source).unwrap())
    });

    let program = parse_program("var s = 0; for (var i = 0; i < 100; i++) { s += i; } s").unwrap();
    group.bench_function("execute_small_loop", |b| {
        b.iter(|| {
            let ctx = Context::new();
            stdlib::install(&ctx);
            Interpreter::new(&ctx).run(&program).unwrap()
        })
    });

    // Paper: context creation ~1.5 ms vs reuse ~3 µs.
    group.bench_function("context_create", |b| {
        b.iter(|| {
            let ctx = Context::new();
            stdlib::install(&ctx);
            ctx
        })
    });
    let pool = ContextPool::new(4);
    pool.release(Context::new());
    group.bench_function("context_reuse", |b| {
        b.iter(|| {
            let ctx = pool.acquire();
            pool.release(ctx);
        })
    });
    group.finish();
}

fn bench_policy_matching(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("policy_matching");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);

    for n in [1usize, 10, 100] {
        let source = scripts::pred_n_stage(n);
        group.bench_with_input(BenchmarkId::new("compile_stage", n), &source, |b, src| {
            b.iter(|| CompiledStage::compile("bench.js", src, &VocabHooks::default()).unwrap())
        });
        let stage = CompiledStage::compile("bench.js", &source, &VocabHooks::default()).unwrap();
        let request = Request::get("http://www.google.com/");
        // Paper: predicate evaluation < 38 µs for all configurations.
        group.bench_with_input(BenchmarkId::new("predicate_eval", n), &stage, |b, stage| {
            b.iter(|| stage.find_closest_match(&request))
        });
    }

    // Paper: retrieving a decision tree from the in-memory cache takes ~4 µs.
    let cache = StageCache::new();
    let stage = CompiledStage::compile(
        "cached.js",
        &scripts::match_1_stage("www.google.com"),
        &VocabHooks::default(),
    )
    .unwrap();
    cache.put("cached.js", Arc::new(stage), u64::MAX);
    group.bench_function("stage_cache_hit", |b| {
        b.iter(|| match cache.get("cached.js", 1) {
            StageLookup::Hit(s) => s,
            _ => unreachable!(),
        })
    });
    group.finish();
}

fn bench_cache_and_requests(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("node_request");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);

    // Paper: retrieving a resource from Apache's cache takes ~1.1 ms.
    let cache = ProxyCache::with_defaults();
    let response =
        Response::ok("text/html", vec![b'x'; 2096]).with_header("Cache-Control", "max-age=600");
    cache.put("http://www.google.com/", &Method::Get, &response, 0);
    group.bench_function("proxy_cache_hit", |b| {
        b.iter(|| cache.get("http://www.google.com/", 1).unwrap())
    });

    // Whole-request handling per Table-1 configuration (warm cache).
    let configurations: Vec<(&str, NodeBuilder, Option<String>)> = vec![
        ("proxy", NodeBuilder::plain_proxy("bench"), None),
        ("admin", NodeBuilder::scripted("bench"), None),
        (
            "match1",
            NodeBuilder::scripted("bench"),
            Some(scripts::match_1_stage("www.google.com")),
        ),
        (
            "pred100",
            NodeBuilder::scripted("bench"),
            Some(scripts::pred_n_stage(100)),
        ),
    ];
    for (name, builder, site_script) in configurations {
        let origin = ScriptedOrigin::micro_benchmark().with_empty_walls();
        if let Some(script) = &site_script {
            origin.route_script("/nakika.js", script);
        }
        let edge = builder
            .without_resource_controls()
            .origin(Arc::new(origin))
            .build();
        let _ = edge.call(Request::get("http://www.google.com/"), &RequestCtx::at(1));
        group.bench_function(BenchmarkId::new("warm_request", name), |b| {
            b.iter(|| edge.call(Request::get("http://www.google.com/"), &RequestCtx::at(5)))
        });
    }
    group.finish();
}

fn bench_integrity(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("integrity");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);
    let body = vec![0xABu8; 64 * 1024];
    group.bench_function("sha256_64k", |b| b.iter(|| nakika_integrity::sha256(&body)));
    group.finish();
}

criterion_group!(
    benches,
    bench_script_engine,
    bench_policy_matching,
    bench_cache_and_requests,
    bench_integrity
);
criterion_main!(benches);
