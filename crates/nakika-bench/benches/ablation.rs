//! Ablation benches for the design choices DESIGN.md calls out:
//! decision-tree vs linear predicate matching, scripting-context reuse vs
//! fresh contexts, and cooperative (overlay) caching vs local-only caching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nakika_core::node::OriginFetch;
use nakika_core::pipeline::CompiledStage;
use nakika_core::policy::{LinearMatcher, Matcher};
use nakika_core::scripts;
use nakika_core::service::{HttpService, RequestCtx};
use nakika_core::vocab::VocabHooks;
use nakika_core::{NodeBuilder, NodeHandle};
use nakika_http::Request;
use nakika_overlay::{key_for, Location, Overlay};
use nakika_script::{stdlib, Context, ContextPool};
use nakika_sim::workload::ScriptedOrigin;
use std::sync::Arc;
use std::time::Duration;

fn bench_matcher_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matcher");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);
    for n in [10usize, 100, 500] {
        let stage = CompiledStage::compile(
            "bench.js",
            &scripts::pred_n_stage(n),
            &VocabHooks::default(),
        )
        .unwrap();
        let linear = LinearMatcher::build(&stage.policies);
        let tree = stage.policies.compile();
        let request = Request::get("http://www.google.com/");
        group.bench_with_input(BenchmarkId::new("decision_tree", n), &tree, |b, m| {
            b.iter(|| m.find_closest_match(&request))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &linear, |b, m| {
            b.iter(|| m.find_closest_match(&request))
        });
    }
    group.finish();
}

fn bench_context_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_context");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);
    group.bench_function("fresh_context_per_handler", |b| {
        b.iter(|| {
            let ctx = Context::new();
            stdlib::install(&ctx);
            ctx
        })
    });
    let pool = ContextPool::new(8);
    group.bench_function("pooled_context_per_handler", |b| {
        b.iter(|| {
            let ctx = pool.acquire();
            pool.release(ctx);
        })
    });
    group.finish();
}

fn bench_cooperative_caching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coop_cache");
    group
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);

    // A flash crowd for one URL spread over 4 proxies: with the overlay, one
    // origin fetch seeds every node; without it, each node goes to the origin.
    for coop in [false, true] {
        let label = if coop { "overlay" } else { "local_only" };
        group.bench_function(BenchmarkId::new("flash_crowd", label), |b| {
            b.iter(|| {
                let overlay = Arc::new(Overlay::with_defaults());
                let origin: Arc<dyn OriginFetch> = Arc::new(ScriptedOrigin::micro_benchmark());
                let nodes: Vec<NodeHandle> = (0..4)
                    .map(|i| {
                        let mut builder = if coop {
                            NodeBuilder::proxy_with_dht(&format!("n{i}"))
                        } else {
                            NodeBuilder::plain_proxy(&format!("n{i}"))
                        };
                        if coop {
                            let id = key_for(&format!("n{i}"));
                            overlay.join(id, Location::new(i as f64, 0.0));
                            builder = builder.overlay(overlay.clone(), id);
                        }
                        builder.origin(origin.clone()).build()
                    })
                    .collect();
                for round in 0..4u64 {
                    for edge in &nodes {
                        let _ = edge.call(
                            Request::get("http://hot.example.org/page"),
                            &RequestCtx::at(10 + round),
                        );
                    }
                }
                nodes
                    .iter()
                    .map(|n| n.node().stats().origin_fetches)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matcher_ablation,
    bench_context_ablation,
    bench_cooperative_caching_ablation
);
criterion_main!(benches);
