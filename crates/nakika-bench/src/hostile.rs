//! Hostile-workload generators and attack clients for the bench harness.
//!
//! The throughput scenarios in the crate root measure the proxy on its
//! best day: polite keep-alive clients, complete requests, drained
//! responses.  This module measures its worst day — the traffic mixes
//! that killed unguarded event loops in practice:
//!
//! * **Skewed load** — [`ZipfKeys`] and [`FlashCrowd`] port the
//!   Zipf-popularity idiom of `nakika-sim`'s workload generators onto
//!   real TCP: most requests hammer a few hot keys, a flash crowd
//!   collapses the whole population onto one.
//! * **Attack clients** — [`slow_loris`] (one header byte per tick,
//!   forever), [`header_flood`] (an unbounded header list),
//!   [`oversized_body`] (a `Content-Length` past the parser cap),
//!   [`SlowReader`] (requests a large body, then reads one byte per
//!   tick), and [`connection_churn`] (open, dawdle, vanish).
//! * **Endurance** — [`keepalive_soak`] holds thousands of polite
//!   keep-alive sessions open at once (scaled to the process's fd
//!   budget by [`fd_budget_connections`]) and counts every dropped
//!   connection, and [`run_barrage`] measures what an active attack
//!   does to the warm-path p99 of clients that did nothing wrong.
//!
//! Everything here is a *client*: the defenses under test (progress
//! deadlines, header caps, rate limits, connection caps) live in
//! `nakika-server` and `nakika-core`.

use crate::hist::LatencyRecorder;
use nakika_core::service::{service_fn, NakikaError};
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response};
use nakika_server::{
    http_get_via_proxy, HttpServer, ProxyClient, ProxyServer, ServerOptions, TcpOrigin, Transport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Skewed-popularity generators
// ---------------------------------------------------------------------------

/// Zipf-distributed key popularity over `n` keys with exponent `s`:
/// key `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^s`.  Deterministic per seed, like the sim workloads.
pub struct ZipfKeys {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfKeys {
    /// A generator over `n` keys (`n >= 1`) with skew `s` (1.0 is the
    /// classic web-caching value; 0.0 degenerates to uniform).
    pub fn new(n: usize, s: f64, seed: u64) -> ZipfKeys {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next key index (0-based; 0 is the most popular).
    pub fn next_key(&mut self) -> usize {
        let r: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < r).min(self.cdf.len() - 1)
    }
}

/// A flash crowd layered over a [`ZipfKeys`] background: after
/// `flash_after` draws, each draw lands on the single hot key with
/// probability `hot_fraction`, modelling the population collapsing onto
/// one suddenly-famous URL.
pub struct FlashCrowd {
    background: ZipfKeys,
    chooser: StdRng,
    drawn: usize,
    /// Draws before the crowd forms.
    pub flash_after: usize,
    /// Post-flash probability that a draw hits the hot key.
    pub hot_fraction: f64,
    /// The suddenly-famous key.
    pub hot_key: usize,
}

impl FlashCrowd {
    /// A crowd over `n` keys: Zipf(`s`) until `flash_after` draws, then
    /// `hot_fraction` of traffic piles onto key 0.
    pub fn new(n: usize, s: f64, flash_after: usize, hot_fraction: f64, seed: u64) -> FlashCrowd {
        FlashCrowd {
            background: ZipfKeys::new(n, s, seed),
            chooser: StdRng::seed_from_u64(seed ^ 0x9E37_79B9),
            drawn: 0,
            flash_after,
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
            hot_key: 0,
        }
    }

    /// Draws the next key index.
    pub fn next_key(&mut self) -> usize {
        self.drawn += 1;
        if self.drawn > self.flash_after && self.chooser.gen::<f64>() < self.hot_fraction {
            return self.hot_key;
        }
        self.background.next_key()
    }
}

// ---------------------------------------------------------------------------
// Attack clients
// ---------------------------------------------------------------------------

/// What became of one attack connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The server cut the connection (or refused the request) — the
    /// defense worked.
    pub evicted: bool,
    /// Status code the server sent before closing, if any (408 from a
    /// deadline, 431/413 from a parser cap, 503 from the connection cap).
    pub status: Option<u16>,
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Reads whatever response the server manages to send before closing and
/// extracts its status code.  `None` means the connection died with no
/// parseable status line.
fn read_status(stream: &mut TcpStream) -> Option<u16> {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = buf.split(|&b| b == b'\r').next()?;
    let line = std::str::from_utf8(line).ok()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A slow-loris client: sends a valid request line, then drips one header
/// byte every `drip` for at most `give_up`, never completing the head.
/// Returns as soon as the server cuts the connection (`evicted: true`,
/// possibly with a 408) or when `give_up` expires with the server still
/// humouring us (`evicted: false` — the defense failed).
pub fn slow_loris(addr: SocketAddr, drip: Duration, give_up: Duration) -> AttackOutcome {
    let Ok(mut stream) = connect(addr) else {
        return AttackOutcome {
            evicted: true,
            status: None,
        };
    };
    if stream
        .write_all(b"GET http://origin.invalid/ HTTP/1.1\r\nHost: origin.invalid\r\nX-Drip: ")
        .is_err()
    {
        return AttackOutcome {
            evicted: true,
            status: None,
        };
    }
    stream.set_read_timeout(Some(Duration::from_millis(1))).ok();
    let start = Instant::now();
    let mut chunk = [0u8; 1024];
    let mut got = Vec::new();
    while start.elapsed() < give_up {
        std::thread::sleep(drip);
        // Probe for a server verdict (408 / close) between drips.
        match stream.read(&mut chunk) {
            Ok(0) => {
                return AttackOutcome {
                    evicted: true,
                    status: parse_status_bytes(&got),
                }
            }
            Ok(n) => got.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                return AttackOutcome {
                    evicted: true,
                    status: parse_status_bytes(&got),
                }
            }
        }
        if stream.write_all(b"a").is_err() {
            return AttackOutcome {
                evicted: true,
                status: parse_status_bytes(&got),
            };
        }
    }
    AttackOutcome {
        evicted: false,
        status: parse_status_bytes(&got),
    }
}

fn parse_status_bytes(buf: &[u8]) -> Option<u16> {
    let line = buf.split(|&b| b == b'\r').next()?;
    std::str::from_utf8(line)
        .ok()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// A header flood: one complete request carrying `headers` header lines
/// (far past the parser's count cap).  Returns the server's verdict —
/// a healthy server answers 431 and closes instead of buffering the lot.
pub fn header_flood(addr: SocketAddr, headers: usize) -> AttackOutcome {
    let Ok(mut stream) = connect(addr) else {
        return AttackOutcome {
            evicted: true,
            status: None,
        };
    };
    let mut request =
        String::from("GET http://origin.invalid/ HTTP/1.1\r\nHost: origin.invalid\r\n");
    for i in 0..headers {
        request.push_str(&format!("X-Flood-{i}: aaaaaaaaaaaaaaaa\r\n"));
    }
    request.push_str("\r\n");
    // The server may slam the door mid-write; that is success too.
    let _ = stream.write_all(request.as_bytes());
    let status = read_status(&mut stream);
    AttackOutcome {
        evicted: true,
        status,
    }
}

/// Announces a body far past the parser's size cap and sends none of it.
/// A healthy server answers 413 from the `Content-Length` alone.
pub fn oversized_body(addr: SocketAddr, declared_bytes: u64) -> AttackOutcome {
    let Ok(mut stream) = connect(addr) else {
        return AttackOutcome {
            evicted: true,
            status: None,
        };
    };
    let head = format!(
        "POST http://origin.invalid/upload HTTP/1.1\r\nHost: origin.invalid\r\n\
         Content-Length: {declared_bytes}\r\n\r\n"
    );
    let _ = stream.write_all(head.as_bytes());
    let status = read_status(&mut stream);
    AttackOutcome {
        evicted: true,
        status,
    }
}

/// A slow-read client: requests `url` (typically a large cached body),
/// then drains one byte every `drip`.  The server's output buffer for
/// this connection never empties, so its progress deadline must fire.
pub struct SlowReader {
    stream: TcpStream,
}

impl SlowReader {
    /// Sends the request and returns the draining handle.
    pub fn start(addr: SocketAddr, url: &str) -> std::io::Result<SlowReader> {
        let mut stream = connect(addr)?;
        let request = format!("GET {url} HTTP/1.1\r\nHost: origin.invalid\r\n\r\n");
        stream.write_all(request.as_bytes())?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(SlowReader { stream })
    }

    /// Reads one byte per `drip` until the server gives up on us or
    /// `give_up` expires.  `true` means we were evicted mid-body.
    pub fn drain(mut self, drip: Duration, give_up: Duration) -> bool {
        let start = Instant::now();
        let mut byte = [0u8; 1];
        while start.elapsed() < give_up {
            match self.stream.read(&mut byte) {
                Ok(0) => return true,
                Ok(_) => std::thread::sleep(drip),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return true,
            }
        }
        false
    }
}

/// Connection churn: `count` times, connect, linger briefly, and vanish
/// without sending a byte.  Exercises accept-path bookkeeping (slot
/// claim/release, deadline arm/disarm) at a hostile rate.
pub fn connection_churn(addr: SocketAddr, count: usize, linger: Duration) {
    for _ in 0..count {
        if let Ok(stream) = connect(addr) {
            std::thread::sleep(linger);
            drop(stream);
        }
    }
}

// ---------------------------------------------------------------------------
// Endurance: the keep-alive soak
// ---------------------------------------------------------------------------

/// Result of a [`keepalive_soak`] run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Keep-alive connections actually opened.
    pub connections: usize,
    /// Requests completed across all rounds.
    pub completed: u64,
    /// Connections that died mid-soak (must be zero for a healthy server).
    pub dropped: usize,
    /// Latency distribution over every soak request.
    pub hist: LatencyRecorder,
    /// Wall-clock duration of the soak.
    pub elapsed: Duration,
}

/// The soft fd limit of this process, read from `/proc/self/limits`
/// (falls back to 1024, the classic default, when unreadable).
pub fn fd_soft_limit() -> usize {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// Scales a requested soak size to what the fd budget can hold: each
/// soak connection costs two descriptors (client end and server end
/// share this process), plus headroom for the harness itself.
pub fn fd_budget_connections(requested: usize) -> usize {
    let limit = fd_soft_limit();
    let headroom = 256;
    let usable = limit.saturating_sub(headroom) / 2;
    requested.min(usable).max(1)
}

/// Holds `connections` polite keep-alive sessions open simultaneously and
/// drives `rounds` request/response cycles over every one of them,
/// round-robin.  A healthy server with a progress-based idle policy
/// drops none of them: every connection completes a request each round,
/// which re-arms its deadline.
pub fn keepalive_soak(
    addr: SocketAddr,
    url: &str,
    connections: usize,
    rounds: usize,
) -> Result<SoakReport, NakikaError> {
    let start = Instant::now();
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        clients.push(Some(ProxyClient::connect(addr)?));
    }
    let hist = LatencyRecorder::new();
    let mut completed = 0u64;
    let mut dropped = 0usize;
    for _ in 0..rounds {
        for slot in clients.iter_mut() {
            let Some(client) = slot.as_mut() else {
                continue;
            };
            let t = Instant::now();
            match client.get(url) {
                Ok(_) => {
                    hist.record(t.elapsed());
                    completed += 1;
                }
                Err(_) => {
                    dropped += 1;
                    *slot = None;
                }
            }
        }
    }
    Ok(SoakReport {
        connections,
        completed,
        dropped,
        hist,
        elapsed: start.elapsed(),
    })
}

// ---------------------------------------------------------------------------
// The barrage: polite latency under active attack
// ---------------------------------------------------------------------------

/// Result of a [`run_barrage`] run: warm keep-alive latency with and
/// without a concurrent attack.
#[derive(Debug, Clone)]
pub struct BarrageReport {
    /// p50/p99 (µs) of the polite clients with no attack running.
    pub baseline_p50_us: u64,
    /// See `baseline_p50_us`.
    pub baseline_p99_us: u64,
    /// p50/p99 (µs) of the polite clients while the barrage ran.
    pub attacked_p50_us: u64,
    /// See `attacked_p50_us`.
    pub attacked_p99_us: u64,
    /// Polite requests completed in each phase (all must succeed).
    pub polite_requests: u64,
    /// Slow-loris clients the server evicted (all of them, ideally).
    pub loris_evicted: usize,
    /// Slow-loris clients launched.
    pub loris_launched: usize,
    /// Header floods answered with 431.
    pub floods_rejected: usize,
    /// Header floods launched.
    pub floods_launched: usize,
}

/// Measures warm keep-alive latency across `clients` threads doing
/// `per_client` requests each, all recording into one shared histogram.
fn polite_wave(
    addr: SocketAddr,
    url: &str,
    clients: usize,
    per_client: usize,
) -> Result<LatencyRecorder, NakikaError> {
    let hist = Arc::new(LatencyRecorder::new());
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let hist = hist.clone();
                scope.spawn(move || -> Result<(), NakikaError> {
                    let mut client = ProxyClient::connect(addr)?;
                    for _ in 0..per_client {
                        let t = Instant::now();
                        client.get(url)?;
                        hist.record(t.elapsed());
                    }
                    Ok(())
                })
            })
            .collect();
        for w in workers {
            w.join()
                .map_err(|_| NakikaError::Internal("polite client panicked".into()))??;
        }
        Ok::<(), NakikaError>(())
    })?;
    Ok(Arc::try_unwrap(hist).unwrap_or_else(|shared| {
        let copy = LatencyRecorder::new();
        copy.merge(&shared);
        copy
    }))
}

/// Runs the headline hostile experiment: measure the warm keep-alive
/// distribution clean, then re-measure it while slow-loris clients,
/// header floods, and connection churn hammer the same server.  The
/// attack clients run on their own threads for the whole attacked wave;
/// the report pairs the two distributions so the caller can assert the
/// polite p99 stayed put.
pub fn run_barrage(
    addr: SocketAddr,
    url: &str,
    clients: usize,
    per_client: usize,
    loris_count: usize,
) -> Result<BarrageReport, NakikaError> {
    let baseline = polite_wave(addr, url, clients, per_client)?;

    let stop = Arc::new(AtomicBool::new(false));
    let lorises: Vec<_> = (0..loris_count)
        .map(|_| {
            std::thread::spawn(move || {
                // Drip fast enough to look alive to a naive byte-activity
                // timer, far too slow to ever finish a request.
                slow_loris(addr, Duration::from_millis(20), Duration::from_secs(30))
            })
        })
        .collect();
    let flooder = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut launched = 0usize;
            let mut rejected = 0usize;
            while !stop.load(Ordering::Relaxed) {
                launched += 1;
                if header_flood(addr, 512).status == Some(431) {
                    rejected += 1;
                }
            }
            (launched, rejected)
        })
    };
    let churner = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                connection_churn(addr, 8, Duration::from_millis(1));
            }
        })
    };

    let attacked = polite_wave(addr, url, clients, per_client);

    stop.store(true, Ordering::Relaxed);
    let loris_launched = lorises.len();
    // The lorises give up on their own after the give_up window; we only
    // wait, never kill.
    let loris_evicted = lorises
        .into_iter()
        .filter_map(|t| t.join().ok())
        .filter(|outcome| outcome.evicted)
        .count();
    let (floods_launched, floods_rejected) = flooder.join().unwrap_or((0, 0));
    churner.join().ok();
    let attacked = attacked?;

    Ok(BarrageReport {
        baseline_p50_us: baseline.percentile_us(0.50),
        baseline_p99_us: baseline.percentile_us(0.99),
        attacked_p50_us: attacked.percentile_us(0.50),
        attacked_p99_us: attacked.percentile_us(0.99),
        polite_requests: baseline.count() + attacked.count(),
        loris_evicted,
        loris_launched,
        floods_rejected,
        floods_launched,
    })
}

// ---------------------------------------------------------------------------
// The full hostile suite, as run by the experiments harness
// ---------------------------------------------------------------------------

/// Scale knobs for [`run_hostile_suite`].
#[derive(Debug, Clone, Copy)]
pub struct HostileKnobs {
    /// Requests drawn from the flash-crowd generator.
    pub flash_requests: usize,
    /// Keep-alive connections the soak asks for (scaled down to the fd
    /// budget by [`fd_budget_connections`]).
    pub soak_connections: usize,
    /// Request/response rounds over every soak connection.
    pub soak_rounds: usize,
    /// Polite keep-alive clients in each barrage wave.
    pub barrage_clients: usize,
    /// Requests per polite client per wave.
    pub barrage_per_client: usize,
    /// Concurrent slow-loris clients during the attacked wave.
    pub loris_count: usize,
}

impl HostileKnobs {
    /// The CI-sized run.
    pub fn quick() -> HostileKnobs {
        HostileKnobs {
            flash_requests: 2_000,
            soak_connections: 1_000,
            soak_rounds: 3,
            barrage_clients: 8,
            barrage_per_client: 64,
            loris_count: 4,
        }
    }

    /// The full run recorded in EXPERIMENTS.md — including the
    /// 10k-connection soak (fd budget permitting).
    pub fn full() -> HostileKnobs {
        HostileKnobs {
            flash_requests: 20_000,
            soak_connections: 10_000,
            soak_rounds: 3,
            barrage_clients: 8,
            barrage_per_client: 256,
            loris_count: 8,
        }
    }
}

/// Everything [`run_hostile_suite`] measures on one transport.
#[derive(Debug, Clone)]
pub struct HostileSuiteReport {
    /// `threaded` or `reactor`.
    pub transport: String,
    /// Flash-crowd throughput (requests per second).
    pub flash_rps: f64,
    /// Flash-crowd p99 latency, µs.
    pub flash_p99_us: u64,
    /// Polite latency with and without the active attack.
    pub barrage: BarrageReport,
    /// The keep-alive soak outcome.
    pub soak: SoakReport,
    /// Deadline evictions the server counted over the whole suite.
    pub timeouts: u64,
    /// Connections refused over the cap (0: the suite sets no cap).
    pub rejected_over_cap: u64,
}

/// Stands up an origin + plain proxy and runs the whole hostile suite
/// against it: the flash-crowd workload, the slow-loris/flood barrage,
/// and the keep-alive soak.  The flash/barrage proxy runs with a
/// 1-second progress deadline so the attack phases resolve quickly; the
/// soak gets its own front-end with the default deadline (round-robin
/// over thousands of connections makes polite clients slow by nature).
pub fn run_hostile_suite(
    transport: Transport,
    knobs: HostileKnobs,
) -> Result<HostileSuiteReport, NakikaError> {
    let internal = |context: &str| {
        let context = context.to_string();
        move |e: std::io::Error| NakikaError::Internal(format!("{context}: {e}"))
    };
    let origin = HttpServer::start(
        0,
        service_fn(|_req: Request, _ctx| {
            Ok(Response::ok("text/html", "x".repeat(2096))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .map_err(internal("hostile origin failed to start"))?;
    let edge = NodeBuilder::plain_proxy("hostile-bench")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy = ProxyServer::start_with_options(
        0,
        edge.service(),
        transport,
        ServerOptions {
            idle_timeout_ms: 1_000,
            ..ServerOptions::default()
        },
    )
    .map_err(internal("hostile proxy failed to start"))?;
    let base = origin.base_url();
    let addr = proxy.addr();

    // Flash crowd: Zipf background, then 80% of traffic on one hot key.
    let mut crowd = FlashCrowd::new(256, 1.0, knobs.flash_requests / 2, 0.8, 42);
    let flash_hist = LatencyRecorder::new();
    let start = Instant::now();
    let mut client = ProxyClient::connect(addr)?;
    for _ in 0..knobs.flash_requests {
        let key = crowd.next_key();
        let t = Instant::now();
        client.get(&format!("{base}/flash/{key}.html"))?;
        flash_hist.record(t.elapsed());
    }
    let flash_secs = start.elapsed().as_secs_f64().max(1e-9);
    drop(client);

    // The barrage: polite latency clean, then under active attack.
    let hot_url = format!("{base}/flash/0.html");
    let barrage = run_barrage(
        addr,
        &hot_url,
        knobs.barrage_clients,
        knobs.barrage_per_client,
        knobs.loris_count,
    )?;

    // The soak: thousands of polite keep-alive sessions, zero drops
    // allowed.  The threaded transport parks one OS thread per
    // connection, so its soak is capped; the reactor takes the full ask.
    // It runs against a second front-end with the *default* progress
    // deadline: one client round-robining thousands of connections
    // leaves each one idle for whole seconds between its requests, so
    // the barrage proxy's deliberately aggressive 1-second deadline
    // would evict polite clients for being patient.
    let soak_proxy = ProxyServer::start_with(0, edge.service(), transport)
        .map_err(internal("hostile soak proxy failed to start"))?;
    let conns = match transport {
        Transport::Threaded => knobs.soak_connections.min(128),
        Transport::Reactor => fd_budget_connections(knobs.soak_connections),
    };
    http_get_via_proxy(soak_proxy.addr(), &hot_url)?;
    let soak = keepalive_soak(soak_proxy.addr(), &hot_url, conns, knobs.soak_rounds)?;

    Ok(HostileSuiteReport {
        transport: match transport {
            Transport::Threaded => "threaded".to_string(),
            Transport::Reactor => "reactor".to_string(),
        },
        flash_rps: knobs.flash_requests as f64 / flash_secs,
        flash_p99_us: flash_hist.percentile_us(0.99),
        barrage,
        soak,
        timeouts: proxy.stats().timeouts(),
        rejected_over_cap: proxy.stats().rejected_over_cap(),
    })
}

/// Formats one [`HostileSuiteReport`] as the block the experiments
/// harness prints per transport.
pub fn format_hostile_report(r: &HostileSuiteReport) -> String {
    format!(
        "{transport}:\n\
         \x20 flash crowd: {flash_rps:.0} rps, p99 {flash_p99} us\n\
         \x20 barrage: polite p50/p99 {b50}/{b99} us clean -> {a50}/{a99} us under attack \
         ({ratio:.2}x p99)\n\
         \x20 attackers: {loris_evicted}/{loris_launched} slow-loris evicted, \
         {floods_rejected}/{floods_launched} header floods answered 431\n\
         \x20 soak: {conns} keep-alive connections x {completed} requests, {dropped} dropped, \
         p99 {soak_p99} us in {elapsed:.1} s\n\
         \x20 server counters: {timeouts} deadline evictions, {over_cap} over-cap refusals\n",
        transport = r.transport,
        flash_rps = r.flash_rps,
        flash_p99 = r.flash_p99_us,
        b50 = r.barrage.baseline_p50_us,
        b99 = r.barrage.baseline_p99_us,
        a50 = r.barrage.attacked_p50_us,
        a99 = r.barrage.attacked_p99_us,
        ratio = r.barrage.attacked_p99_us as f64 / r.barrage.baseline_p99_us.max(1) as f64,
        loris_evicted = r.barrage.loris_evicted,
        loris_launched = r.barrage.loris_launched,
        floods_rejected = r.barrage.floods_rejected,
        floods_launched = r.barrage.floods_launched,
        conns = r.soak.connections,
        completed = r.soak.completed,
        dropped = r.soak.dropped,
        soak_p99 = r.soak.hist.percentile_us(0.99),
        elapsed = r.soak.elapsed.as_secs_f64(),
        timeouts = r.timeouts,
        over_cap = r.rejected_over_cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let mut a = ZipfKeys::new(100, 1.0, 7);
        let mut b = ZipfKeys::new(100, 1.0, 7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let k = a.next_key();
            assert_eq!(k, b.next_key(), "same seed must replay");
            counts[k] += 1;
        }
        // Under Zipf(1.0) over 100 keys the top key draws ~19% of traffic.
        assert!(
            counts[0] > counts[50].max(1) * 5,
            "head not hot: {counts:?}"
        );
        let top10: usize = counts[..10].iter().sum();
        assert!(top10 > 5_000, "top-10 keys drew only {top10}/10000");
    }

    #[test]
    fn flash_crowd_concentrates_after_the_flash() {
        let mut crowd = FlashCrowd::new(1000, 1.0, 500, 0.9, 11);
        let before_hot = (0..500).filter(|_| crowd.next_key() == 0).count();
        let after_hot = (0..500).filter(|_| crowd.next_key() == 0).count();
        assert!(
            after_hot > before_hot * 2 && after_hot > 400,
            "flash did not concentrate: {before_hot} -> {after_hot}"
        );
    }

    #[test]
    fn fd_budget_is_sane() {
        let n = fd_budget_connections(10_000);
        assert!(n >= 1);
        assert!(n <= 10_000);
        assert!(fd_soft_limit() >= 64);
    }
}
