//! One cooperative edge node as an OS process; see
//! `nakika_bench::cluster::node_main` for the argument list and the
//! stdio handshake, and `docs/CLUSTER.md` for the operator's guide.

fn main() {
    if let Err(message) = nakika_bench::cluster::node_main(std::env::args().skip(1)) {
        eprintln!("edge-node: {message}");
        std::process::exit(2);
    }
}
