//! Regenerates every table and figure of the Na Kika paper's evaluation (§5).
//!
//! Run with `cargo run --release -p nakika-bench --bin nakika-experiments`.
//! Pass `--quick` for a faster, lower-precision run (used in CI and while
//! iterating).  The output of a full run is recorded in EXPERIMENTS.md.
//! Every run also measures end-to-end requests/sec through the real TCP
//! proxy path and records it in `BENCH_proxy.json`, so the performance
//! trajectory of the transport stack is tracked PR over PR.

use nakika_bench::hostile::{format_hostile_report, run_hostile_suite, HostileKnobs};
use nakika_bench::{
    bench_proxy_suite, format_proxy_suite, format_resource_controls, format_simm, format_spec,
    format_splice_comparison, format_table2,
};
use nakika_server::Transport;
use nakika_sim::experiments;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, flash_requests, fig7_clients, spec_requests) = if quick {
        (3, 120, vec![60usize], 300)
    } else {
        (10, 1_200, vec![120usize, 180, 240], 2_000)
    };

    println!("== Table 1 / Table 2: micro-benchmark latency (2,096-byte static page) ==");
    println!("(paper, cold/warm ms: Proxy 3/1, DHT 5/1, Admin 16/2, Pred-0 19/2, Pred-1 20/2,");
    println!(" Match-1 21/2, Pred-10 22/2, Pred-50 30/2, Pred-100 41/2)\n");
    let rows = experiments::table2(iters);
    println!("{}", format_table2(&rows));

    println!("== §5.1 capacity: plain proxy vs Match-1 scripted node ==");
    println!("(paper: 603 rps with 90 clients vs 294 rps with 30 clients — roughly a 2x gap)\n");
    let cap = experiments::capacity(30, if quick { 200 } else { 2_000 });
    println!(
        "plain proxy capacity: {:>8.0} rps (at {} clients: {:.0} rps)",
        cap.proxy_rps, cap.clients, cap.proxy_at_load
    );
    println!(
        "Match-1 capacity:     {:>8.0} rps (at {} clients: {:.0} rps)",
        cap.match1_rps, cap.clients, cap.match1_at_load
    );
    println!(
        "scripting slowdown:   {:>8.2}x  (paper: ~2.1x)\n",
        cap.proxy_rps / cap.match1_rps.max(1e-9)
    );

    println!("== §5.1 congestion-based resource controls under a flash crowd ==");
    println!(
        "(paper: 30 gens 294->396 rps, 90 gens 229->356 rps, +misbehaving script 47 vs 382 rps;"
    );
    println!(" rejects <0.55%, drops <0.08%)\n");
    let rows = experiments::resource_controls(flash_requests);
    println!("{}", format_resource_controls(&rows));

    println!("== §5.2 SIMMs, local testbed (160 clients) ==");
    println!("(paper LAN: p90 904 ms server vs 964 ms Na Kika; shaped WAN 80 ms / 8 Mbps:");
    println!(" 8.88 s vs 1.21 s; video ok 26.2% vs 99.9%)\n");
    let clients = if quick { 40 } else { 160 };
    let lan = experiments::SimmScenario::local(clients);
    let wan = experiments::SimmScenario::shaped_wan(clients);
    let mut rows = vec![
        experiments::simm_single_server(&lan),
        experiments::simm_nakika(&lan, 1, false),
        experiments::simm_nakika(&lan, 1, true),
    ];
    println!("-- switched 100 Mbit LAN --\n{}", format_simm(&rows));
    rows = vec![
        experiments::simm_single_server(&wan),
        experiments::simm_nakika(&wan, 1, false),
        experiments::simm_nakika(&wan, 1, true),
    ];
    println!("-- shaped WAN (80 ms, 8 Mbps) --\n{}", format_simm(&rows));

    println!("== Figure 7 / §5.2 SIMMs, wide area (12 client sites, east/west/asia) ==");
    println!("(paper @240 clients: p90 60.1 s server, 31.6 s cold, 9.7 s warm;");
    println!(" video ok 0% / 11.5% / 80.3%; failures 60% / 5.6% / 1.9%)\n");
    let results = experiments::figure7(&fig7_clients, 12);
    println!("{}", format_simm(&results));
    println!("-- CDF series (seconds vs cumulative fraction), one block per configuration --");
    for result in &results {
        println!("\n# {} / {} clients", result.config, result.clients);
        for (ms, p) in &result.html_cdf.steps {
            println!("{:.3}\t{:.3}", ms / 1000.0, p);
        }
    }

    println!("\n== §5.3 SPECweb99-like hard-state experiment ==");
    println!("(paper: PHP server 13.7 s mean / 10.8 rps vs Na Kika 4.3 s / 34.3 rps — ~3x)\n");
    let rows = experiments::specweb(if quick { 40 } else { 160 }, spec_requests, 5);
    println!("{}", format_spec(&rows));

    println!("== end-to-end proxy throughput (real TCP), per scenario and transport ==");
    println!("(cold cache / warm keep-alive / warm close / 64-way concurrent keep-alive /");
    println!(" 1 MiB streamed bodies / mixed warm+slow-cold-origin / peer-answered misses /");
    println!(" warm scripted pipeline under the bytecode VM and the interpreter,");
    println!(" threaded vs reactor, with the miss-heavy scenarios also measured as");
    println!(" reactor-splice — the event-loop origin splice, the production default;");
    println!(" see docs/BENCHMARKING.md for what each isolates)\n");
    match bench_proxy_suite(if quick { 240 } else { 2_048 }, 64) {
        Ok(suite) => {
            println!("{}", format_proxy_suite(&suite));
            let splice_vs_offload = format_splice_comparison(&suite);
            if !splice_vs_offload.is_empty() {
                println!("cache-miss relay, event-loop splice vs worker-pool offload:");
                println!("{splice_vs_offload}");
            }
            if let (Some(threaded), Some(reactor)) = (
                suite.scenario("warm-concurrent", "threaded"),
                suite.scenario("warm-concurrent", "reactor"),
            ) {
                println!(
                    "reactor vs threaded at {} keep-alive clients: {:.2}x",
                    reactor.concurrency,
                    reactor.requests_per_sec / threaded.requests_per_sec.max(1e-9)
                );
            }
            if let (Some(pure), Some(mixed)) = (
                suite.scenario("warm-concurrent", "reactor"),
                suite.scenario("bench_mixed", "reactor"),
            ) {
                println!(
                    "reactor warm throughput retained under slow cold misses: {:.0}%",
                    100.0 * mixed.requests_per_sec / pure.requests_per_sec.max(1e-9)
                );
            }
            // The warm path is identical whichever way misses are relayed,
            // so the splice's retention is judged against the same
            // pure-warm `reactor` baseline.
            if let (Some(pure), Some(mixed)) = (
                suite.scenario("warm-concurrent", "reactor"),
                suite.scenario("bench_mixed", "reactor-splice"),
            ) {
                println!(
                    "splice warm throughput retained under slow cold misses: {:.0}%",
                    100.0 * mixed.requests_per_sec / pure.requests_per_sec.max(1e-9)
                );
            }
            if let (Some(cold), Some(peer)) = (
                suite.scenario("cold-cache", "reactor"),
                suite.scenario("bench_peer", "reactor"),
            ) {
                println!(
                    "peer-answered miss vs origin-answered miss (reactor): {:.2}x",
                    peer.requests_per_sec / cold.requests_per_sec.max(1e-9)
                );
            }
            if let (Some(vm), Some(interp)) = (
                suite.scenario("bench_scripted", "reactor"),
                suite.scenario("bench_scripted_interp", "reactor"),
            ) {
                println!(
                    "bytecode VM vs interpreter on the warm scripted pipeline (reactor): {:.2}x",
                    vm.requests_per_sec / interp.requests_per_sec.max(1e-9)
                );
            }
            match suite.write_json("BENCH_proxy.json") {
                Ok(()) => println!("recorded in BENCH_proxy.json"),
                Err(e) => eprintln!("could not write BENCH_proxy.json: {e}"),
            }
        }
        Err(e) => eprintln!("proxy throughput bench failed: {e}"),
    }

    println!("\n== hostile workloads: flash crowd, slow-loris/flood barrage, keep-alive soak ==");
    println!("(the survival numbers: polite p99 under active attack, attacker evictions,");
    println!(" and thousands of simultaneous keep-alive sessions with zero drops;");
    println!(" NAKIKA_SOAK_CONNS overrides the soak size)\n");
    let mut knobs = if quick {
        HostileKnobs::quick()
    } else {
        HostileKnobs::full()
    };
    if let Some(conns) = std::env::var("NAKIKA_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        knobs.soak_connections = conns;
    }
    for transport in [Transport::Threaded, Transport::Reactor] {
        match run_hostile_suite(transport, knobs) {
            Ok(report) => {
                print!("{}", format_hostile_report(&report));
                if report.soak.dropped > 0 {
                    eprintln!(
                        "HOSTILE REGRESSION: {} polite soak connections dropped on {:?}",
                        report.soak.dropped, transport
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("hostile suite failed on {transport:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}
