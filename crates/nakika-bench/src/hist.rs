//! A log-bucketed latency histogram for the benchmark harness.
//!
//! Mean throughput hides tail pain: a transport can post the same
//! requests/sec while its p99 triples under hostile load.  Every bench
//! scenario therefore records per-request latency into a
//! [`LatencyRecorder`] and reports p50/p99/p999 next to throughput.
//!
//! The design is the standard HdrHistogram-style log-linear bucketing:
//! values below [`SUBBUCKETS`] microseconds get one exact bucket each;
//! above that, each power-of-two range is split into [`SUBBUCKETS`]
//! linear sub-buckets, bounding relative error at `1/SUBBUCKETS`
//! (6.25%).  Buckets are `AtomicU64`s bumped with relaxed `fetch_add`,
//! so a single recorder can be shared by value-free `&self` across
//! every client thread of a scenario — no lock, no per-thread
//! flush protocol.  Recorders are also mergeable ([`LatencyRecorder::merge`])
//! for harnesses that prefer one recorder per thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range; also the count of exact
/// single-microsecond buckets at the bottom of the scale.
pub const SUBBUCKETS: usize = 16;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Power-of-two groups above the exact range.  Group `g` covers
/// `[SUBBUCKETS << (g-1), SUBBUCKETS << g)` microseconds; 48 groups
/// reach past nine years, far beyond any latency we can record.
const GROUPS: usize = 48;
const BUCKETS: usize = (GROUPS + 1) * SUBBUCKETS;

/// Largest value the histogram distinguishes; anything bigger clamps
/// into the top bucket.
const MAX_VALUE_US: u64 = (SUBBUCKETS as u64) << (GROUPS - 1);

/// A mergeable, thread-shareable latency histogram (microseconds).
pub struct LatencyRecorder {
    buckets: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

impl Clone for LatencyRecorder {
    fn clone(&self) -> Self {
        let copy = LatencyRecorder::new();
        copy.merge(self);
        copy
    }
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99, p999) = self.summary_us();
        f.debug_struct("LatencyRecorder")
            .field("count", &self.count())
            .field("p50_us", &p50)
            .field("p99_us", &p99)
            .field("p999_us", &p999)
            .finish()
    }
}

/// Bucket index for `us`.  Values under [`SUBBUCKETS`] are exact; above
/// that the top [`SUB_BITS`] bits below the most significant bit pick
/// the linear sub-bucket within the value's power-of-two group.
fn index(us: u64) -> usize {
    let us = us.min(MAX_VALUE_US);
    if us < SUBBUCKETS as u64 {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((us >> (msb - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    group * SUBBUCKETS + sub
}

/// Highest value that lands in bucket `i` — the conservative (upper
/// edge) representative returned by percentile queries, so reported
/// tails err high, never low.
fn bucket_upper_us(i: usize) -> u64 {
    let group = i / SUBBUCKETS;
    let sub = (i % SUBBUCKETS) as u64;
    if group == 0 {
        return sub;
    }
    let width = 1u64 << (group - 1);
    (SUBBUCKETS as u64 + sub + 1) * width - 1
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder {
            // `AtomicU64` is not `Copy`; build the array through a Vec.
            buckets: (0..BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .try_into()
                .unwrap_or_else(|_| unreachable!("length is BUCKETS by construction")),
            total: AtomicU64::new(0),
        }
    }

    /// Records one latency sample, in microseconds.  `&self`: safe to
    /// call concurrently from any number of client threads.
    pub fn record_micros(&self, us: u64) {
        self.buckets[index(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one latency sample from a [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_micros(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Folds `other`'s samples into `self` (for per-thread recorders).
    pub fn merge(&self, other: &LatencyRecorder) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (e.g. `0.99`), in microseconds: the
    /// upper edge of the bucket containing the `ceil(q * count)`-th
    /// smallest sample.  Returns 0 for an empty recorder.
    pub fn percentile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(BUCKETS - 1)
    }

    /// Per-bucket counts, for tests that compare whole distributions.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The (p50, p99, p999) triple every bench scenario reports.
    pub fn summary_us(&self) -> (u64, u64, u64) {
        (
            self.percentile_us(0.50),
            self.percentile_us(0.99),
            self.percentile_us(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LatencyRecorder::new();
        for us in 0..SUBBUCKETS as u64 {
            h.record_micros(us);
        }
        assert_eq!(h.count(), SUBBUCKETS as u64);
        // Median of 0..=15 at the ceil-rank definition is 7.
        assert_eq!(h.percentile_us(0.5), 7);
        assert_eq!(h.percentile_us(1.0), 15);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = LatencyRecorder::new();
        for &us in &[17u64, 1_000, 123_456, 9_999_999, u64::MAX / 2] {
            h.record_micros(us);
            let got = h.percentile_us(1.0);
            let clamped = us.min(MAX_VALUE_US);
            assert!(got >= clamped, "upper edge {got} below sample {clamped}");
            assert!(
                (got - clamped) as f64 <= clamped as f64 / SUBBUCKETS as f64 + 1.0,
                "bucket error too large: {us} -> {got}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyRecorder::new();
        let b = LatencyRecorder::new();
        let both = LatencyRecorder::new();
        for us in [3u64, 90, 4_000, 250_000] {
            a.record_micros(us);
            both.record_micros(us);
        }
        for us in [7u64, 90, 1_000_000] {
            b.record_micros(us);
            both.record_micros(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.bucket_counts(), both.bucket_counts());
    }

    #[test]
    fn shared_across_threads() {
        let h = std::sync::Arc::new(LatencyRecorder::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record_micros(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
        assert!(h.percentile_us(0.999) >= h.percentile_us(0.5));
    }
}
