//! Helpers for standing up cooperative edge clusters over real TCP.
//!
//! Everything the multi-node story needs outside the core crates lives
//! here, in three layers:
//!
//! * [`LocalNode`] — an in-process edge node (overlay-joined
//!   [`nakika_core::NaKikaNode`] + [`TcpOrigin`] + [`ProxyServer`] on an
//!   ephemeral port) for benchmarks and integration tests that want real
//!   sockets without real processes.
//! * [`node_main`] — the child entrypoint behind the `edge-node` binary and
//!   the `edge_cluster` example: one OS process per node, coordinated over
//!   a line-oriented stdin/stdout handshake (see [`node_main`] for the
//!   protocol).
//! * [`spawn_cluster`] / [`ClusterProc`] — the parent side of that
//!   handshake: spawn N children, collect their `READY` lines, broadcast
//!   the full roster, wait for `JOINED`, and shut everything down by
//!   closing stdin on drop.
//!
//! Every node also serves its counters at [`STATS_PATH`] as plain text
//! (`key value` per line) so tests and operators can assert cluster-wide
//! cache-stat consistency over the same HTTP port that serves traffic.
//! `docs/CLUSTER.md` is the operator-facing guide to the same machinery.

use nakika_core::service::{DispatchHint, HttpService, NakikaError, RequestCtx};
use nakika_core::{NodeBuilder, NodeHandle};
use nakika_http::{Request, Response};
use nakika_overlay::{key_for, Location, Membership, MembershipConfig, Overlay};
use nakika_server::{http_get_via_proxy, ProxyServer, TcpOrigin, Transport};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;

/// Path every cluster node answers with its counters (plain text, one
/// `key value` pair per line) instead of proxying.
pub const STATS_PATH: &str = "/__nakika/stats";

/// Wraps a node's service to answer [`STATS_PATH`] locally; everything
/// else is forwarded untouched.  The stats response is assembled from
/// in-memory counters, so it is safe to serve inline on the event loop.
pub struct ClusterService {
    handle: Arc<NodeHandle>,
    name: String,
}

impl ClusterService {
    /// Wraps `handle`, reporting stats under `name`.
    pub fn new(handle: Arc<NodeHandle>, name: &str) -> ClusterService {
        ClusterService {
            handle,
            name: name.to_string(),
        }
    }
}

impl HttpService for ClusterService {
    fn call(&self, req: Request, ctx: &RequestCtx) -> Result<Response, NakikaError> {
        if req.uri.path == STATS_PATH {
            return Ok(Response::ok(
                "text/plain",
                stats_text(&self.handle, &self.name),
            ));
        }
        self.handle.call(req, ctx)
    }

    fn dispatch_hint(&self, req: &Request, ctx: &RequestCtx) -> DispatchHint {
        if req.uri.path == STATS_PATH {
            DispatchHint::Inline
        } else {
            self.handle.dispatch_hint(req, ctx)
        }
    }
}

/// Renders the counters served at [`STATS_PATH`]: the node's request
/// counters plus the cache shard totals, one `key value` pair per line
/// (the `node` line carries the node's name instead of a number).  Nodes
/// running gossip membership append their `gossip_*` counters.
pub fn stats_text(handle: &NodeHandle, name: &str) -> String {
    let stats = handle.node().stats();
    let cache = handle.node().cache_stats();
    let mut text = format!(
        "node {name}\n\
         requests {}\n\
         cache_hits {}\n\
         cache_misses {}\n\
         cache_inserts {}\n\
         peer_hits {}\n\
         peer_misses {}\n\
         origin_fetches {}\n\
         replication_pushes {}\n\
         owner_redirects {}\n\
         script_compiles {}\n\
         script_cache_hits {}\n",
        stats.requests,
        cache.hits,
        cache.misses,
        cache.inserts,
        stats.peer_hits,
        stats.peer_misses,
        stats.origin_fetches,
        stats.replication_pushes,
        stats.owner_redirects,
        cache.script_compiles,
        cache.script_cache_hits,
    );
    if let Some(membership) = handle.membership() {
        let gossip = membership.stats();
        text.push_str(&format!(
            "gossip_alive {}\n\
             gossip_suspect {}\n\
             gossip_faulty {}\n\
             gossip_probes {}\n\
             gossip_roster_version {}\n",
            gossip.alive, gossip.suspect, gossip.faulty, gossip.probes_sent, gossip.roster_version,
        ));
    }
    text
}

/// Parses a [`STATS_PATH`] response body back into a counter map.
/// Non-numeric values (the `node` name line) are skipped.
pub fn parse_stats(body: &str) -> HashMap<String, u64> {
    body.lines()
        .filter_map(|line| {
            let (key, value) = line.trim().split_once(' ')?;
            Some((key.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Fetches and parses the stats of the node listening at `base_url`
/// (e.g. `http://127.0.0.1:4701`).
pub fn fetch_stats(base_url: &str) -> Result<HashMap<String, u64>, NakikaError> {
    let addr = parse_base_url(base_url)?;
    let response = http_get_via_proxy(addr, &format!("{base_url}{STATS_PATH}"))?;
    let body = response.body.to_bytes();
    Ok(parse_stats(&String::from_utf8_lossy(&body)))
}

/// Parses `http://host:port` into a socket address.
fn parse_base_url(base_url: &str) -> Result<SocketAddr, NakikaError> {
    let hostport = base_url
        .strip_prefix("http://")
        .unwrap_or(base_url)
        .trim_end_matches('/');
    hostport
        .parse()
        .map_err(|e| NakikaError::Internal(format!("bad node url {base_url}: {e}")))
}

/// An in-process cooperative edge node listening on a real TCP port.
///
/// All nodes of one logical cluster share an [`Overlay`] instance (each
/// process in a real deployment holds its own replica of the membership
/// view; in-process they can simply share one), so this helper covers the
/// peer-routing data path — DNS-free, fork-free — while `spawn_cluster`
/// covers the full multi-process story.
pub struct LocalNode {
    /// The node's name (also its overlay identity: `key_for(name)`).
    pub name: String,
    /// `http://127.0.0.1:port` for this node's proxy front-end.
    pub base_url: String,
    /// The node stack behind the server, for direct stat inspection.
    pub handle: Arc<NodeHandle>,
    /// The listening front-end; dropping it stops the node.
    pub server: ProxyServer,
}

/// Starts an in-process edge node named `name`, joins it to `overlay`
/// with its listening address announced, and returns it ready to serve.
/// `replicate` optionally enables hot-entry replication as
/// `(successors, threshold)`.
pub fn start_local_node(
    name: &str,
    overlay: &Arc<Overlay>,
    transport: Transport,
    replicate: Option<(usize, u32)>,
) -> Result<LocalNode, NakikaError> {
    start_local_node_with(name, overlay, replicate, |service| {
        ProxyServer::start_with(0, service, transport)
    })
}

/// As [`start_local_node`], but the front-end runs the reactor transport
/// with an explicit [`nakika_server::ReactorConfig`] — benchmarks use this
/// to pin `splice_origin` so the pooled-offload and event-loop-splice miss
/// paths can be measured side by side.
pub fn start_local_reactor_node(
    name: &str,
    overlay: &Arc<Overlay>,
    config: nakika_server::ReactorConfig,
    replicate: Option<(usize, u32)>,
) -> Result<LocalNode, NakikaError> {
    start_local_node_with(name, overlay, replicate, |service| {
        ProxyServer::start_reactor(0, service, config)
    })
}

fn start_local_node_with(
    name: &str,
    overlay: &Arc<Overlay>,
    replicate: Option<(usize, u32)>,
    front: impl FnOnce(Arc<dyn HttpService>) -> std::io::Result<ProxyServer>,
) -> Result<LocalNode, NakikaError> {
    let id = key_for(name);
    overlay.join(id, Location::new(0.0, 0.0));
    let mut builder = NodeBuilder::proxy_with_dht(name)
        .overlay(Arc::clone(overlay), id)
        .origin(Arc::new(TcpOrigin::new()));
    if let Some((successors, threshold)) = replicate {
        builder = builder.replicate_hot(successors, threshold);
    }
    let handle = Arc::new(builder.build());
    let service = Arc::new(ClusterService::new(Arc::clone(&handle), name));
    let server = front(service)
        .map_err(|e| NakikaError::Internal(format!("node {name} failed to listen: {e}")))?;
    let base_url = format!("http://{}", server.addr());
    handle.node().set_public_addr(&base_url);
    overlay.set_addr(id, &base_url);
    Ok(LocalNode {
        name: name.to_string(),
        base_url,
        handle,
        server,
    })
}

/// The `edge-node --help` text.  Printed verbatim; the deprecation note on
/// the `PEERS` handshake is part of the operator contract.
pub const NODE_USAGE: &str = "\
usage: edge-node NAME [flags]

One cooperative edge node.  Serves client traffic, the gossip membership
exchange (/__nakika/gossip) and its counters (/__nakika/stats) on one port,
and exits cleanly when stdin reaches EOF.

flags:
  --port P                 listen port (0 = ephemeral, the default)
  --transport T            threaded | reactor (default reactor)
  --replicate N            hot-entry replication onto N successors (0 = off)
  --threshold T            local hits before an entry counts as hot
  --join URL               gossip seed to bootstrap the roster from; repeat
                           for multiple seeds.  One seed is enough: the
                           roster converges through the gossip exchange.
  --probe-interval-ms MS   gossip probe interval (default 250)
  --suspect-timeout-ms MS  unrefuted suspicion before faulty (default 1000)
  --redirect-to-owner      answer cacheable requests owned by another live
                           member with a 307 to that member instead of
                           relaying (counted as owner_redirects in stats)

The node always prints `READY <name> <base-url>` on stdout once listening.
DEPRECATED: the static stdio roster handshake (parent writes
`PEERS <name>=<url>,...`, node answers `JOINED`) is still honoured as a
compatibility path, but it neither detects failures nor admits new members;
use --join, which subsumes it.
";

/// Runs one cluster node as a child process until stdin closes.
///
/// `args` is the argument list after the program name; see [`NODE_USAGE`]
/// for the flags.  The node prints `READY <name> <base-url>` once it is
/// listening and serves until stdin reaches EOF, then exits cleanly.
///
/// Membership is learned over gossip from the `--join` seeds.  The legacy
/// static handshake — parent writes `PEERS <name>=<url>,...` on stdin, the
/// node answers `JOINED` — still works as a deprecated compatibility path:
/// the roster entries are fed into the same membership machinery (as
/// `introduce`d alive members), so gossip and failure detection pick them
/// up from there.
///
/// Returns an error string suitable for printing to stderr.
pub fn node_main<I: IntoIterator<Item = String>>(args: I) -> Result<(), String> {
    let mut args = args.into_iter();
    let name = args.next().ok_or(NODE_USAGE)?;
    if name == "--help" || name == "-h" {
        print!("{NODE_USAGE}");
        return Ok(());
    }
    let mut port = 0u16;
    let mut transport = Transport::Reactor;
    let mut replicate = 0usize;
    let mut threshold = 2u32;
    let mut joins: Vec<String> = Vec::new();
    let mut gossip_config = MembershipConfig::default();
    let mut redirect_to_owner = false;
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{NODE_USAGE}");
            return Ok(());
        }
        let mut value = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--port" => port = value()?.parse().map_err(|e| format!("--port: {e}"))?,
            "--transport" => {
                transport = match value()?.as_str() {
                    "threaded" => Transport::Threaded,
                    "reactor" => Transport::Reactor,
                    other => return Err(format!("unknown transport {other}")),
                }
            }
            "--replicate" => {
                replicate = value()?.parse().map_err(|e| format!("--replicate: {e}"))?
            }
            "--threshold" => {
                threshold = value()?.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            "--join" => joins.push(value()?),
            "--redirect-to-owner" => redirect_to_owner = true,
            "--probe-interval-ms" => {
                gossip_config.probe_interval_ms = value()?
                    .parse()
                    .map_err(|e| format!("--probe-interval-ms: {e}"))?
            }
            "--suspect-timeout-ms" => {
                gossip_config.suspect_timeout_ms = value()?
                    .parse()
                    .map_err(|e| format!("--suspect-timeout-ms: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let overlay = Arc::new(Overlay::with_defaults());
    let id = key_for(&name);
    overlay.join(id, Location::new(0.0, 0.0));
    let membership = Arc::new(Membership::new(&name, gossip_config));
    let mut builder = NodeBuilder::proxy_with_dht(&name)
        .overlay(Arc::clone(&overlay), id)
        .gossip(Arc::clone(&membership))
        .origin(Arc::new(TcpOrigin::new()));
    if replicate > 0 {
        builder = builder.replicate_hot(replicate, threshold);
    }
    if redirect_to_owner {
        builder = builder.redirect_to_owner();
    }
    let handle = Arc::new(builder.build());
    let service = Arc::new(ClusterService::new(Arc::clone(&handle), &name));
    let server = ProxyServer::start_with(port, service, transport)
        .map_err(|e| format!("listen failed: {e}"))?;
    let base_url = format!("http://{}", server.addr());
    handle.node().set_public_addr(&base_url);
    overlay.set_addr(id, &base_url);
    for seed in &joins {
        membership.add_seed(seed);
    }
    // Probing starts only now that the node knows its own address.
    membership.set_self_addr(&base_url);

    let stdout = std::io::stdout();
    writeln!(stdout.lock(), "READY {name} {base_url}").map_err(|e| e.to_string())?;
    stdout.lock().flush().map_err(|e| e.to_string())?;

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let Some(roster) = line.trim().strip_prefix("PEERS ") else {
            continue;
        };
        // Deprecated compatibility path: feed the static roster into the
        // membership as introduced alive members, so gossip and the failure
        // detector take over from there.
        for entry in roster.split(',').filter(|s| !s.trim().is_empty()) {
            let Some((peer, url)) = entry.trim().split_once('=') else {
                return Err(format!("bad roster entry {entry}"));
            };
            if peer != name {
                let events = membership.introduce(peer, url);
                nakika_core::gossip::apply_events(&overlay, &events);
            }
        }
        writeln!(stdout.lock(), "JOINED").map_err(|e| e.to_string())?;
        stdout.lock().flush().map_err(|e| e.to_string())?;
    }
    // Stdin closed: the parent is done with us.  Dropping the server (and
    // with it the node's replication worker) shuts the node down.
    drop(server);
    Ok(())
}

/// One child node spawned by [`spawn_cluster`], shut down on drop by
/// closing its stdin and waiting for it to exit.
pub struct ClusterProc {
    /// The node's name, as passed to [`spawn_cluster`].
    pub name: String,
    /// `http://127.0.0.1:port`, as reported by the child's `READY` line.
    pub base_url: String,
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl ClusterProc {
    /// Fetches and parses this node's [`STATS_PATH`] counters.
    pub fn stats(&self) -> Result<HashMap<String, u64>, NakikaError> {
        fetch_stats(&self.base_url)
    }

    /// Kills the node abruptly (SIGKILL, no shutdown handshake) and reaps
    /// it — the churn tests' stand-in for a crashed member.  The survivors
    /// must notice through gossip, not through any exit notification.
    pub fn kill(&mut self) -> std::io::Result<()> {
        drop(self.stdin.take());
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }
}

impl Drop for ClusterProc {
    fn drop(&mut self) {
        // EOF on stdin is the shutdown signal; then reap the child so the
        // test binary leaves no zombies behind.
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

fn read_trimmed_line(reader: &mut BufReader<ChildStdout>) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cluster child exited during handshake",
        ));
    }
    Ok(line.trim().to_string())
}

/// Spawns one `program` child per name in `names` and runs the cluster
/// handshake described in [`node_main`]: collect every child's `READY`
/// line, broadcast the complete roster to all of them, and wait for each
/// `JOINED` acknowledgement.  `prefix_args` is inserted before the node
/// name (the `edge_cluster` example re-invokes itself with `--node`;
/// tests invoke the `edge-node` binary with no prefix); `extra_args` is
/// appended after it (e.g. `--replicate 1`).
///
/// The returned processes shut down (stdin EOF, then reaped) when
/// dropped.
pub fn spawn_cluster(
    program: &std::path::Path,
    prefix_args: &[&str],
    names: &[&str],
    extra_args: &[&str],
) -> std::io::Result<Vec<ClusterProc>> {
    let mut procs = Vec::with_capacity(names.len());
    for name in names {
        let mut child = Command::new(program)
            .args(prefix_args)
            .arg(name)
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        procs.push(ClusterProc {
            name: name.to_string(),
            base_url: String::new(),
            child,
            stdin: Some(stdin),
            stdout,
        });
    }
    for proc in &mut procs {
        let ready = read_trimmed_line(&mut proc.stdout)?;
        let mut parts = ready.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("READY"), Some(name), Some(url)) if name == proc.name => {
                proc.base_url = url.to_string();
            }
            _ => {
                return Err(std::io::Error::other(format!(
                    "bad READY line from {}: {ready:?}",
                    proc.name
                )));
            }
        }
    }
    let roster = procs
        .iter()
        .map(|p| format!("{}={}", p.name, p.base_url))
        .collect::<Vec<_>>()
        .join(",");
    for proc in &mut procs {
        let stdin = proc.stdin.as_mut().expect("stdin open during handshake");
        writeln!(stdin, "PEERS {roster}")?;
        stdin.flush()?;
    }
    for proc in &mut procs {
        let joined = read_trimmed_line(&mut proc.stdout)?;
        if joined != "JOINED" {
            return Err(std::io::Error::other(format!(
                "bad JOINED line from {}: {joined:?}",
                proc.name
            )));
        }
    }
    Ok(procs)
}

/// Spawns a cluster that bootstraps itself over gossip instead of the
/// static `PEERS` handshake: the first name becomes the seed (started with
/// no `--join`), every later node is started with `--join <seed-url>` and
/// learns the rest of the roster through the gossip exchange.  No roster is
/// ever broadcast — follow with [`wait_for_members`] to block until the
/// views converge.  `prefix_args` and `extra_args` are as in
/// [`spawn_cluster`].
pub fn spawn_gossip_cluster(
    program: &std::path::Path,
    prefix_args: &[&str],
    names: &[&str],
    extra_args: &[&str],
) -> std::io::Result<Vec<ClusterProc>> {
    let mut procs: Vec<ClusterProc> = Vec::with_capacity(names.len());
    for name in names {
        let mut command = Command::new(program);
        command.args(prefix_args).arg(name).args(extra_args);
        if let Some(seed) = procs.first() {
            command.arg("--join").arg(&seed.base_url);
        }
        let mut child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let ready = read_trimmed_line(&mut stdout)?;
        let mut parts = ready.split_whitespace();
        let base_url = match (parts.next(), parts.next(), parts.next()) {
            (Some("READY"), Some(n), Some(url)) if n == *name => url.to_string(),
            _ => {
                return Err(std::io::Error::other(format!(
                    "bad READY line from {name}: {ready:?}"
                )));
            }
        };
        procs.push(ClusterProc {
            name: name.to_string(),
            base_url,
            child,
            stdin: Some(stdin),
            stdout,
        });
    }
    Ok(procs)
}

/// Polls every node at `base_urls` until each reports `gossip_alive >=
/// alive` (the counter includes the node itself), i.e. until the rosters
/// have converged to at least `alive` live members everywhere.  Errors out
/// after `deadline`.
pub fn wait_for_members(
    base_urls: &[&str],
    alive: u64,
    deadline: std::time::Duration,
) -> Result<(), NakikaError> {
    let start = std::time::Instant::now();
    loop {
        let converged = base_urls.iter().all(|url| {
            fetch_stats(url)
                .ok()
                .and_then(|stats| stats.get("gossip_alive").copied())
                .is_some_and(|n| n >= alive)
        });
        if converged {
            return Ok(());
        }
        if start.elapsed() > deadline {
            let views: Vec<String> = base_urls
                .iter()
                .map(|url| {
                    let seen = fetch_stats(url)
                        .ok()
                        .and_then(|stats| stats.get("gossip_alive").copied());
                    format!("{url}={seen:?}")
                })
                .collect();
            return Err(NakikaError::Internal(format!(
                "rosters did not converge to {alive} live members within {deadline:?}: {}",
                views.join(", ")
            )));
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_the_text_format() {
        let handle = Arc::new(NodeBuilder::plain_proxy("stats-node").build());
        let text = stats_text(&handle, "stats-node");
        let parsed = parse_stats(&text);
        assert_eq!(parsed.get("requests"), Some(&0));
        assert_eq!(parsed.get("peer_hits"), Some(&0));
        assert_eq!(parsed.get("origin_fetches"), Some(&0));
        assert_eq!(parsed.get("script_compiles"), Some(&0));
        assert_eq!(parsed.get("script_cache_hits"), Some(&0));
        // The name line is not a counter and must be skipped, not mangled.
        assert!(!parsed.contains_key("node"));
    }
}
