//! Shared helpers for the Na Kika benchmark and experiment harness.
//!
//! The interesting code lives in the `nakika-experiments` binary (which
//! regenerates every table and figure of the paper), in the Criterion benches
//! under `benches/`, and in the workspace-level examples and integration
//! tests this package hosts.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod hist;
pub mod hostile;

use hist::LatencyRecorder;
use nakika_core::service::{service_fn, NakikaError};
use nakika_core::{scripts, NodeBuilder, ScriptEngine};
use nakika_http::{Request, Response};
use nakika_server::{
    http_get_via_proxy, HttpServer, ProxyClient, ProxyServer, ReactorConfig, TcpOrigin, Transport,
};
use nakika_sim::experiments::{MicroRow, ResourceControlRow, SimmResult, SpecResult};
use std::sync::Arc;
use std::time::Instant;

/// Which proxy front-end a benchmark scenario measures.
///
/// The reactor transport appears twice because its cache-miss path has two
/// implementations: [`BenchTransport::Reactor`] pins the historical
/// worker-pool offload (`splice_origin = false`), keeping the `reactor`
/// rows in `BENCH_proxy.json` comparable across runs, while
/// [`BenchTransport::ReactorSplice`] measures the production default — the
/// event-loop origin splice, which relays a miss with zero worker
/// hand-offs.  The miss-heavy scenarios run both so the splice-vs-offload
/// delta is recorded side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchTransport {
    /// One blocking thread per connection.
    Threaded,
    /// Reactor with misses offloaded to the worker pool (recorded as
    /// `reactor`).
    Reactor,
    /// Reactor with the event-loop origin splice, the production default
    /// (recorded as `reactor-splice`).
    ReactorSplice,
}

/// One measured proxy-path scenario: a named workload against one transport.
#[derive(Debug, Clone)]
pub struct ProxyBenchScenario {
    /// Workload name (`cold-cache`, `warm-keepalive`, `warm-close`,
    /// `warm-concurrent`).
    pub name: String,
    /// Transport under test (`threaded`, `reactor`, or `reactor-splice`).
    pub transport: String,
    /// Total requests issued through the proxy.
    pub requests: usize,
    /// Simultaneous keep-alive client connections.
    pub concurrency: usize,
    /// Wall-clock time for the measured run, in seconds.
    pub elapsed_secs: f64,
    /// Throughput in requests per second.
    pub requests_per_sec: f64,
    /// Median per-request latency, in microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-request latency, in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile per-request latency, in microseconds.  Only
    /// meaningful once a scenario records >= 1000 samples; below that it
    /// degenerates to the maximum observed latency.
    pub p999_us: u64,
}

/// Builds the scenario record from the measured run and its histogram.
fn scenario_result(
    name: &str,
    transport: BenchTransport,
    requests: usize,
    concurrency: usize,
    elapsed_secs: f64,
    hist: &LatencyRecorder,
) -> ProxyBenchScenario {
    let (p50_us, p99_us, p999_us) = hist.summary_us();
    ProxyBenchScenario {
        name: name.to_string(),
        transport: transport_name(transport),
        requests,
        concurrency,
        elapsed_secs,
        requests_per_sec: requests as f64 / elapsed_secs,
        p50_us,
        p99_us,
        p999_us,
    }
}

/// The full multi-scenario result set recorded in `BENCH_proxy.json`.
#[derive(Debug, Clone, Default)]
pub struct ProxyBenchSuite {
    /// All measured scenarios, in run order.
    pub scenarios: Vec<ProxyBenchScenario>,
}

impl ProxyBenchSuite {
    /// Serialises the suite as a small JSON document (no serde in this
    /// offline environment — the format is flat enough to emit by hand).
    pub fn to_json(&self) -> String {
        let mut out =
            String::from("{\n  \"benchmark\": \"proxy_path_scenarios\",\n  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"transport\": \"{}\", \"requests\": {}, \
                 \"concurrency\": {}, \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.2}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}{}\n",
                s.name,
                s.transport,
                s.requests,
                s.concurrency,
                s.elapsed_secs,
                s.requests_per_sec,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The scenario named `name` on `transport`, if measured.
    pub fn scenario(&self, name: &str, transport: &str) -> Option<&ProxyBenchScenario> {
        self.scenarios
            .iter()
            .find(|s| s.name == name && s.transport == transport)
    }
}

/// Formats the suite as an aligned text table for the job log, one line per
/// scenario, so CI shows the per-scenario trajectory without parsing JSON.
pub fn format_proxy_suite(suite: &ProxyBenchSuite) -> String {
    let mut out = String::from(
        "Scenario          Transport   Requests  Conns   Elapsed (s)  Requests/sec  \
         p50 (us)  p99 (us)  p999 (us)\n",
    );
    for s in &suite.scenarios {
        out.push_str(&format!(
            "{:<17} {:<11} {:>8} {:>6} {:>12.3} {:>13.0} {:>9} {:>9} {:>10}\n",
            s.name,
            s.transport,
            s.requests,
            s.concurrency,
            s.elapsed_secs,
            s.requests_per_sec,
            s.p50_us,
            s.p99_us,
            s.p999_us
        ));
    }
    out
}

fn internal(context: &str) -> impl Fn(std::io::Error) -> NakikaError + '_ {
    move |e| NakikaError::Internal(format!("{context}: {e}"))
}

/// Body size used by the `bench_stream` scenario (1 MiB).
pub const STREAM_SCENARIO_BODY_BYTES: usize = 1024 * 1024;

/// Latency the `bench_mixed` origin injects into every cold fetch (25 ms —
/// a plausible slow-origin round trip, long enough that a transport which
/// blocks its event loop on origin I/O visibly collapses).
pub const MIXED_SCENARIO_ORIGIN_DELAY_MS: u64 = 25;

/// Iterations of the numeric loop the `bench_scripted` site handler runs on
/// every response — enough script work that execution strategy (bytecode VM
/// versus tree-walking interpreter) dominates the per-request cost, small
/// enough that a single request stays far under the pipeline fuel budget.
pub const SCRIPTED_SCENARIO_LOOP_ITERS: usize = 600;

/// The `transport` field value recorded for a scenario.
fn transport_name(transport: BenchTransport) -> String {
    match transport {
        BenchTransport::Threaded => "threaded".to_string(),
        BenchTransport::Reactor => "reactor".to_string(),
        BenchTransport::ReactorSplice => "reactor-splice".to_string(),
    }
}

/// Starts the proxy front-end a scenario measures through.
fn front(
    service: Arc<dyn nakika_core::service::HttpService>,
    transport: BenchTransport,
) -> std::io::Result<ProxyServer> {
    match transport {
        BenchTransport::Threaded => ProxyServer::start_with(0, service, Transport::Threaded),
        BenchTransport::Reactor => ProxyServer::start_reactor(
            0,
            service,
            ReactorConfig {
                splice_origin: false,
                ..ReactorConfig::default()
            },
        ),
        BenchTransport::ReactorSplice => {
            ProxyServer::start_reactor(0, service, ReactorConfig::default())
        }
    }
}

/// Stands up the deployment every scenario measures against: an origin
/// serving `origin_service`, a plain-proxy edge fetching through
/// `TcpOrigin`, and a front-end on `transport`.
fn stand_up(
    origin_service: Arc<dyn nakika_core::service::HttpService>,
    transport: BenchTransport,
) -> Result<(HttpServer, ProxyServer), NakikaError> {
    let origin =
        HttpServer::start(0, origin_service).map_err(internal("origin server failed to start"))?;
    let edge = NodeBuilder::plain_proxy("bench-proxy")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy = front(edge.service(), transport).map_err(internal("proxy failed to start"))?;
    Ok((origin, proxy))
}

/// Runs `work` against a fresh [`stand_up`] deployment and times it;
/// returns the measured scenario.  `body_bytes` sizes the origin's
/// responses (the classic scenarios use the paper's 2,096-byte page;
/// `bench_stream` uses 1 MiB).  `work` records every request's latency
/// into the supplied [`LatencyRecorder`]; the recorder is shared, so
/// concurrent scenarios hand the same `&LatencyRecorder` to every
/// client thread.
fn run_scenario(
    name: &str,
    transport: BenchTransport,
    requests: usize,
    concurrency: usize,
    body_bytes: usize,
    work: impl FnOnce(&ProxyServer, &str, &LatencyRecorder) -> Result<(), NakikaError>,
) -> Result<ProxyBenchScenario, NakikaError> {
    let (origin, proxy) = stand_up(
        service_fn(move |_req: Request, _ctx| {
            Ok(Response::ok("text/html", "x".repeat(body_bytes))
                .with_header("Cache-Control", "max-age=600"))
        }),
        transport,
    )?;
    let hist = LatencyRecorder::new();
    let start = Instant::now();
    work(&proxy, &origin.base_url(), &hist)?;
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok(scenario_result(
        name,
        transport,
        requests,
        concurrency,
        elapsed_secs,
        &hist,
    ))
}

/// Issues one keep-alive GET and records its latency.
fn timed_get(
    client: &mut ProxyClient,
    url: &str,
    hist: &LatencyRecorder,
) -> Result<Response, NakikaError> {
    let t = Instant::now();
    let response = client.get(url)?;
    hist.record(t.elapsed());
    Ok(response)
}

/// Measures `bench_mixed` on one transport: `concurrency` warm keep-alive
/// clients hammer a cached URL while one background client keeps cold
/// misses against a deliberately slow origin
/// ([`MIXED_SCENARIO_ORIGIN_DELAY_MS`] per fetch) in flight for the whole
/// run.  The recorded throughput counts only the warm requests — the
/// number under threat when origin I/O shares a thread with the event
/// loop.  Reuses the [`stand_up`] deployment but keeps its own timing
/// discipline: the cache warm-up, the cold-client spawn, and the cold
/// client's join (which can tail out by one slow origin round trip) must
/// all sit outside the measured window, which `run_scenario`'s
/// whole-closure timer cannot express.
fn run_mixed_scenario(
    transport: BenchTransport,
    warm_requests: usize,
    concurrency: usize,
) -> Result<ProxyBenchScenario, NakikaError> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (origin, proxy) = stand_up(
        service_fn(|req: Request, _ctx| {
            if req.uri.path.starts_with("/slow/") {
                std::thread::sleep(std::time::Duration::from_millis(
                    MIXED_SCENARIO_ORIGIN_DELAY_MS,
                ));
            }
            Ok(Response::ok("text/html", "x".repeat(2096))
                .with_header("Cache-Control", "max-age=600"))
        }),
        transport,
    )?;

    let hot_url = format!("{}/hot.html", origin.base_url());
    http_get_via_proxy(proxy.addr(), &hot_url)?; // warm the cache

    let per_client = (warm_requests / concurrency).max(8);
    let total = per_client * concurrency;
    let hist = Arc::new(LatencyRecorder::new());
    let stop = Arc::new(AtomicBool::new(false));
    let cold_client = {
        let stop = stop.clone();
        let base = origin.base_url();
        let addr = proxy.addr();
        std::thread::spawn(move || -> Result<(), NakikaError> {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Distinct URLs: every fetch misses and pays the delay.
                http_get_via_proxy(addr, &format!("{base}/slow/{i}.html"))?;
                i += 1;
            }
            Ok(())
        })
    };
    let start = Instant::now();
    let warm_clients: Vec<_> = (0..concurrency)
        .map(|_| {
            let url = hot_url.clone();
            let addr = proxy.addr();
            let hist = hist.clone();
            std::thread::spawn(move || -> Result<(), NakikaError> {
                let mut client = ProxyClient::connect(addr)?;
                for _ in 0..per_client {
                    timed_get(&mut client, &url, &hist)?;
                }
                Ok(())
            })
        })
        .collect();
    for worker in warm_clients {
        worker
            .join()
            .map_err(|_| NakikaError::Internal("mixed warm client panicked".into()))??;
    }
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    stop.store(true, Ordering::Relaxed);
    cold_client
        .join()
        .map_err(|_| NakikaError::Internal("mixed cold client panicked".into()))??;

    Ok(scenario_result(
        "bench_mixed",
        transport,
        total,
        concurrency,
        elapsed_secs,
        &hist,
    ))
}

/// Measures `bench_peer` on one transport: two cooperating edge nodes over
/// real TCP sharing one overlay view.  Distinct URLs are warmed through
/// node A, then fetched once each through node B, whose local misses route
/// to A over the peer-fetch path instead of the origin.  The recorded
/// throughput is the cost of a peer-answered miss, to set against
/// `cold-cache` (origin-answered miss) and `warm-keepalive` (local hit).
/// The run fails loudly if any measured request fell back to the origin —
/// a silent fallback would quietly benchmark the wrong code path.
/// Starts an overlay-joined edge node fronted by `transport` — the
/// cluster-node counterpart of [`front`].
fn start_bench_node(
    name: &str,
    overlay: &Arc<nakika_overlay::Overlay>,
    transport: BenchTransport,
) -> Result<cluster::LocalNode, NakikaError> {
    match transport {
        BenchTransport::Threaded => {
            cluster::start_local_node(name, overlay, Transport::Threaded, None)
        }
        BenchTransport::Reactor => cluster::start_local_reactor_node(
            name,
            overlay,
            ReactorConfig {
                splice_origin: false,
                ..ReactorConfig::default()
            },
            None,
        ),
        BenchTransport::ReactorSplice => {
            cluster::start_local_reactor_node(name, overlay, ReactorConfig::default(), None)
        }
    }
}

fn run_peer_scenario(
    transport: BenchTransport,
    requests: usize,
) -> Result<ProxyBenchScenario, NakikaError> {
    let origin = HttpServer::start(
        0,
        service_fn(|_req: Request, _ctx| {
            Ok(Response::ok("text/html", "x".repeat(2096))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .map_err(internal("peer origin failed to start"))?;
    let overlay = Arc::new(nakika_overlay::Overlay::with_defaults());
    let node_a = start_bench_node("bench-peer-a", &overlay, transport)?;
    // Warm every key through A while it is the cluster's only member, so
    // all of them live in A's cache (were B already joined, keys B owns
    // would be forwarded to — and cached on — B during the warm-up).
    let base = origin.base_url();
    // Half the suite's scaling knob: peer-answered misses are cheap
    // enough that percentiles need a real sample count to mean anything.
    let keys = (requests / 2).max(8);
    for i in 0..keys {
        http_get_via_proxy(node_a.server.addr(), &format!("{base}/peer/{i}.html"))?;
    }
    let node_b = start_bench_node("bench-peer-b", &overlay, transport)?;
    let hist = LatencyRecorder::new();
    let start = Instant::now();
    let mut client = ProxyClient::connect(node_b.server.addr())?;
    for i in 0..keys {
        timed_get(&mut client, &format!("{base}/peer/{i}.html"), &hist)?;
    }
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    let stats = node_b.handle.node().stats();
    if stats.peer_hits as usize != keys {
        return Err(NakikaError::Internal(format!(
            "bench_peer expected {keys} peer hits, saw {} ({} peer misses)",
            stats.peer_hits, stats.peer_misses
        )));
    }
    Ok(scenario_result(
        "bench_peer",
        transport,
        keys,
        1,
        elapsed_secs,
        &hist,
    ))
}

/// Measures `bench_scripted` on one transport: a fully scripted edge node
/// (walls plus a compute-heavy site `nakika.js`) serving one hot cached URL
/// over a keep-alive connection.  Every request re-runs the wall and site
/// handlers — [`SCRIPTED_SCENARIO_LOOP_ITERS`] loop iterations of script
/// work per response — while the page itself is a cache hit, so the number
/// isolates script-execution cost on the warm path.  Run once per
/// [`ScriptEngine`] (`bench_scripted` = bytecode VM, `bench_scripted_interp`
/// = reference interpreter), the pair measures what compiling to bytecode
/// buys.  The run fails loudly if the handler did not actually execute or
/// if any stage script was recompiled after warm-up (which would mean the
/// program cache — the thing that makes per-request compilation disappear —
/// silently regressed).
fn run_scripted_scenario(
    name: &str,
    transport: BenchTransport,
    requests: usize,
    engine: ScriptEngine,
) -> Result<ProxyBenchScenario, NakikaError> {
    let site_script = format!(
        r#"
p = new Policy();
p.onResponse = function() {{
    var acc = 0;
    for (var i = 0; i < {iters}; i = i + 1) {{
        acc = (acc + i * 3) % 9973;
    }}
    Response.setHeader('X-Script-Work', '' + acc);
}};
p.register();
"#,
        iters = SCRIPTED_SCENARIO_LOOP_ITERS
    );
    let origin = HttpServer::start(
        0,
        service_fn(move |req: Request, _ctx| {
            let path = req.uri.path.as_str();
            if path.ends_with("nakika.js") {
                return Ok(Response::ok("application/javascript", site_script.as_str())
                    .with_header("Cache-Control", "max-age=600"));
            }
            if path.ends_with("clientwall.js") || path.ends_with("serverwall.js") {
                return Ok(Response::ok("application/javascript", scripts::EMPTY_WALL)
                    .with_header("Cache-Control", "max-age=600"));
            }
            Ok(Response::ok("text/html", "x".repeat(2096))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .map_err(internal("scripted origin failed to start"))?;
    let base = origin.base_url();
    let edge = NodeBuilder::scripted("bench-scripted")
        .script_engine(engine)
        .wall_urls(
            &format!("{base}/clientwall.js"),
            &format!("{base}/serverwall.js"),
        )
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy =
        front(edge.service(), transport).map_err(internal("scripted proxy failed to start"))?;
    let url = format!("{base}/hot.html");
    // Warm-up: compiles the two walls and the site stage, caches the page.
    http_get_via_proxy(proxy.addr(), &url)?;
    let compiles_after_warmup = edge.node().cache_stats().script_compiles;
    let hist = LatencyRecorder::new();
    let start = Instant::now();
    let mut client = ProxyClient::connect(proxy.addr())?;
    for _ in 0..requests {
        let response = timed_get(&mut client, &url, &hist)?;
        if response.headers.get("x-script-work").is_none() {
            return Err(NakikaError::Internal(
                "bench_scripted response missing the handler's header".into(),
            ));
        }
    }
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    let compiles = edge.node().cache_stats().script_compiles;
    if compiles != compiles_after_warmup {
        return Err(NakikaError::Internal(format!(
            "bench_scripted recompiled scripts on the warm path \
             ({compiles_after_warmup} compiles after warm-up, {compiles} after the run)"
        )));
    }
    Ok(scenario_result(
        name,
        transport,
        requests,
        1,
        elapsed_secs,
        &hist,
    ))
}

/// Measures the proxy-path scenario suite on both transports:
///
/// - `cold-cache` — every request targets a distinct URL, so each one runs
///   the full parse → service → origin-fetch → store path.
/// - `warm-keepalive` — one hot URL over a single keep-alive connection:
///   the pure cache-hit fast path.
/// - `warm-close` — the same hot URL but a fresh connection with
///   `Connection: close` per request, isolating connection-setup cost.
/// - `warm-concurrent` — `concurrency` simultaneous keep-alive clients
///   hammering the hot URL, the scenario where transport architecture and
///   cache sharding actually matter.
/// - `bench_stream` — 1 MiB bodies over a warm cache, isolating large-body
///   copy/buffering cost on the streaming path.
/// - `bench_mixed` — the warm-concurrent workload with continuous cold
///   misses against a slow origin interleaved; measures whether cold
///   origin I/O steals throughput from warm hits (the reactor origin
///   offload exists for exactly this number).
/// - `bench_peer` — a second edge node answers every miss over the
///   peer-fetch protocol; the cost of a cooperative (peer-answered) miss
///   versus an origin-answered one.
/// - `bench_scripted` / `bench_scripted_interp` — a warm scripted pipeline
///   (walls + a compute-heavy site handler on every response) under the
///   bytecode VM and under the reference interpreter; the pair isolates
///   what compiling NkScript to bytecode buys on the hot path.
///
/// Every scenario runs on `threaded` and `reactor` (the reactor's
/// worker-pool miss offload, pinned with `splice_origin = false`); the
/// miss-dominated ones — `cold-cache`, `bench_stream`, `bench_mixed` —
/// additionally run as `reactor-splice`, the production default that
/// relays misses on the event loop, so the splice-vs-offload delta is
/// recorded side by side (see [`format_splice_comparison`]).
///
/// `requests` scales every scenario (the slower workloads run a fraction of
/// it); `concurrency` is the client count for `warm-concurrent` and
/// `bench_mixed`.  `docs/BENCHMARKING.md` documents each scenario and how
/// CI gates on the recorded numbers.
pub fn bench_proxy_suite(
    requests: usize,
    concurrency: usize,
) -> Result<ProxyBenchSuite, NakikaError> {
    let requests = requests.max(16);
    let concurrency = concurrency.max(1);
    let mut suite = ProxyBenchSuite::default();
    for transport in [BenchTransport::Threaded, BenchTransport::Reactor] {
        suite
            .scenarios
            .push(run_cold_scenario(transport, requests)?);

        suite.scenarios.push(run_scenario(
            "warm-keepalive",
            transport,
            requests,
            1,
            2096,
            |proxy, base, hist| {
                let url = format!("{base}/hot.html");
                let mut client = ProxyClient::connect(proxy.addr())?;
                // The first request warms the cache; it is counted, and at
                // these request counts its contribution is noise.
                timed_get(&mut client, &url, hist)?;
                for _ in 1..requests {
                    timed_get(&mut client, &url, hist)?;
                }
                Ok(())
            },
        )?);

        let close_requests = requests / 2;
        suite.scenarios.push(run_scenario(
            "warm-close",
            transport,
            close_requests,
            1,
            2096,
            |proxy, base, hist| {
                let url = format!("{base}/hot.html");
                for _ in 0..close_requests {
                    let t = Instant::now();
                    http_get_via_proxy(proxy.addr(), &url)?;
                    hist.record(t.elapsed());
                }
                Ok(())
            },
        )?);

        let per_client = (requests / concurrency).max(8);
        let total = per_client * concurrency;
        suite.scenarios.push(run_scenario(
            "warm-concurrent",
            transport,
            total,
            concurrency,
            2096,
            |proxy, base, hist| {
                let url = format!("{base}/hot.html");
                // Warm the cache before the clients pile in.
                http_get_via_proxy(proxy.addr(), &url)?;
                std::thread::scope(|scope| {
                    let workers: Vec<_> = (0..concurrency)
                        .map(|_| {
                            let url = url.clone();
                            let addr = proxy.addr();
                            // Per-thread recorders merged at join time, so
                            // this scenario also exercises the merge path.
                            scope.spawn(move || -> Result<LatencyRecorder, NakikaError> {
                                let local = LatencyRecorder::new();
                                let mut client = ProxyClient::connect(addr)?;
                                for _ in 0..per_client {
                                    timed_get(&mut client, &url, &local)?;
                                }
                                Ok(local)
                            })
                        })
                        .collect();
                    for worker in workers {
                        let local = worker
                            .join()
                            .map_err(|_| NakikaError::Internal("bench client panicked".into()))??;
                        hist.merge(&local);
                    }
                    Ok(())
                })
            },
        )?);

        suite
            .scenarios
            .push(run_stream_scenario(transport, requests)?);

        // bench_mixed: warm concurrency under continuous slow cold misses —
        // the workload that used to collapse the reactor to origin latency
        // before cold fetches were offloaded from its event loop.
        suite
            .scenarios
            .push(run_mixed_scenario(transport, requests, concurrency)?);

        // bench_peer: the cooperative data path — misses answered by a
        // peer edge node over TCP rather than the origin.
        suite
            .scenarios
            .push(run_peer_scenario(transport, requests)?);

        // bench_scripted: the warm scripted pipeline under both script
        // engines — the VM-vs-interpreter ratio is the headline number of
        // the bytecode compiler.
        // Half (not a quarter) of the scaling knob, for the same
        // percentile-stability reason as bench_stream.
        let scripted_requests = (requests / 2).max(8);
        suite.scenarios.push(run_scripted_scenario(
            "bench_scripted",
            transport,
            scripted_requests,
            ScriptEngine::Vm,
        )?);
        suite.scenarios.push(run_scripted_scenario(
            "bench_scripted_interp",
            transport,
            scripted_requests,
            ScriptEngine::Interp,
        )?);
    }

    // The splice variant: re-measure the scenarios a cache-miss relay
    // actually dominates under the production default (the event-loop
    // origin splice), recorded as `reactor-splice` so the splice and the
    // pooled-offload `reactor` rows sit side by side in the results —
    // cold-cache (every request is a relayed miss), bench_stream (the
    // 1 MiB warm-up tee crosses the splice's backpressure windows), and
    // bench_mixed (the headline number: warm throughput while relays run).
    let splice = BenchTransport::ReactorSplice;
    suite.scenarios.push(run_cold_scenario(splice, requests)?);
    suite.scenarios.push(run_stream_scenario(splice, requests)?);
    suite
        .scenarios
        .push(run_mixed_scenario(splice, requests, concurrency)?);
    Ok(suite)
}

/// Runs `cold-cache` on one transport: every request targets a distinct
/// URL, so each one is a full miss — parse → service → origin relay →
/// store.  On `reactor-splice` this is the purest splice measurement:
/// every single request crosses the event-loop relay.
fn run_cold_scenario(
    transport: BenchTransport,
    requests: usize,
) -> Result<ProxyBenchScenario, NakikaError> {
    let cold = requests / 4;
    run_scenario(
        "cold-cache",
        transport,
        cold,
        1,
        2096,
        |proxy, base, hist| {
            let mut client = ProxyClient::connect(proxy.addr())?;
            for i in 0..cold {
                timed_get(&mut client, &format!("{base}/cold/{i}.html"), hist)?;
            }
            Ok(())
        },
    )
}

/// Runs `bench_stream` on one transport: 1 MiB bodies over a warm cache on
/// one keep-alive connection — the scenario the streaming `Body` redesign
/// targets.  Throughput here is dominated by how many times the stack
/// copies (or used to double-buffer) a large response.
/// A quarter (not an eighth) of the scaling knob: 30 one-MiB transfers
/// left the percentiles hostage to a single scheduler hiccup; see
/// docs/BENCHMARKING.md on the noise floor.
fn run_stream_scenario(
    transport: BenchTransport,
    requests: usize,
) -> Result<ProxyBenchScenario, NakikaError> {
    let stream_requests = (requests / 4).max(8);
    run_scenario(
        "bench_stream",
        transport,
        stream_requests,
        1,
        STREAM_SCENARIO_BODY_BYTES,
        |proxy, base, hist| {
            let url = format!("{base}/stream.bin");
            let mut client = ProxyClient::connect(proxy.addr())?;
            // Warm the cache (the first fetch tees the streamed body in).
            timed_get(&mut client, &url, hist)?;
            for _ in 1..stream_requests {
                let response = timed_get(&mut client, &url, hist)?;
                if response.body.len() != STREAM_SCENARIO_BODY_BYTES {
                    return Err(NakikaError::Internal(format!(
                        "short stream body: {}",
                        response.body.len()
                    )));
                }
            }
            Ok(())
        },
    )
}

/// Formats the splice-vs-offload comparison: for every scenario measured
/// on both `reactor` (worker-pool offload) and `reactor-splice` (event-loop
/// splice), one line with both throughputs, the splice/offload ratio, and
/// both p99s.  Empty when no scenario carries both rows.
pub fn format_splice_comparison(suite: &ProxyBenchSuite) -> String {
    let mut out = String::new();
    for s in &suite.scenarios {
        if s.transport != "reactor-splice" {
            continue;
        }
        let Some(offload) = suite.scenario(&s.name, "reactor") else {
            continue;
        };
        if out.is_empty() {
            out.push_str(
                "Scenario          Offload rps   Splice rps   Splice/Offload  \
                 Offload p99 (us)  Splice p99 (us)\n",
            );
        }
        out.push_str(&format!(
            "{:<17} {:>11.0} {:>12.0} {:>15.2}x {:>16} {:>16}\n",
            s.name,
            offload.requests_per_sec,
            s.requests_per_sec,
            s.requests_per_sec / offload.requests_per_sec.max(1e-9),
            offload.p99_us,
            s.p99_us
        ));
    }
    out
}

/// Formats Table 2 (micro-benchmark latency) as an aligned text table.
pub fn format_table2(rows: &[MicroRow]) -> String {
    let mut out = String::from("Configuration  Cold Cache (ms)  Warm Cache (ms)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>15.2} {:>16.3}\n",
            row.config, row.cold_ms, row.warm_ms
        ));
    }
    out
}

/// Formats the resource-control rows (§5.1).
pub fn format_resource_controls(rows: &[ResourceControlRow]) -> String {
    let mut out = String::from(
        "Scenario                              rps w/o ctl   rps w/ ctl   rejected   dropped\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>11.1} {:>12.1} {:>9.2}% {:>8.2}%\n",
            row.scenario,
            row.rps_without,
            row.rps_with,
            row.reject_fraction * 100.0,
            row.drop_fraction * 100.0
        ));
    }
    out
}

/// Formats SIMM / Figure 7 results.
pub fn format_simm(rows: &[SimmResult]) -> String {
    let mut out = String::from(
        "Configuration    Clients  p90 HTML (ms)  mean HTML (ms)  video>=140kbps  video failures\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>14.1} {:>15.1} {:>14.1}% {:>14.1}%\n",
            row.config,
            row.clients,
            row.html_p90_ms,
            row.html_mean_ms,
            row.video_ok_fraction * 100.0,
            row.video_failure_fraction * 100.0
        ));
    }
    out
}

/// Formats the SPECweb99-like results (§5.3).
pub fn format_spec(rows: &[SpecResult]) -> String {
    let mut out =
        String::from("Configuration                mean response (ms)     throughput (rps)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>18.1} {:>20.1}\n",
            row.config, row.mean_response_ms, row.rps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_sim::experiments::MicroRow;

    #[test]
    fn formatting_produces_one_line_per_row() {
        let rows = vec![
            MicroRow {
                config: "Proxy".into(),
                cold_ms: 3.0,
                warm_ms: 1.0,
            },
            MicroRow {
                config: "Match-1".into(),
                cold_ms: 21.0,
                warm_ms: 2.0,
            },
        ];
        let table = format_table2(&rows);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("Match-1"));
    }

    #[test]
    fn scripted_scenario_runs_under_both_engines() {
        for engine in [ScriptEngine::Vm, ScriptEngine::Interp] {
            let scenario =
                run_scripted_scenario("bench_scripted", BenchTransport::Threaded, 8, engine)
                    .expect("scripted scenario runs");
            assert_eq!(scenario.requests, 8);
            assert!(scenario.requests_per_sec > 0.0);
        }
    }
}
