//! Shared helpers for the Na Kika benchmark and experiment harness.
//!
//! The interesting code lives in the `nakika-experiments` binary (which
//! regenerates every table and figure of the paper), in the Criterion benches
//! under `benches/`, and in the workspace-level examples and integration
//! tests this package hosts.

#![forbid(unsafe_code)]

use nakika_core::service::{service_fn, NakikaError};
use nakika_core::NodeBuilder;
use nakika_http::{Request, Response};
use nakika_server::{http_get_via_proxy, HttpServer, ProxyServer, TcpOrigin};
use nakika_sim::experiments::{MicroRow, ResourceControlRow, SimmResult, SpecResult};
use std::sync::Arc;
use std::time::Instant;

/// Result of the end-to-end proxy throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ProxyBenchResult {
    /// Requests issued through the proxy.
    pub requests: usize,
    /// Wall-clock time for the measured run, in seconds.
    pub elapsed_secs: f64,
    /// Throughput in requests per second.
    pub requests_per_sec: f64,
}

impl ProxyBenchResult {
    /// Serialises the result as a small JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"proxy_path_rps\",\n  \"requests\": {},\n  \
             \"elapsed_secs\": {:.6},\n  \"requests_per_sec\": {:.2}\n}}\n",
            self.requests, self.elapsed_secs, self.requests_per_sec
        )
    }

    /// Writes the JSON document to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Measures requests/sec through the real proxy path: a TCP origin server, a
/// plain-proxy node fetching over [`TcpOrigin`] with keep-alive pooling, and
/// a [`ProxyServer`] in front, driven by a loopback HTTP client.  The cache
/// is warmed by the first request, so the measured path is parse → service
/// stack → cache hit → serialize over real sockets.
pub fn bench_proxy_path(requests: usize) -> Result<ProxyBenchResult, NakikaError> {
    let origin = HttpServer::start(
        0,
        service_fn(|_req: Request, _ctx| {
            Ok(Response::ok("text/html", "x".repeat(2096))
                .with_header("Cache-Control", "max-age=600"))
        }),
    )
    .map_err(|e| NakikaError::Internal(format!("origin server failed to start: {e}")))?;
    let edge = NodeBuilder::plain_proxy("bench-proxy")
        .origin(Arc::new(TcpOrigin::new()))
        .build();
    let proxy = ProxyServer::start(0, edge.service())
        .map_err(|e| NakikaError::Internal(format!("proxy failed to start: {e}")))?;

    let url = format!("{}/page.html", origin.base_url());
    http_get_via_proxy(proxy.addr(), &url)?; // warm the cache
    let requests = requests.max(1);
    let start = Instant::now();
    for _ in 0..requests {
        http_get_via_proxy(proxy.addr(), &url)?;
    }
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok(ProxyBenchResult {
        requests,
        elapsed_secs,
        requests_per_sec: requests as f64 / elapsed_secs,
    })
}

/// Formats Table 2 (micro-benchmark latency) as an aligned text table.
pub fn format_table2(rows: &[MicroRow]) -> String {
    let mut out = String::from("Configuration  Cold Cache (ms)  Warm Cache (ms)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>15.2} {:>16.3}\n",
            row.config, row.cold_ms, row.warm_ms
        ));
    }
    out
}

/// Formats the resource-control rows (§5.1).
pub fn format_resource_controls(rows: &[ResourceControlRow]) -> String {
    let mut out = String::from(
        "Scenario                              rps w/o ctl   rps w/ ctl   rejected   dropped\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>11.1} {:>12.1} {:>9.2}% {:>8.2}%\n",
            row.scenario,
            row.rps_without,
            row.rps_with,
            row.reject_fraction * 100.0,
            row.drop_fraction * 100.0
        ));
    }
    out
}

/// Formats SIMM / Figure 7 results.
pub fn format_simm(rows: &[SimmResult]) -> String {
    let mut out = String::from(
        "Configuration    Clients  p90 HTML (ms)  mean HTML (ms)  video>=140kbps  video failures\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>14.1} {:>15.1} {:>14.1}% {:>14.1}%\n",
            row.config,
            row.clients,
            row.html_p90_ms,
            row.html_mean_ms,
            row.video_ok_fraction * 100.0,
            row.video_failure_fraction * 100.0
        ));
    }
    out
}

/// Formats the SPECweb99-like results (§5.3).
pub fn format_spec(rows: &[SpecResult]) -> String {
    let mut out =
        String::from("Configuration                mean response (ms)     throughput (rps)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>18.1} {:>20.1}\n",
            row.config, row.mean_response_ms, row.rps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_sim::experiments::MicroRow;

    #[test]
    fn formatting_produces_one_line_per_row() {
        let rows = vec![
            MicroRow {
                config: "Proxy".into(),
                cold_ms: 3.0,
                warm_ms: 1.0,
            },
            MicroRow {
                config: "Match-1".into(),
                cold_ms: 21.0,
                warm_ms: 2.0,
            },
        ];
        let table = format_table2(&rows);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("Match-1"));
    }
}
