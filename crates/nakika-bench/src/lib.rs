//! Shared helpers for the Na Kika benchmark and experiment harness.
//!
//! The interesting code lives in the `nakika-experiments` binary (which
//! regenerates every table and figure of the paper), in the Criterion benches
//! under `benches/`, and in the workspace-level examples and integration
//! tests this package hosts.

#![forbid(unsafe_code)]

use nakika_sim::experiments::{MicroRow, ResourceControlRow, SimmResult, SpecResult};

/// Formats Table 2 (micro-benchmark latency) as an aligned text table.
pub fn format_table2(rows: &[MicroRow]) -> String {
    let mut out = String::from("Configuration  Cold Cache (ms)  Warm Cache (ms)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>15.2} {:>16.3}\n",
            row.config, row.cold_ms, row.warm_ms
        ));
    }
    out
}

/// Formats the resource-control rows (§5.1).
pub fn format_resource_controls(rows: &[ResourceControlRow]) -> String {
    let mut out = String::from(
        "Scenario                              rps w/o ctl   rps w/ ctl   rejected   dropped\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>11.1} {:>12.1} {:>9.2}% {:>8.2}%\n",
            row.scenario,
            row.rps_without,
            row.rps_with,
            row.reject_fraction * 100.0,
            row.drop_fraction * 100.0
        ));
    }
    out
}

/// Formats SIMM / Figure 7 results.
pub fn format_simm(rows: &[SimmResult]) -> String {
    let mut out = String::from(
        "Configuration    Clients  p90 HTML (ms)  mean HTML (ms)  video>=140kbps  video failures\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>14.1} {:>15.1} {:>14.1}% {:>14.1}%\n",
            row.config,
            row.clients,
            row.html_p90_ms,
            row.html_mean_ms,
            row.video_ok_fraction * 100.0,
            row.video_failure_fraction * 100.0
        ));
    }
    out
}

/// Formats the SPECweb99-like results (§5.3).
pub fn format_spec(rows: &[SpecResult]) -> String {
    let mut out =
        String::from("Configuration                mean response (ms)     throughput (rps)\n");
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>18.1} {:>20.1}\n",
            row.config, row.mean_response_ms, row.rps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_sim::experiments::MicroRow;

    #[test]
    fn formatting_produces_one_line_per_row() {
        let rows = vec![
            MicroRow {
                config: "Proxy".into(),
                cold_ms: 3.0,
                warm_ms: 1.0,
            },
            MicroRow {
                config: "Match-1".into(),
                cold_ms: 21.0,
                warm_ms: 2.0,
            },
        ];
        let table = format_table2(&rows);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("Match-1"));
    }
}
