//! The NkScript tree-walking interpreter.
//!
//! Executes the AST inside a [`Context`], charging fuel for every evaluation
//! step, accounting heap allocations, honouring the context's kill flag, and
//! bounding recursion depth — the sandbox properties Na Kika's resource
//! controls build on.

use crate::ast::*;
use crate::context::{Context, Scope};
use crate::error::ScriptError;
use crate::stdlib;
use crate::value::{Closure, ObjectData, Value};
use parking_lot::RwLock;
use std::sync::Arc;

/// Maximum interpreter recursion depth (script call nesting).
///
/// Kept conservative because each script-level call consumes several Rust
/// stack frames in the tree-walking interpreter; event-handler code in Na
/// Kika is shallow by construction (the paper's largest example is a 180-line
/// annotation library).
pub(crate) const MAX_DEPTH: usize = 64;

/// How often (in steps) the interpreter polls the kill flag.
pub(crate) const SAFEPOINT_INTERVAL: u64 = 256;

/// Result of executing a statement: either keep going or unwind.
enum Flow {
    Normal(Value),
    Return(Value),
    Break,
    Continue,
}

/// The interpreter. Cheap to create; holds per-run accounting.
pub struct Interpreter<'c> {
    ctx: &'c Context,
    fuel_used: u64,
    /// Portion of `fuel_used` already reported to the context's meter.
    fuel_reported: u64,
    mem_used: usize,
    depth: usize,
}

impl<'c> Interpreter<'c> {
    /// Creates an interpreter bound to `ctx`.
    pub fn new(ctx: &'c Context) -> Interpreter<'c> {
        Interpreter {
            ctx,
            fuel_used: 0,
            fuel_reported: 0,
            mem_used: 0,
            depth: 0,
        }
    }

    /// Reports any not-yet-reported fuel to the context's meter, so the
    /// resource manager sees the full consumption of a handler execution.
    pub fn flush_meter(&mut self) {
        if self.fuel_used > self.fuel_reported {
            self.ctx
                .meter
                .add_steps(self.fuel_used - self.fuel_reported);
            self.fuel_reported = self.fuel_used;
        }
    }

    /// Fuel consumed so far in this run.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Approximate bytes allocated so far in this run.
    pub fn memory_used(&self) -> usize {
        self.mem_used
    }

    /// Runs a whole program in the context's global scope, returning the
    /// value of the last expression statement (or `undefined`).
    pub fn run(&mut self, program: &Program) -> Result<Value, ScriptError> {
        let scope = self.ctx.globals.clone();
        let mut last = Value::Undefined;
        // Hoist function declarations, as JavaScript does.
        for stmt in &program.body {
            if let Stmt::FunctionDecl { name, func } = stmt {
                let closure = self.make_closure(func.clone(), &scope);
                scope.declare(name, closure);
            }
        }
        for stmt in &program.body {
            let flow = self.exec(stmt, &scope);
            self.flush_meter();
            match flow? {
                Flow::Normal(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Continue => {
                    return Err(ScriptError::Type(
                        "break/continue outside of a loop".to_string(),
                    ))
                }
            }
        }
        Ok(last)
    }

    /// Calls a script or native function value with an explicit `this` and
    /// arguments.  This is how Na Kika's pipeline invokes `onRequest` /
    /// `onResponse` event handlers.
    pub fn call_function(
        &mut self,
        callee: &Value,
        this: &Value,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        self.charge(1)?;
        let result = match callee {
            Value::Native(f) => f(this, args),
            Value::Function(closure) => {
                if self.depth >= MAX_DEPTH {
                    return Err(ScriptError::StackOverflow);
                }
                self.depth += 1;
                let scope = closure.scope.child();
                for (i, param) in closure.literal.params.iter().enumerate() {
                    scope.declare(param, args.get(i).cloned().unwrap_or(Value::Undefined));
                }
                scope.declare("this", this.clone());
                scope.declare("arguments", Value::new_array(args.to_vec()));
                // Hoist nested function declarations.
                for stmt in &closure.literal.body {
                    if let Stmt::FunctionDecl { name, func } = stmt {
                        let f = self.make_closure(func.clone(), &scope);
                        scope.declare(name, f);
                    }
                }
                let mut result = Value::Undefined;
                for stmt in &closure.literal.body {
                    match self.exec(stmt, &scope) {
                        Ok(Flow::Normal(_)) => {}
                        Ok(Flow::Return(v)) => {
                            result = v;
                            break;
                        }
                        Ok(Flow::Break) | Ok(Flow::Continue) => {
                            self.depth -= 1;
                            return Err(ScriptError::Type(
                                "break/continue outside of a loop".to_string(),
                            ));
                        }
                        Err(e) => {
                            self.depth -= 1;
                            return Err(e);
                        }
                    }
                }
                self.depth -= 1;
                Ok(result)
            }
            other => Err(ScriptError::Type(format!(
                "{} is not a function",
                other.type_name()
            ))),
        };
        if self.depth == 0 {
            self.flush_meter();
        }
        result
    }

    // ---- accounting --------------------------------------------------------

    fn charge(&mut self, steps: u64) -> Result<(), ScriptError> {
        self.fuel_used += steps;
        if self.fuel_used - self.fuel_reported >= SAFEPOINT_INTERVAL {
            self.flush_meter();
            if self.ctx.meter.is_killed() {
                return Err(ScriptError::Terminated);
            }
        }
        if self.fuel_used > self.ctx.fuel_limit {
            return Err(ScriptError::FuelExhausted);
        }
        Ok(())
    }

    fn account_alloc(&mut self, value: &Value) -> Result<(), ScriptError> {
        let size = value.shallow_size();
        self.mem_used += size;
        self.ctx.meter.add_allocated(size as u64);
        if self.mem_used > self.ctx.memory_limit {
            return Err(ScriptError::MemoryExceeded {
                limit: self.ctx.memory_limit,
            });
        }
        Ok(())
    }

    fn make_closure(&mut self, literal: Arc<FunctionLiteral>, scope: &Scope) -> Value {
        Value::Function(Arc::new(Closure {
            literal,
            scope: scope.clone(),
        }))
    }

    // ---- statements --------------------------------------------------------

    fn exec(&mut self, stmt: &Stmt, scope: &Scope) -> Result<Flow, ScriptError> {
        self.charge(1)?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal(Value::Undefined)),
            Stmt::Expr(e) => Ok(Flow::Normal(self.eval(e, scope)?)),
            Stmt::VarDecl { name, init } => {
                let value = match init {
                    Some(e) => self.eval(e, scope)?,
                    None => Value::Undefined,
                };
                scope.declare(name, value);
                Ok(Flow::Normal(Value::Undefined))
            }
            Stmt::FunctionDecl { name, func } => {
                let closure = self.make_closure(func.clone(), scope);
                scope.declare(name, closure);
                Ok(Flow::Normal(Value::Undefined))
            }
            Stmt::Return(e) => {
                let value = match e {
                    Some(e) => self.eval(e, scope)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(value))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = if self.eval(cond, scope)?.truthy() {
                    then_branch
                } else {
                    else_branch
                };
                self.exec_block(branch, &scope.child())
            }
            Stmt::While { cond, body } => {
                loop {
                    if !self.eval(cond, scope)?.truthy() {
                        break;
                    }
                    match self.exec_block(body, &scope.child())? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Undefined))
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let loop_scope = scope.child();
                if let Some(init) = init {
                    self.exec(init, &loop_scope)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval(cond, &loop_scope)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body, &loop_scope.child())? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                    if let Some(update) = update {
                        self.eval(update, &loop_scope)?;
                    }
                }
                Ok(Flow::Normal(Value::Undefined))
            }
            Stmt::ForIn { var, object, body } => {
                let obj = self.eval(object, scope)?;
                let keys: Vec<String> = match &obj {
                    Value::Object(o) => o.read().properties.keys().cloned().collect(),
                    Value::Array(a) => (0..a.read().len()).map(|i| i.to_string()).collect(),
                    Value::Str(s) => (0..s.chars().count()).map(|i| i.to_string()).collect(),
                    _ => Vec::new(),
                };
                let loop_scope = scope.child();
                for key in keys {
                    loop_scope.declare(var, Value::string(&key));
                    match self.exec_block(body, &loop_scope.child())? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Undefined))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Throw(e) => {
                let value = self.eval(e, scope)?;
                Err(ScriptError::Thrown(value.to_display_string()))
            }
            Stmt::Try {
                body,
                catch_name,
                catch_body,
                finally_body,
            } => {
                let result = self.exec_block(body, &scope.child());
                let outcome = match result {
                    Err(err) if !err.is_resource_kill() && catch_name.is_some() => {
                        let catch_scope = scope.child();
                        let message = match &err {
                            ScriptError::Thrown(m) => m.clone(),
                            other => other.to_string(),
                        };
                        catch_scope.declare(catch_name.as_ref().unwrap(), Value::string(message));
                        self.exec_block(catch_body, &catch_scope)
                    }
                    other => other,
                };
                // Finally always runs; its error (if any) wins only when the
                // body succeeded.
                let finally_result = self.exec_block(finally_body, &scope.child());
                match (outcome, finally_result) {
                    (Err(e), _) => Err(e),
                    (Ok(flow), Ok(_)) => Ok(flow),
                    (Ok(_), Err(e)) => Err(e),
                }
            }
            // Bare blocks (and the parser's desugaring of multi-declarator
            // `var a = 1, b = 2`) run in the *enclosing* scope: NkScript's
            // `var` is function-scoped, as in JavaScript.
            Stmt::Block(body) => self.exec_block(body, scope),
        }
    }

    fn exec_block(&mut self, body: &[Stmt], scope: &Scope) -> Result<Flow, ScriptError> {
        for stmt in body {
            if let Stmt::FunctionDecl { name, func } = stmt {
                let closure = self.make_closure(func.clone(), scope);
                scope.declare(name, closure);
            }
        }
        let mut last = Value::Undefined;
        for stmt in body {
            match self.exec(stmt, scope)? {
                Flow::Normal(v) => last = v,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal(last))
    }

    // ---- expressions -------------------------------------------------------

    fn eval(&mut self, expr: &Expr, scope: &Scope) -> Result<Value, ScriptError> {
        self.charge(1)?;
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Str(s) => Ok(Value::string(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::Ident(name) => scope
                .get(name)
                .ok_or_else(|| ScriptError::Reference(name.clone())),
            Expr::Array(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values.push(self.eval(item, scope)?);
                }
                let v = Value::new_array(values);
                self.account_alloc(&v)?;
                Ok(v)
            }
            Expr::Object(props) => {
                let obj = Value::new_object();
                for (key, value_expr) in props {
                    let value = self.eval(value_expr, scope)?;
                    obj.set_property(key, value)?;
                }
                self.account_alloc(&obj)?;
                Ok(obj)
            }
            Expr::Function(literal) => Ok(self.make_closure(literal.clone(), scope)),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scope)?;
                Ok(match op {
                    UnaryOp::Neg => Value::Number(-v.to_number()),
                    UnaryOp::Plus => Value::Number(v.to_number()),
                    UnaryOp::Not => Value::Bool(!v.truthy()),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, scope)?;
                let r = self.eval(right, scope)?;
                self.binary(*op, l, r)
            }
            Expr::Logical {
                is_and,
                left,
                right,
            } => {
                let l = self.eval(left, scope)?;
                if *is_and {
                    if !l.truthy() {
                        return Ok(l);
                    }
                } else if l.truthy() {
                    return Ok(l);
                }
                self.eval(right, scope)
            }
            Expr::Conditional {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, scope)?.truthy() {
                    self.eval(then, scope)
                } else {
                    self.eval(otherwise, scope)
                }
            }
            Expr::Assign { target, op, value } => {
                let mut new_value = self.eval(value, scope)?;
                if let Some(op) = op {
                    let current = self.eval_target(target, scope)?;
                    new_value = self.binary(*op, current, new_value)?;
                }
                self.assign_target(target, new_value.clone(), scope)?;
                Ok(new_value)
            }
            Expr::Member { object, property } => {
                let obj = self.eval(object, scope)?;
                Ok(obj.get_property(property))
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, scope)?;
                let idx = self.eval(index, scope)?;
                Ok(obj.get_property(&idx.to_display_string()))
            }
            Expr::Call { callee, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval(a, scope)?);
                }
                match callee.as_ref() {
                    Expr::Member { object, property } => {
                        let this = self.eval(object, scope)?;
                        self.call_method(&this, property, &arg_values)
                    }
                    Expr::Index { object, index } => {
                        let this = self.eval(object, scope)?;
                        let name = self.eval(index, scope)?.to_display_string();
                        self.call_method(&this, &name, &arg_values)
                    }
                    _ => {
                        let f = self.eval(callee, scope)?;
                        self.call_function(&f, &Value::Undefined, &arg_values)
                    }
                }
            }
            Expr::New { callee, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval(a, scope)?);
                }
                let ctor = self.eval(callee, scope)?;
                let class = match callee.as_ref() {
                    Expr::Ident(name) => name.clone(),
                    Expr::Member { property, .. } => property.clone(),
                    _ => "Object".to_string(),
                };
                match &ctor {
                    Value::Native(f) => {
                        // Native constructors receive a tagged empty object as
                        // `this` and may return their own value; if they return
                        // undefined the tagged object is the result.
                        let this =
                            Value::Object(Arc::new(RwLock::new(ObjectData::with_class(&class))));
                        self.account_alloc(&this)?;
                        let result = f(&this, &arg_values)?;
                        Ok(match result {
                            Value::Undefined => this,
                            other => other,
                        })
                    }
                    Value::Function(_) => {
                        let this =
                            Value::Object(Arc::new(RwLock::new(ObjectData::with_class(&class))));
                        self.account_alloc(&this)?;
                        let result = self.call_function(&ctor, &this, &arg_values)?;
                        Ok(match result {
                            Value::Object(_) | Value::Array(_) | Value::Bytes(_) => result,
                            _ => this,
                        })
                    }
                    other => Err(ScriptError::Type(format!(
                        "{} is not a constructor",
                        other.type_name()
                    ))),
                }
            }
            Expr::Typeof(inner) => {
                // `typeof undeclared` must not throw.
                if let Expr::Ident(name) = inner.as_ref() {
                    return Ok(Value::string(
                        scope
                            .get(name)
                            .map(|v| v.type_name())
                            .unwrap_or("undefined"),
                    ));
                }
                let v = self.eval(inner, scope)?;
                Ok(Value::string(v.type_name()))
            }
            Expr::Delete(inner) => match inner.as_ref() {
                Expr::Member { object, property } => {
                    let obj = self.eval(object, scope)?;
                    if let Value::Object(o) = obj {
                        o.write().properties.remove(property);
                    }
                    Ok(Value::Bool(true))
                }
                Expr::Index { object, index } => {
                    let obj = self.eval(object, scope)?;
                    let key = self.eval(index, scope)?.to_display_string();
                    if let Value::Object(o) = obj {
                        o.write().properties.remove(&key);
                    }
                    Ok(Value::Bool(true))
                }
                _ => Ok(Value::Bool(false)),
            },
            Expr::Update {
                target,
                delta,
                prefix,
            } => {
                let old = self.eval_target(target, scope)?.to_number();
                let new = old + delta;
                self.assign_target(target, Value::Number(new), scope)?;
                Ok(Value::Number(if *prefix { new } else { old }))
            }
        }
    }

    /// Calls `this.name(args)`, falling back to built-in methods on
    /// primitives (strings, arrays, byte arrays) when the property lookup
    /// yields nothing callable.
    fn call_method(
        &mut self,
        this: &Value,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let member = this.get_property(name);
        match member {
            Value::Function(_) | Value::Native(_) => self.call_function(&member, this, args),
            _ => {
                if let Some(result) = stdlib::call_builtin_method(this, name, args) {
                    let value = result?;
                    self.account_alloc(&value)?;
                    if let Value::Bytes(_) | Value::Str(_) = &value {
                        self.ctx.meter.add_transferred(0);
                    }
                    Ok(value)
                } else {
                    Err(ScriptError::Type(format!(
                        "{}.{name} is not a function",
                        this.type_name()
                    )))
                }
            }
        }
    }

    fn eval_target(&mut self, target: &Expr, scope: &Scope) -> Result<Value, ScriptError> {
        match target {
            Expr::Ident(name) => Ok(scope.get(name).unwrap_or(Value::Undefined)),
            _ => self.eval(target, scope),
        }
    }

    fn assign_target(
        &mut self,
        target: &Expr,
        value: Value,
        scope: &Scope,
    ) -> Result<(), ScriptError> {
        match target {
            Expr::Ident(name) => {
                scope.assign(name, value);
                Ok(())
            }
            Expr::Member { object, property } => {
                let obj = self.eval(object, scope)?;
                obj.set_property(property, value)
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, scope)?;
                let key = self.eval(index, scope)?.to_display_string();
                obj.set_property(&key, value)
            }
            other => Err(ScriptError::Type(format!(
                "invalid assignment target: {other:?}"
            ))),
        }
    }

    fn binary(&mut self, op: BinaryOp, l: Value, r: Value) -> Result<Value, ScriptError> {
        let (result, needs_account) = binary_values(op, l, r);
        if needs_account {
            self.account_alloc(&result)?;
        }
        Ok(result)
    }
}

/// Applies a binary operator to two values.  Shared by the tree-walking
/// interpreter and the bytecode VM so the two engines cannot drift.  The
/// returned flag is true when the result is a fresh heap allocation (string
/// concatenation) that the caller must charge to its memory accounting.
pub(crate) fn binary_values(op: BinaryOp, l: Value, r: Value) -> (Value, bool) {
    let result = match op {
        BinaryOp::Add => match (&l, &r) {
            (Value::Number(a), Value::Number(b)) => Value::Number(a + b),
            _ => {
                if matches!(l, Value::Str(_) | Value::Object(_) | Value::Array(_))
                    || matches!(r, Value::Str(_) | Value::Object(_) | Value::Array(_))
                {
                    let s = format!("{}{}", l.to_display_string(), r.to_display_string());
                    return (Value::string(s), true);
                }
                Value::Number(l.to_number() + r.to_number())
            }
        },
        BinaryOp::Sub => Value::Number(l.to_number() - r.to_number()),
        BinaryOp::Mul => Value::Number(l.to_number() * r.to_number()),
        BinaryOp::Div => Value::Number(l.to_number() / r.to_number()),
        BinaryOp::Rem => Value::Number(l.to_number() % r.to_number()),
        BinaryOp::Eq => Value::Bool(l.loose_equals(&r)),
        BinaryOp::NotEq => Value::Bool(!l.loose_equals(&r)),
        BinaryOp::StrictEq => Value::Bool(l.strict_equals(&r)),
        BinaryOp::StrictNotEq => Value::Bool(!l.strict_equals(&r)),
        BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge => {
            let out = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => {
                    compare(op, a.as_ref().cmp(b.as_ref()) as i8 as f64, 0.0)
                }
                _ => compare(op, l.to_number(), r.to_number()),
            };
            Value::Bool(out)
        }
        BinaryOp::In => {
            let key = l.to_display_string();
            match &r {
                Value::Object(o) => Value::Bool(o.read().properties.contains_key(&key)),
                Value::Array(a) => {
                    let idx: Option<usize> = key.parse().ok();
                    Value::Bool(idx.map(|i| i < a.read().len()).unwrap_or(false))
                }
                _ => Value::Bool(false),
            }
        }
    };
    (result, false)
}

fn compare(op: BinaryOp, a: f64, b: f64) -> bool {
    match op {
        BinaryOp::Lt => a < b,
        BinaryOp::Gt => a > b,
        BinaryOp::Le => a <= b,
        BinaryOp::Ge => a >= b,
        _ => unreachable!("compare called with non-relational operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::stdlib;

    fn run(src: &str) -> Result<Value, ScriptError> {
        let program = parse_program(src)?;
        let ctx = Context::new();
        stdlib::install(&ctx);
        let mut interp = Interpreter::new(&ctx);
        interp.run(&program)
    }

    fn run_ok(src: &str) -> Value {
        run(src).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_ok("1 + 2 * 3"), Value::Number(7.0));
        assert_eq!(run_ok("(1 + 2) * 3"), Value::Number(9.0));
        assert_eq!(run_ok("10 % 3"), Value::Number(1.0));
        assert_eq!(run_ok("7 / 2"), Value::Number(3.5));
        assert_eq!(run_ok("-3 + +2"), Value::Number(-1.0));
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(run_ok("'a' + 'b' + 1"), Value::string("ab1"));
        assert_eq!(run_ok("1 + 2 + 'x'"), Value::string("3x"));
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run_ok("var x = 5; x += 3; x"), Value::Number(8.0));
        assert_eq!(
            run_ok("var x = 5; x *= 2; x -= 1; x /= 3; x"),
            Value::Number(3.0)
        );
        assert_eq!(run_ok("y = 7; y"), Value::Number(7.0)); // sloppy global
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            run_ok("var x = 0; if (1 < 2) { x = 10; } else { x = 20; } x"),
            Value::Number(10.0)
        );
        assert_eq!(
            run_ok("var s = 0; for (var i = 1; i <= 10; i++) { s += i; } s"),
            Value::Number(55.0)
        );
        assert_eq!(
            run_ok("var n = 0; while (n < 5) { n++; } n"),
            Value::Number(5.0)
        );
        assert_eq!(
            run_ok("var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) continue; if (i == 6) break; s += i; } s"),
            Value::Number(0.0 + 1.0 + 2.0 + 4.0 + 5.0)
        );
    }

    #[test]
    fn functions_closures_recursion() {
        assert_eq!(
            run_ok("function add(a, b) { return a + b; } add(2, 3)"),
            Value::Number(5.0)
        );
        assert_eq!(
            run_ok("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(12)"),
            Value::Number(144.0)
        );
        assert_eq!(
            run_ok(
                "function counter() { var n = 0; return function() { n++; return n; }; } \
                 var c = counter(); c(); c(); c()"
            ),
            Value::Number(3.0)
        );
        // function hoisting
        assert_eq!(
            run_ok("var v = f(); function f() { return 9; } v"),
            Value::Number(9.0)
        );
    }

    #[test]
    fn objects_arrays_members() {
        assert_eq!(
            run_ok("var o = { a: 1, b: { c: 2 } }; o.a + o.b.c"),
            Value::Number(3.0)
        );
        assert_eq!(
            run_ok("var a = [1, 2, 3]; a[1] = 20; a[0] + a[1] + a.length"),
            Value::Number(24.0)
        );
        assert_eq!(
            run_ok("var o = {}; o.x = 5; o['y'] = 6; o.x + o.y"),
            Value::Number(11.0)
        );
        assert_eq!(
            run_ok("var o = {a: 1}; delete o.a; typeof o.a"),
            Value::string("undefined")
        );
    }

    #[test]
    fn for_in_iterates_keys() {
        assert_eq!(
            run_ok(
                "var o = {a: 1, b: 2, c: 3}; var keys = ''; for (var k in o) { keys += k; } keys"
            ),
            Value::string("abc")
        );
        assert_eq!(
            run_ok("var a = [10, 20]; var s = 0; for (var i in a) { s += a[i]; } s"),
            Value::Number(30.0)
        );
    }

    #[test]
    fn methods_use_this() {
        assert_eq!(
            run_ok("var o = { n: 2, double: function() { return this.n * 2; } }; o.double()"),
            Value::Number(4.0)
        );
    }

    #[test]
    fn constructors() {
        assert_eq!(
            run_ok("function Point(x, y) { this.x = x; this.y = y; } var p = new Point(3, 4); p.x + p.y"),
            Value::Number(7.0)
        );
        assert_eq!(
            run_ok("var b = new ByteArray(); b.append('abc'); b.length"),
            Value::Number(3.0)
        );
    }

    #[test]
    fn ternary_logical_shortcircuit() {
        assert_eq!(run_ok("1 > 2 ? 'a' : 'b'"), Value::string("b"));
        assert_eq!(run_ok("null || 'fallback'"), Value::string("fallback"));
        assert_eq!(run_ok("0 && explode()"), Value::Number(0.0));
        assert_eq!(run_ok("'x' || explode()"), Value::string("x"));
    }

    #[test]
    fn typeof_and_equality() {
        assert_eq!(run_ok("typeof 1"), Value::string("number"));
        assert_eq!(run_ok("typeof 'a'"), Value::string("string"));
        assert_eq!(
            run_ok("typeof undefinedVariable"),
            Value::string("undefined")
        );
        assert_eq!(run_ok("typeof function(){}"), Value::string("function"));
        assert_eq!(run_ok("1 == '1'"), Value::Bool(true));
        assert_eq!(run_ok("1 === '1'"), Value::Bool(false));
        assert_eq!(run_ok("null == undefined"), Value::Bool(true));
        assert_eq!(run_ok("null === undefined"), Value::Bool(false));
        assert_eq!(run_ok("'b' in {a:1, b:2}"), Value::Bool(true));
        assert_eq!(run_ok("'c' in {a:1, b:2}"), Value::Bool(false));
    }

    #[test]
    fn update_expressions() {
        assert_eq!(run_ok("var i = 5; i++; ++i; i"), Value::Number(7.0));
        assert_eq!(run_ok("var i = 5; i++"), Value::Number(5.0));
        assert_eq!(run_ok("var i = 5; ++i"), Value::Number(6.0));
        assert_eq!(run_ok("var o = {n: 1}; o.n++; o.n"), Value::Number(2.0));
    }

    #[test]
    fn try_catch_finally_and_throw() {
        assert_eq!(
            run_ok("var r = ''; try { throw 'boom'; } catch (e) { r = e; } r"),
            Value::string("boom")
        );
        assert_eq!(
            run_ok("var r = 0; try { r = 1; } finally { r = r + 10; } r"),
            Value::Number(11.0)
        );
        assert_eq!(
            run_ok("var r = ''; try { undeclaredFn(); } catch (e) { r = 'caught'; } r"),
            Value::string("caught")
        );
        assert!(run("throw 'unhandled'").is_err());
    }

    #[test]
    fn reference_errors() {
        assert!(matches!(run("missing + 1"), Err(ScriptError::Reference(_))));
        assert!(matches!(run("5()"), Err(ScriptError::Type(_))));
        assert!(matches!(
            run("var o = {}; o.nothing()"),
            Err(ScriptError::Type(_))
        ));
    }

    #[test]
    fn assignment_as_condition_value() {
        // The Figure-2 idiom: while (buff = read()) { ... }
        assert_eq!(
            run_ok(
                "var i = 0; var buff; var count = 0; \
                 function read() { i++; if (i > 3) return null; return 'chunk'; } \
                 while (buff = read()) { count++; } count"
            ),
            Value::Number(3.0)
        );
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let program = parse_program("while (true) { }").unwrap();
        let ctx = Context::with_limits(10_000, crate::context::DEFAULT_MEMORY_LIMIT);
        stdlib::install(&ctx);
        let mut interp = Interpreter::new(&ctx);
        assert_eq!(interp.run(&program), Err(ScriptError::FuelExhausted));
    }

    #[test]
    fn memory_limit_stops_string_doubling() {
        // The paper's misbehaving script: repeatedly doubling a string.
        let program =
            parse_program("var s = 'xxxxxxxxxxxxxxxx'; while (true) { s = s + s; }").unwrap();
        let ctx = Context::with_limits(u64::MAX / 2, 1024 * 1024);
        stdlib::install(&ctx);
        let mut interp = Interpreter::new(&ctx);
        assert!(matches!(
            interp.run(&program),
            Err(ScriptError::MemoryExceeded { .. }) | Err(ScriptError::FuelExhausted)
        ));
    }

    #[test]
    fn kill_flag_terminates_promptly() {
        let program = parse_program("while (true) { }").unwrap();
        let ctx = Context::new();
        stdlib::install(&ctx);
        ctx.meter.kill();
        let mut interp = Interpreter::new(&ctx);
        assert_eq!(interp.run(&program), Err(ScriptError::Terminated));
    }

    #[test]
    fn recursion_depth_is_bounded() {
        assert_eq!(
            run("function f() { return f(); } f()"),
            Err(ScriptError::StackOverflow)
        );
    }

    #[test]
    fn call_function_entry_point_for_handlers() {
        let program = parse_program("onResponse = function() { return Count + 1; }").unwrap();
        let ctx = Context::new();
        stdlib::install(&ctx);
        ctx.set_global("Count", Value::Number(41.0));
        let mut interp = Interpreter::new(&ctx);
        interp.run(&program).unwrap();
        let handler = ctx.get_global("onResponse").unwrap();
        let result = interp
            .call_function(&handler, &Value::Undefined, &[])
            .unwrap();
        assert_eq!(result, Value::Number(42.0));
    }

    #[test]
    fn meter_observes_consumption() {
        let ctx = Context::new();
        stdlib::install(&ctx);
        let program =
            parse_program("var s = 0; for (var i = 0; i < 1000; i++) { s += i; } s").unwrap();
        let mut interp = Interpreter::new(&ctx);
        interp.run(&program).unwrap();
        assert!(interp.fuel_used() > 1000);
        assert!(ctx.meter.steps() > 0);
    }
}
