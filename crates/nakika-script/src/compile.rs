//! The NkScript bytecode compiler: lowers the AST to the ISA in
//! [`crate::bytecode`].
//!
//! The compiler's contract is to preserve the tree-walking interpreter's
//! observable semantics exactly (the differential property tests in
//! `tests/differential.rs` enforce this), while moving every cost that does
//! not depend on runtime values to compile time:
//!
//! * **Resolved local slots** — a function that contains no nested function
//!   (so no closure can capture its locals) stores every local binding in a
//!   numbered frame slot instead of a `HashMap`-backed scope.  Resolution
//!   replays the interpreter's scope discipline statically: each `if` /
//!   loop / `try` block is a child scope (fresh per iteration), `var`
//!   declares into the innermost block, bare `{}` blocks share their parent,
//!   and a name only resolves to a binding *after* its declaration has been
//!   compiled — uses lexically before a `var` see the enclosing scope, just
//!   as they would at runtime.  Names that resolve to nothing fall back to
//!   dynamic ops against the closure's captured scope chain (where sloppy
//!   assignment lands on the global root).
//! * **Constant interning** — numbers and strings are pooled once; pushing a
//!   string constant at runtime is a reference-count bump rather than a
//!   fresh allocation.
//! * **Control-flow layout** — jumps are resolved to instruction indices;
//!   `break` / `continue` / `return` / errors unwind through a small control
//!   stack that the compiler seeds with `LoopEnter` / `TryEnter` markers, so
//!   `finally` ordering matches the interpreter.
//! * **Scope elision** — in dynamically scoped functions, blocks that
//!   declare nothing skip the child-scope allocation entirely (lookups are
//!   transparent through empty scopes, so this is unobservable).

use crate::ast::*;
use crate::bytecode::{CompiledFunction, CompiledProgram, Const, FrameMode, Op, NO_CATCH};
use std::collections::HashMap;
use std::sync::Arc;

/// Compiles a parsed program to bytecode.  Lowering is infallible: every
/// program the parser accepts can be compiled (constructs that the
/// interpreter rejects at runtime, such as invalid assignment targets,
/// compile to instructions that raise the same error when executed).
pub fn compile(program: &Program) -> CompiledProgram {
    CompiledProgram::new(FnCompiler::compile_main(program))
}

/// Compiles a single function literal (used by
/// [`CompiledProgram::function_for`] to lower closures this program has not
/// seen before, e.g. handlers created by another script).
pub(crate) fn compile_function(literal: Arc<FunctionLiteral>) -> CompiledFunction {
    FnCompiler::compile_literal(literal)
}

/// True when the function body contains a nested function (declaration or
/// expression) anywhere, in which case its locals must live in real scopes
/// so closures can capture them.
fn body_contains_function(body: &[Stmt]) -> bool {
    body.iter().any(stmt_contains_function)
}

fn stmt_contains_function(s: &Stmt) -> bool {
    match s {
        Stmt::FunctionDecl { .. } => true,
        Stmt::VarDecl { init, .. } => init.as_ref().is_some_and(expr_contains_function),
        Stmt::Expr(e) | Stmt::Throw(e) => expr_contains_function(e),
        Stmt::Return(e) => e.as_ref().is_some_and(expr_contains_function),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_contains_function(cond)
                || body_contains_function(then_branch)
                || body_contains_function(else_branch)
        }
        Stmt::While { cond, body } => expr_contains_function(cond) || body_contains_function(body),
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.as_deref().is_some_and(stmt_contains_function)
                || cond.as_ref().is_some_and(expr_contains_function)
                || update.as_ref().is_some_and(expr_contains_function)
                || body_contains_function(body)
        }
        Stmt::ForIn { object, body, .. } => {
            expr_contains_function(object) || body_contains_function(body)
        }
        Stmt::Try {
            body,
            catch_body,
            finally_body,
            ..
        } => {
            body_contains_function(body)
                || body_contains_function(catch_body)
                || body_contains_function(finally_body)
        }
        Stmt::Block(body) => body_contains_function(body),
        Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

fn expr_contains_function(e: &Expr) -> bool {
    match e {
        Expr::Function(_) => true,
        Expr::Number(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::Ident(_) => false,
        Expr::Array(items) => items.iter().any(expr_contains_function),
        Expr::Object(props) => props.iter().any(|(_, v)| expr_contains_function(v)),
        Expr::Unary { expr, .. }
        | Expr::Typeof(expr)
        | Expr::Delete(expr)
        | Expr::Update { target: expr, .. } => expr_contains_function(expr),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            expr_contains_function(left) || expr_contains_function(right)
        }
        Expr::Conditional {
            cond,
            then,
            otherwise,
        } => {
            expr_contains_function(cond)
                || expr_contains_function(then)
                || expr_contains_function(otherwise)
        }
        Expr::Assign { target, value, .. } => {
            expr_contains_function(target) || expr_contains_function(value)
        }
        Expr::Member { object, .. } => expr_contains_function(object),
        Expr::Index { object, index } => {
            expr_contains_function(object) || expr_contains_function(index)
        }
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            expr_contains_function(callee) || args.iter().any(expr_contains_function)
        }
    }
}

/// True when executing `body` would declare anything directly into its own
/// scope (`var`, a function declaration, or either inside a bare block,
/// which shares the scope).  Blocks that declare nothing skip the child
/// scope at runtime.
fn block_declares(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::VarDecl { .. } | Stmt::FunctionDecl { .. } => true,
        Stmt::Block(inner) => block_declares(inner),
        _ => false,
    })
}

/// Per-function compiler state.
struct FnCompiler {
    code: Vec<Op>,
    consts: Vec<Const>,
    str_index: HashMap<String, u16>,
    num_index: HashMap<u64, u16>,
    funcs: Vec<Arc<CompiledFunction>>,
    func_index: HashMap<usize, u16>,
    /// Slot resolution: a stack of static scopes mirroring the runtime
    /// scope-chain structure (slotted mode only).
    statics: Vec<HashMap<String, u16>>,
    n_slots: u16,
    slotted: bool,
}

impl FnCompiler {
    fn new(slotted: bool) -> FnCompiler {
        FnCompiler {
            code: Vec::new(),
            consts: Vec::new(),
            str_index: HashMap::new(),
            num_index: HashMap::new(),
            funcs: Vec::new(),
            func_index: HashMap::new(),
            statics: if slotted {
                vec![HashMap::new()]
            } else {
                Vec::new()
            },
            n_slots: 0,
            slotted,
        }
    }

    fn compile_main(program: &Program) -> CompiledFunction {
        // The top level always runs dynamically against the context's global
        // scope: vocabularies are (re)installed between runs and handlers
        // registered by the script capture the globals.
        let mut c = FnCompiler::new(false);
        c.hoist(&program.body);
        for s in &program.body {
            c.stmt(s);
        }
        c.emit(Op::LoadLast);
        c.emit(Op::Return);
        c.finish(None)
    }

    fn compile_literal(literal: Arc<FunctionLiteral>) -> CompiledFunction {
        let slotted = !body_contains_function(&literal.body);
        let mut c = FnCompiler::new(slotted);
        let mut param_slots = Vec::new();
        let mut this_slot = 0;
        let mut arguments_slot = 0;
        if slotted {
            for p in &literal.params {
                let s = c.bind(p);
                param_slots.push(s);
            }
            this_slot = c.bind("this");
            arguments_slot = c.bind("arguments");
        }
        c.hoist(&literal.body);
        for s in &literal.body {
            c.stmt(s);
        }
        c.emit(Op::Undef);
        c.emit(Op::Return);
        let mut f = c.finish(Some(literal));
        f.param_slots = param_slots;
        f.this_slot = this_slot;
        f.arguments_slot = arguments_slot;
        f
    }

    fn finish(self, literal: Option<Arc<FunctionLiteral>>) -> CompiledFunction {
        CompiledFunction {
            literal,
            code: self.code,
            consts: self.consts,
            funcs: self.funcs,
            mode: if self.slotted {
                FrameMode::Slotted {
                    n_slots: self.n_slots,
                }
            } else {
                FrameMode::Scoped
            },
            param_slots: Vec::new(),
            this_slot: 0,
            arguments_slot: 0,
        }
    }

    // ---- emission helpers --------------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) | Op::ForInNext(t) => *t = target,
            other => unreachable!("patch on non-jump {other:?}"),
        }
    }

    fn str_const(&mut self, s: &str) -> u16 {
        if let Some(&i) = self.str_index.get(s) {
            return i;
        }
        let i = self.consts.len() as u16;
        self.consts.push(Const::Str(Arc::from(s)));
        self.str_index.insert(s.to_string(), i);
        i
    }

    fn num_const(&mut self, n: f64) -> u16 {
        if let Some(&i) = self.num_index.get(&n.to_bits()) {
            return i;
        }
        let i = self.consts.len() as u16;
        self.consts.push(Const::Num(n));
        self.num_index.insert(n.to_bits(), i);
        i
    }

    fn add_func(&mut self, literal: &Arc<FunctionLiteral>) -> u16 {
        let key = Arc::as_ptr(literal) as usize;
        if let Some(&i) = self.func_index.get(&key) {
            return i;
        }
        let compiled = Arc::new(FnCompiler::compile_literal(literal.clone()));
        let i = self.funcs.len() as u16;
        self.funcs.push(compiled);
        self.func_index.insert(key, i);
        i
    }

    // ---- name resolution ---------------------------------------------------

    /// Declares `name` in the innermost static scope, reusing the slot when
    /// the scope already has a binding for it (matching `Scope::declare`'s
    /// insert-or-overwrite).
    fn bind(&mut self, name: &str) -> u16 {
        let top = self.statics.last_mut().expect("slotted scope stack");
        if let Some(&slot) = top.get(name) {
            return slot;
        }
        let slot = self.n_slots;
        self.n_slots += 1;
        top.insert(name.to_string(), slot);
        slot
    }

    /// Resolves `name` through the static scope chain; `None` means the name
    /// (at this program point) can only live in the captured scope chain.
    fn resolve(&self, name: &str) -> Option<u16> {
        if !self.slotted {
            return None;
        }
        self.statics
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn declare(&mut self, name: &str) {
        if self.slotted {
            let slot = self.bind(name);
            self.emit(Op::DeclSlot(slot));
        } else {
            let k = self.str_const(name);
            self.emit(Op::DeclName(k));
        }
    }

    fn load_ident(&mut self, name: &str) {
        match self.resolve(name) {
            Some(slot) => {
                self.emit(Op::LoadSlot(slot));
            }
            None => {
                let k = self.str_const(name);
                self.emit(Op::LoadName(k));
            }
        }
    }

    /// Load for assignment-target reads (`eval_target`): a missing binding
    /// yields `undefined` instead of a reference error.
    fn load_ident_soft(&mut self, name: &str) {
        match self.resolve(name) {
            Some(slot) => {
                self.emit(Op::LoadSlot(slot));
            }
            None => {
                let k = self.str_const(name);
                self.emit(Op::LoadNameSoft(k));
            }
        }
    }

    fn store_ident(&mut self, name: &str) {
        match self.resolve(name) {
            Some(slot) => {
                self.emit(Op::StoreSlot(slot));
            }
            None => {
                let k = self.str_const(name);
                self.emit(Op::StoreName(k));
            }
        }
    }

    // ---- blocks and scopes -------------------------------------------------

    /// Hoists function declarations that appear directly in `body` (run
    /// before the block's statements, as `exec_block` does).
    fn hoist(&mut self, body: &[Stmt]) {
        for s in body {
            if let Stmt::FunctionDecl { name, func } = s {
                let f = self.add_func(func);
                self.emit(Op::MakeClosure(f));
                let k = self.str_const(name);
                self.emit(Op::DeclName(k));
            }
        }
    }

    /// Compiles a block.  `new_scope` mirrors the interpreter passing
    /// `scope.child()`: true for `if` branches, loop bodies, and `try`
    /// parts; false for bare blocks and function/program bodies.
    fn block(&mut self, body: &[Stmt], new_scope: bool) {
        let push_runtime = !self.slotted && new_scope && block_declares(body);
        if push_runtime {
            self.emit(Op::PushScope);
        }
        if self.slotted && new_scope {
            self.statics.push(HashMap::new());
        }
        self.hoist(body);
        for s in body {
            self.stmt(s);
        }
        if self.slotted && new_scope {
            self.statics.pop();
        }
        if push_runtime {
            self.emit(Op::PopScope);
        }
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Empty => {
                self.emit(Op::SetLastUndef);
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Op::StoreLast);
            }
            Stmt::VarDecl { name, init } => {
                match init {
                    Some(e) => self.expr(e),
                    None => {
                        self.emit(Op::Undef);
                    }
                }
                self.declare(name);
                self.emit(Op::SetLastUndef);
            }
            Stmt::FunctionDecl { name, func } => {
                // Re-declares (a fresh closure) when reached in statement
                // order, in addition to the hoisted declaration.
                let f = self.add_func(func);
                self.emit(Op::MakeClosure(f));
                let k = self.str_const(name);
                self.emit(Op::DeclName(k));
                self.emit(Op::SetLastUndef);
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e),
                    None => {
                        self.emit(Op::Undef);
                    }
                }
                self.emit(Op::Return);
            }
            Stmt::Throw(e) => {
                self.expr(e);
                self.emit(Op::Throw);
            }
            Stmt::Break => {
                self.emit(Op::Break);
            }
            Stmt::Continue => {
                self.emit(Op::Continue);
            }
            Stmt::Block(body) => {
                self.emit(Op::SetLastUndef);
                self.block(body, false);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.emit(Op::SetLastUndef);
                self.block(then_branch, true);
                let jend = self.emit(Op::Jump(0));
                let else_at = self.here();
                self.patch(jf, else_at);
                self.emit(Op::SetLastUndef);
                self.block(else_branch, true);
                let end = self.here();
                self.patch(jend, end);
            }
            Stmt::While { cond, body } => {
                let le = self.emit(Op::LoopEnter {
                    break_ip: 0,
                    continue_ip: 0,
                    keeps_header_scope: false,
                    keeps_iter: false,
                });
                let lcond = self.here();
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.block(body, true);
                self.emit(Op::Jump(lcond));
                let lexit = self.here();
                self.patch(jf, lexit);
                self.emit(Op::LoopExit);
                let break_ip = self.here();
                self.patch_loop(le, break_ip, lcond);
                self.emit(Op::SetLastUndef);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let header = match init {
                    Some(init) => block_declares(std::slice::from_ref(init.as_ref())),
                    None => false,
                };
                let push_header = !self.slotted && header;
                let le = self.emit(Op::LoopEnter {
                    break_ip: 0,
                    continue_ip: 0,
                    keeps_header_scope: push_header,
                    keeps_iter: false,
                });
                if push_header {
                    self.emit(Op::PushScope);
                }
                if self.slotted {
                    self.statics.push(HashMap::new());
                }
                if let Some(init) = init {
                    self.stmt(init);
                }
                let lcond = self.here();
                let jf = match cond {
                    Some(cond) => {
                        self.expr(cond);
                        Some(self.emit(Op::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.block(body, true);
                let lupdate = self.here();
                if let Some(update) = update {
                    self.expr(update);
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(lcond));
                let lexit = self.here();
                if let Some(jf) = jf {
                    self.patch(jf, lexit);
                }
                self.emit(Op::LoopExit);
                if self.slotted {
                    self.statics.pop();
                }
                if push_header {
                    self.emit(Op::PopScope);
                }
                let break_ip = self.here();
                self.patch_loop(le, break_ip, lupdate);
                self.emit(Op::SetLastUndef);
            }
            Stmt::ForIn { var, object, body } => {
                let le = self.emit(Op::LoopEnter {
                    break_ip: 0,
                    continue_ip: 0,
                    keeps_header_scope: !self.slotted,
                    keeps_iter: true,
                });
                // The iterated object is evaluated in the enclosing scope,
                // before the loop scope exists.
                self.expr(object);
                self.emit(Op::ForInInit);
                if self.slotted {
                    self.statics.push(HashMap::new());
                } else {
                    self.emit(Op::PushScope);
                }
                let lnext = self.here();
                let fin = self.emit(Op::ForInNext(0));
                self.declare(var);
                self.block(body, true);
                self.emit(Op::Jump(lnext));
                let lexit = self.here();
                self.patch(fin, lexit);
                self.emit(Op::LoopExit);
                if self.slotted {
                    self.statics.pop();
                } else {
                    self.emit(Op::PopScope);
                }
                let break_ip = self.here();
                self.patch_loop(le, break_ip, lnext);
                self.emit(Op::SetLastUndef);
            }
            Stmt::Try {
                body,
                catch_name,
                catch_body,
                finally_body,
            } => {
                let te = self.emit(Op::TryEnter {
                    catch_ip: 0,
                    finally_ip: 0,
                    exit_ip: 0,
                });
                self.emit(Op::SetLastUndef);
                self.block(body, true);
                self.emit(Op::TryEndBody);
                let catch_ip = match catch_name {
                    Some(name) => {
                        let cip = self.here();
                        // The unwinder pushed the stringified error; bind it
                        // in a fresh scope shared with the catch body.
                        self.emit(Op::SetLastUndef);
                        if self.slotted {
                            self.statics.push(HashMap::new());
                        } else {
                            self.emit(Op::PushScope);
                        }
                        self.declare(name);
                        self.hoist(catch_body);
                        for s in catch_body {
                            self.stmt(s);
                        }
                        if self.slotted {
                            self.statics.pop();
                        } else {
                            self.emit(Op::PopScope);
                        }
                        self.emit(Op::TryEndBody);
                        cip
                    }
                    None => NO_CATCH,
                };
                let finally_ip = self.here();
                self.block(finally_body, true);
                let exit_ip = self.here();
                self.emit(Op::TryExit);
                if let Op::TryEnter {
                    catch_ip: c,
                    finally_ip: f,
                    exit_ip: e,
                } = &mut self.code[te]
                {
                    *c = catch_ip;
                    *f = finally_ip;
                    *e = exit_ip;
                } else {
                    unreachable!("try patch target");
                }
            }
        }
    }

    fn patch_loop(&mut self, at: usize, break_target: u32, continue_target: u32) {
        if let Op::LoopEnter {
            break_ip,
            continue_ip,
            ..
        } = &mut self.code[at]
        {
            *break_ip = break_target;
            *continue_ip = continue_target;
        } else {
            unreachable!("loop patch target");
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Number(n) => {
                let k = self.num_const(*n);
                self.emit(Op::Num(k));
            }
            Expr::Str(s) => {
                let k = self.str_const(s);
                self.emit(Op::Str(k));
            }
            Expr::Bool(true) => {
                self.emit(Op::True);
            }
            Expr::Bool(false) => {
                self.emit(Op::False);
            }
            Expr::Null => {
                self.emit(Op::Null);
            }
            Expr::Undefined => {
                self.emit(Op::Undef);
            }
            Expr::Ident(name) => self.load_ident(name),
            Expr::Array(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Op::MakeArray(items.len() as u16));
            }
            Expr::Object(props) => {
                self.emit(Op::MakeObject);
                for (key, value) in props {
                    self.expr(value);
                    let k = self.str_const(key);
                    self.emit(Op::InitProp(k));
                }
                self.emit(Op::AccountTop);
            }
            Expr::Function(literal) => {
                debug_assert!(!self.slotted, "function literal in slotted mode");
                let f = self.add_func(literal);
                self.emit(Op::MakeClosure(f));
            }
            Expr::Unary { op, expr } => {
                self.expr(expr);
                self.emit(match op {
                    UnaryOp::Neg => Op::Neg,
                    UnaryOp::Plus => Op::Plus,
                    UnaryOp::Not => Op::Not,
                });
            }
            Expr::Binary { op, left, right } => {
                self.expr(left);
                self.expr(right);
                self.emit(Op::Bin(*op));
            }
            Expr::Logical {
                is_and,
                left,
                right,
            } => {
                self.expr(left);
                self.emit(Op::Dup);
                let j = self.emit(if *is_and {
                    Op::JumpIfFalse(0)
                } else {
                    Op::JumpIfTrue(0)
                });
                self.emit(Op::Pop);
                self.expr(right);
                let end = self.here();
                self.patch(j, end);
            }
            Expr::Conditional {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.expr(then);
                let jend = self.emit(Op::Jump(0));
                let at = self.here();
                self.patch(jf, at);
                self.expr(otherwise);
                let end = self.here();
                self.patch(jend, end);
            }
            Expr::Assign { target, op, value } => self.assign(target, *op, value),
            Expr::Member { object, property } => {
                self.expr(object);
                let k = self.str_const(property);
                self.emit(Op::GetProp(k));
            }
            Expr::Index { object, index } => {
                self.expr(object);
                self.expr(index);
                self.emit(Op::GetIndex);
            }
            Expr::Call { callee, args } => {
                // Arguments are evaluated before the callee, matching the
                // interpreter.
                for a in args {
                    self.expr(a);
                }
                let argc = args.len() as u16;
                match callee.as_ref() {
                    Expr::Member { object, property } => {
                        self.expr(object);
                        let name = self.str_const(property);
                        self.emit(Op::CallMethod { name, argc });
                    }
                    Expr::Index { object, index } => {
                        self.expr(object);
                        self.expr(index);
                        self.emit(Op::CallIndexMethod(argc));
                    }
                    _ => {
                        self.expr(callee);
                        self.emit(Op::Call(argc));
                    }
                }
            }
            Expr::New { callee, args } => {
                for a in args {
                    self.expr(a);
                }
                self.expr(callee);
                let class = match callee.as_ref() {
                    Expr::Ident(name) => name.clone(),
                    Expr::Member { property, .. } => property.clone(),
                    _ => "Object".to_string(),
                };
                let class = self.str_const(&class);
                self.emit(Op::New {
                    argc: args.len() as u16,
                    class,
                });
            }
            Expr::Typeof(inner) => {
                if let Expr::Ident(name) = inner.as_ref() {
                    match self.resolve(name) {
                        Some(slot) => {
                            self.emit(Op::LoadSlot(slot));
                            self.emit(Op::Typeof);
                        }
                        None => {
                            let k = self.str_const(name);
                            self.emit(Op::TypeofName(k));
                        }
                    }
                } else {
                    self.expr(inner);
                    self.emit(Op::Typeof);
                }
            }
            Expr::Delete(inner) => match inner.as_ref() {
                Expr::Member { object, property } => {
                    self.expr(object);
                    let k = self.str_const(property);
                    self.emit(Op::DelProp(k));
                }
                Expr::Index { object, index } => {
                    self.expr(object);
                    self.expr(index);
                    self.emit(Op::DelIndex);
                }
                // `delete` of anything else is `false` without evaluating
                // the operand, matching the interpreter.
                _ => {
                    self.emit(Op::False);
                }
            },
            Expr::Update {
                target,
                delta,
                prefix,
            } => self.update(target, *delta, *prefix),
        }
    }

    fn assign(&mut self, target: &Expr, op: Option<BinaryOp>, value: &Expr) {
        // The assigned value is always evaluated first; compound assignment
        // then reads the target (evaluating a member target's object
        // expression once for the read and once again for the write, as the
        // interpreter does).
        self.expr(value);
        match target {
            Expr::Ident(name) => {
                if let Some(op) = op {
                    self.load_ident_soft(name);
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(op));
                }
                self.emit(Op::Dup);
                self.store_ident(name);
            }
            Expr::Member { object, property } => {
                let k = self.str_const(property);
                if let Some(op) = op {
                    self.expr(object);
                    self.emit(Op::GetProp(k));
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(op));
                }
                self.expr(object);
                self.emit(Op::SetProp(k));
            }
            Expr::Index { object, index } => {
                if let Some(op) = op {
                    self.expr(object);
                    self.expr(index);
                    self.emit(Op::GetIndex);
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(op));
                }
                self.expr(object);
                self.expr(index);
                self.emit(Op::SetIndex);
            }
            other => {
                if let Some(op) = op {
                    // Compound assignment reads (evaluates) even an invalid
                    // target before failing.
                    self.expr(other);
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(op));
                }
                let msg = format!("invalid assignment target: {other:?}");
                let k = self.str_const(&msg);
                self.emit(Op::Fail(k));
            }
        }
    }

    fn update(&mut self, target: &Expr, delta: f64, prefix: bool) {
        let dk = self.num_const(delta);
        match target {
            Expr::Ident(name) => {
                self.load_ident_soft(name);
                self.emit(Op::ToNumber);
                self.emit(Op::Dup);
                self.emit(Op::Num(dk));
                self.emit(Op::Bin(BinaryOp::Add));
                self.emit(Op::Dup);
                self.store_ident(name);
            }
            Expr::Member { object, property } => {
                let k = self.str_const(property);
                self.expr(object);
                self.emit(Op::GetProp(k));
                self.emit(Op::ToNumber);
                self.emit(Op::Dup);
                self.emit(Op::Num(dk));
                self.emit(Op::Bin(BinaryOp::Add));
                self.expr(object);
                self.emit(Op::SetProp(k));
            }
            Expr::Index { object, index } => {
                self.expr(object);
                self.expr(index);
                self.emit(Op::GetIndex);
                self.emit(Op::ToNumber);
                self.emit(Op::Dup);
                self.emit(Op::Num(dk));
                self.emit(Op::Bin(BinaryOp::Add));
                self.expr(object);
                self.expr(index);
                self.emit(Op::SetIndex);
            }
            other => {
                self.expr(other);
                self.emit(Op::Pop);
                let msg = format!("invalid assignment target: {other:?}");
                let k = self.str_const(&msg);
                self.emit(Op::Fail(k));
                return;
            }
        }
        // Stack: old, new (the store consumed its copy).  The expression's
        // value is `new` for prefix operators, `old` for postfix.
        if prefix {
            self.emit(Op::Swap);
        }
        self.emit(Op::Pop);
    }
}
