//! Tokenizer for NkScript source code.

use crate::error::ScriptError;

/// A lexical token with its source line (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line on which the token starts.
    pub line: usize,
}

/// The kinds of token NkScript recognises.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (all numbers are f64, like JavaScript).
    Number(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Keyword(Keyword),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `var`
    Var,
    /// `function`
    Function,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// `new`
    New,
    /// `typeof`
    Typeof,
    /// `throw`
    Throw,
    /// `try`
    Try,
    /// `catch`
    Catch,
    /// `finally`
    Finally,
    /// `in` (for-in loops and the `in` operator)
    In,
    /// `delete`
    Delete,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Dot,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    PlusPlus,
    MinusMinus,
    BitAnd,
    BitOr,
}

/// Tokenizes `source`, returning the token stream terminated by
/// [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> Result<Vec<Token>, ScriptError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;

    while pos < chars.len() {
        let c = chars[pos];
        match c {
            '\n' => {
                line += 1;
                pos += 1;
            }
            c if c.is_whitespace() => {
                pos += 1;
            }
            '/' if peek(&chars, pos + 1) == Some('/') => {
                while pos < chars.len() && chars[pos] != '\n' {
                    pos += 1;
                }
            }
            '/' if peek(&chars, pos + 1) == Some('*') => {
                pos += 2;
                loop {
                    if pos >= chars.len() {
                        return Err(ScriptError::Lex {
                            line,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if chars[pos] == '\n' {
                        line += 1;
                    }
                    if chars[pos] == '*' && peek(&chars, pos + 1) == Some('/') {
                        pos += 2;
                        break;
                    }
                    pos += 1;
                }
            }
            '"' | '\'' => {
                let (s, consumed, newlines) = lex_string(&chars, pos, line)?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
                pos += consumed;
                line += newlines;
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                let mut saw_dot = false;
                let mut is_hex = false;
                if c == '0' && matches!(peek(&chars, pos + 1), Some('x') | Some('X')) {
                    is_hex = true;
                    pos += 2;
                    while pos < chars.len() && chars[pos].is_ascii_hexdigit() {
                        pos += 1;
                    }
                } else {
                    while pos < chars.len()
                        && (chars[pos].is_ascii_digit() || (chars[pos] == '.' && !saw_dot))
                    {
                        if chars[pos] == '.' {
                            // A trailing "." followed by a non-digit is member
                            // access on a number; stop before it.
                            if !matches!(peek(&chars, pos + 1), Some(d) if d.is_ascii_digit()) {
                                break;
                            }
                            saw_dot = true;
                        }
                        pos += 1;
                    }
                }
                let text: String = chars[start..pos].iter().collect();
                let value = if is_hex {
                    i64::from_str_radix(text.trim_start_matches("0x").trim_start_matches("0X"), 16)
                        .map(|v| v as f64)
                        .map_err(|_| ScriptError::Lex {
                            line,
                            message: format!("bad hex literal: {text}"),
                        })?
                } else {
                    text.parse::<f64>().map_err(|_| ScriptError::Lex {
                        line,
                        message: format!("bad number literal: {text}"),
                    })?
                };
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = pos;
                while pos < chars.len()
                    && (chars[pos].is_ascii_alphanumeric()
                        || chars[pos] == '_'
                        || chars[pos] == '$')
                {
                    pos += 1;
                }
                let word: String = chars[start..pos].iter().collect();
                let kind = match word.as_str() {
                    "var" | "let" | "const" => TokenKind::Keyword(Keyword::Var),
                    "function" => TokenKind::Keyword(Keyword::Function),
                    "return" => TokenKind::Keyword(Keyword::Return),
                    "if" => TokenKind::Keyword(Keyword::If),
                    "else" => TokenKind::Keyword(Keyword::Else),
                    "while" => TokenKind::Keyword(Keyword::While),
                    "for" => TokenKind::Keyword(Keyword::For),
                    "break" => TokenKind::Keyword(Keyword::Break),
                    "continue" => TokenKind::Keyword(Keyword::Continue),
                    "true" => TokenKind::Keyword(Keyword::True),
                    "false" => TokenKind::Keyword(Keyword::False),
                    "null" => TokenKind::Keyword(Keyword::Null),
                    "undefined" => TokenKind::Keyword(Keyword::Undefined),
                    "new" => TokenKind::Keyword(Keyword::New),
                    "typeof" => TokenKind::Keyword(Keyword::Typeof),
                    "throw" => TokenKind::Keyword(Keyword::Throw),
                    "try" => TokenKind::Keyword(Keyword::Try),
                    "catch" => TokenKind::Keyword(Keyword::Catch),
                    "finally" => TokenKind::Keyword(Keyword::Finally),
                    "in" => TokenKind::Keyword(Keyword::In),
                    "delete" => TokenKind::Keyword(Keyword::Delete),
                    _ => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, line });
                continue;
            }
            _ => {
                let (punct, consumed) = lex_punct(&chars, pos).ok_or_else(|| ScriptError::Lex {
                    line,
                    message: format!("unexpected character '{c}'"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Punct(punct),
                    line,
                });
                pos += consumed;
                continue;
            }
        }
        // Numbers and strings advanced `pos` themselves except in the digit
        // branch, which leaves pos at the end already; whitespace/comments
        // also handled.  Nothing more to do here.
        if matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Str(_))) {
            // string already advanced pos
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn peek(chars: &[char], pos: usize) -> Option<char> {
    chars.get(pos).copied()
}

fn lex_string(
    chars: &[char],
    start: usize,
    line: usize,
) -> Result<(String, usize, usize), ScriptError> {
    let quote = chars[start];
    let mut out = String::new();
    let mut pos = start + 1;
    let mut newlines = 0usize;
    while pos < chars.len() {
        let c = chars[pos];
        if c == quote {
            return Ok((out, pos - start + 1, newlines));
        }
        if c == '\\' {
            pos += 1;
            let esc = peek(chars, pos).ok_or_else(|| ScriptError::Lex {
                line,
                message: "unterminated string".to_string(),
            })?;
            out.push(match esc {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                '0' => '\0',
                other => other,
            });
        } else {
            if c == '\n' {
                newlines += 1;
            }
            out.push(c);
        }
        pos += 1;
    }
    Err(ScriptError::Lex {
        line,
        message: "unterminated string".to_string(),
    })
}

fn lex_punct(chars: &[char], pos: usize) -> Option<(Punct, usize)> {
    let c = chars[pos];
    let next = peek(chars, pos + 1);
    let next2 = peek(chars, pos + 2);
    let two = |p| Some((p, 2));
    let one = |p| Some((p, 1));
    match (c, next, next2) {
        ('=', Some('='), Some('=')) => Some((Punct::StrictEq, 3)),
        ('!', Some('='), Some('=')) => Some((Punct::StrictNotEq, 3)),
        ('=', Some('='), _) => two(Punct::Eq),
        ('!', Some('='), _) => two(Punct::NotEq),
        ('<', Some('='), _) => two(Punct::Le),
        ('>', Some('='), _) => two(Punct::Ge),
        ('&', Some('&'), _) => two(Punct::AndAnd),
        ('|', Some('|'), _) => two(Punct::OrOr),
        ('+', Some('+'), _) => two(Punct::PlusPlus),
        ('-', Some('-'), _) => two(Punct::MinusMinus),
        ('+', Some('='), _) => two(Punct::PlusAssign),
        ('-', Some('='), _) => two(Punct::MinusAssign),
        ('*', Some('='), _) => two(Punct::StarAssign),
        ('/', Some('='), _) => two(Punct::SlashAssign),
        ('(', _, _) => one(Punct::LParen),
        (')', _, _) => one(Punct::RParen),
        ('{', _, _) => one(Punct::LBrace),
        ('}', _, _) => one(Punct::RBrace),
        ('[', _, _) => one(Punct::LBracket),
        (']', _, _) => one(Punct::RBracket),
        (';', _, _) => one(Punct::Semicolon),
        (',', _, _) => one(Punct::Comma),
        ('.', _, _) => one(Punct::Dot),
        (':', _, _) => one(Punct::Colon),
        ('?', _, _) => one(Punct::Question),
        ('+', _, _) => one(Punct::Plus),
        ('-', _, _) => one(Punct::Minus),
        ('*', _, _) => one(Punct::Star),
        ('/', _, _) => one(Punct::Slash),
        ('%', _, _) => one(Punct::Percent),
        ('=', _, _) => one(Punct::Assign),
        ('<', _, _) => one(Punct::Lt),
        ('>', _, _) => one(Punct::Gt),
        ('!', _, _) => one(Punct::Not),
        ('&', _, _) => one(Punct::BitAnd),
        ('|', _, _) => one(Punct::BitOr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_strings_identifiers() {
        let toks = kinds("var x = 42.5; x = 'hi' + \"there\"; 0xff");
        assert!(toks.contains(&TokenKind::Number(42.5)));
        assert!(toks.contains(&TokenKind::Str("hi".to_string())));
        assert!(toks.contains(&TokenKind::Str("there".to_string())));
        assert!(toks.contains(&TokenKind::Number(255.0)));
        assert!(toks.contains(&TokenKind::Ident("x".to_string())));
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Var)));
    }

    #[test]
    fn number_followed_by_method_call() {
        let toks = kinds("3.toString");
        assert_eq!(toks[0], TokenKind::Number(3.0));
        assert_eq!(toks[1], TokenKind::Punct(Punct::Dot));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("1 // line comment\n/* block\ncomment */ 2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a === b !== c == d != e <= f >= g && h || i += j");
        assert!(toks.contains(&TokenKind::Punct(Punct::StrictEq)));
        assert!(toks.contains(&TokenKind::Punct(Punct::StrictNotEq)));
        assert!(toks.contains(&TokenKind::Punct(Punct::Eq)));
        assert!(toks.contains(&TokenKind::Punct(Punct::NotEq)));
        assert!(toks.contains(&TokenKind::Punct(Punct::Le)));
        assert!(toks.contains(&TokenKind::Punct(Punct::Ge)));
        assert!(toks.contains(&TokenKind::Punct(Punct::AndAnd)));
        assert!(toks.contains(&TokenKind::Punct(Punct::OrOr)));
        assert!(toks.contains(&TokenKind::Punct(Punct::PlusAssign)));
    }

    #[test]
    fn string_escapes() {
        let toks = kinds(r#"'a\nb\t\'c\''"#);
        assert_eq!(toks[0], TokenKind::Str("a\nb\t'c'".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("1\n2\n  3").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn keywords_are_distinguished_from_identifiers() {
        let toks = kinds("iffy if function functional");
        assert_eq!(toks[0], TokenKind::Ident("iffy".to_string()));
        assert_eq!(toks[1], TokenKind::Keyword(Keyword::If));
        assert_eq!(toks[2], TokenKind::Keyword(Keyword::Function));
        assert_eq!(toks[3], TokenKind::Ident("functional".to_string()));
    }

    #[test]
    fn let_and_const_are_var_aliases() {
        let toks = kinds("let a; const b;");
        assert_eq!(
            toks.iter()
                .filter(|k| **k == TokenKind::Keyword(Keyword::Var))
                .count(),
            2
        );
    }
}
