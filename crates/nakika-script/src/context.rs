//! Scripting contexts: lexical scopes, per-context resource accounting, and a
//! pool that reuses contexts across event-handler executions.
//!
//! In the paper's prototype, each pipeline runs in its own Apache process and
//! each script in its own user-level thread with its own SpiderMonkey context
//! (heap included).  Contexts are *reused* across event-handler executions to
//! amortise the ~1.5 ms creation cost down to ~3 µs (paper §4–5.1).  The
//! monitoring process observes each pipeline's CPU, memory and network use
//! and can throttle or kill it.  Here the same roles are played by
//! [`Context`], [`ResourceMeter`], and [`ContextPool`].

use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A lexical scope: a variable map plus a link to the enclosing scope.
#[derive(Clone, Default)]
pub struct Scope {
    inner: Arc<RwLock<ScopeData>>,
}

#[derive(Default)]
struct ScopeData {
    vars: HashMap<String, Value>,
    parent: Option<Scope>,
}

impl Scope {
    /// Creates a top-level (global) scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Creates a child scope whose lookups fall back to `self`.
    pub fn child(&self) -> Scope {
        Scope {
            inner: Arc::new(RwLock::new(ScopeData {
                vars: HashMap::new(),
                parent: Some(self.clone()),
            })),
        }
    }

    /// Declares (or redeclares) a variable in *this* scope.
    pub fn declare(&self, name: &str, value: Value) {
        self.inner.write().vars.insert(name.to_string(), value);
    }

    /// Looks a variable up through the scope chain.
    pub fn get(&self, name: &str) -> Option<Value> {
        let data = self.inner.read();
        if let Some(v) = data.vars.get(name) {
            return Some(v.clone());
        }
        let parent = data.parent.clone();
        drop(data);
        parent.and_then(|p| p.get(name))
    }

    /// Assigns to an existing variable somewhere in the chain; if the name is
    /// not declared anywhere it is created in the *outermost* (global) scope,
    /// matching JavaScript's sloppy-mode behaviour that the paper's example
    /// scripts rely on (`p = new Policy();` without `var`).
    pub fn assign(&self, name: &str, value: Value) {
        if self.try_assign(name, &value) {
            return;
        }
        self.global().declare(name, value);
    }

    fn try_assign(&self, name: &str, value: &Value) -> bool {
        let mut data = self.inner.write();
        if data.vars.contains_key(name) {
            data.vars.insert(name.to_string(), value.clone());
            return true;
        }
        let parent = data.parent.clone();
        drop(data);
        match parent {
            Some(p) => p.try_assign(name, value),
            None => false,
        }
    }

    /// The outermost scope in the chain.
    pub fn global(&self) -> Scope {
        let parent = self.inner.read().parent.clone();
        match parent {
            Some(p) => p.global(),
            None => self.clone(),
        }
    }

    /// Number of variables declared directly in this scope.
    pub fn local_count(&self) -> usize {
        self.inner.read().vars.len()
    }

    /// Removes every variable declared directly in this scope (used when a
    /// pooled context is recycled).
    pub fn clear(&self) {
        self.inner.write().vars.clear();
    }

    /// Names declared directly in this scope (used by `for-in` over the
    /// global object and by tests).
    pub fn local_names(&self) -> Vec<String> {
        self.inner.read().vars.keys().cloned().collect()
    }
}

/// Shared counters through which the interpreter reports resource consumption
/// and through which the resource manager can terminate a script.
///
/// One meter typically belongs to one *site pipeline*; Na Kika's congestion
/// controller aggregates these per site (paper Figure 6).
#[derive(Clone, Default)]
pub struct ResourceMeter {
    inner: Arc<MeterInner>,
}

#[derive(Default)]
struct MeterInner {
    /// Evaluation steps consumed (proxy for CPU time).
    steps: AtomicU64,
    /// Bytes of script heap allocated (approximate, monotonically increasing).
    allocated: AtomicU64,
    /// Bytes read or written through vocabularies (network/body bandwidth).
    transferred: AtomicU64,
    /// Set by the resource manager to kill the pipeline.
    killed: AtomicBool,
}

impl ResourceMeter {
    /// Creates a fresh meter.
    pub fn new() -> ResourceMeter {
        ResourceMeter::default()
    }

    /// Adds evaluation steps.
    pub fn add_steps(&self, n: u64) {
        self.inner.steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds allocated heap bytes.
    pub fn add_allocated(&self, n: u64) {
        self.inner.allocated.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds transferred bytes (body reads/writes, sub-fetches).
    pub fn add_transferred(&self, n: u64) {
        self.inner.transferred.fetch_add(n, Ordering::Relaxed);
    }

    /// Total evaluation steps so far.
    pub fn steps(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Total allocated bytes so far.
    pub fn allocated(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Total transferred bytes so far.
    pub fn transferred(&self) -> u64 {
        self.inner.transferred.load(Ordering::Relaxed)
    }

    /// Marks the pipeline as terminated; the interpreter aborts at the next
    /// safepoint with [`crate::ScriptError::Terminated`].
    pub fn kill(&self) {
        self.inner.killed.store(true, Ordering::Relaxed);
    }

    /// True once [`ResourceMeter::kill`] has been called.
    pub fn is_killed(&self) -> bool {
        self.inner.killed.load(Ordering::Relaxed)
    }

    /// Clears the kill flag and counters (when a site recovers from
    /// penalisation, per the paper's weighted-average recovery).
    pub fn reset(&self) {
        self.inner.steps.store(0, Ordering::Relaxed);
        self.inner.allocated.store(0, Ordering::Relaxed);
        self.inner.transferred.store(0, Ordering::Relaxed);
        self.inner.killed.store(false, Ordering::Relaxed);
    }
}

/// Default fuel budget per event-handler execution (evaluation steps).
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Default hard memory cap per context (64 MiB), the sandbox's last line of
/// defence beneath the congestion-based controls.
pub const DEFAULT_MEMORY_LIMIT: usize = 64 * 1024 * 1024;

/// An isolated scripting context: global scope + resource limits.
#[derive(Clone)]
pub struct Context {
    /// The global scope into which vocabularies are installed.
    pub globals: Scope,
    /// Resource meter shared with the node's resource manager.
    pub meter: ResourceMeter,
    /// Fuel budget for a single run.
    pub fuel_limit: u64,
    /// Hard memory cap in bytes.
    pub memory_limit: usize,
    /// Generation counter bumped on every reuse, for diagnostics.
    generation: Arc<AtomicU64>,
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl Context {
    /// Creates a context with default limits and a fresh meter.
    pub fn new() -> Context {
        Context {
            globals: Scope::new(),
            meter: ResourceMeter::new(),
            fuel_limit: DEFAULT_FUEL,
            memory_limit: DEFAULT_MEMORY_LIMIT,
            generation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a context with explicit limits.
    pub fn with_limits(fuel_limit: u64, memory_limit: usize) -> Context {
        Context {
            fuel_limit,
            memory_limit,
            ..Context::new()
        }
    }

    /// Installs a global (vocabulary root object, constructor, or constant).
    pub fn set_global(&self, name: &str, value: Value) {
        self.globals.declare(name, value);
    }

    /// Reads a global, if defined.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        self.globals.get(name)
    }

    /// How many times this context has been recycled.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Prepares the context for reuse by a new event-handler execution:
    /// clears script-defined globals but keeps the allocation itself (the
    /// cheap path the paper measures at ~3 µs versus ~1.5 ms for creation).
    pub fn recycle(&self) {
        self.globals.clear();
        self.generation.fetch_add(1, Ordering::Relaxed);
    }
}

/// A pool of reusable scripting contexts.
///
/// `acquire` returns a recycled context when one is available and otherwise
/// creates a new one; `release` returns a context to the pool.  The pool is
/// bounded so that idle contexts do not pin memory forever.
pub struct ContextPool {
    free: Mutex<Vec<Context>>,
    capacity: usize,
    created: AtomicU64,
    reused: AtomicU64,
}

impl ContextPool {
    /// Creates a pool holding at most `capacity` idle contexts.
    pub fn new(capacity: usize) -> ContextPool {
        ContextPool {
            free: Mutex::new(Vec::new()),
            capacity,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Takes a context from the pool (recycled) or creates a fresh one.
    pub fn acquire(&self) -> Context {
        if let Some(ctx) = self.free.lock().pop() {
            ctx.recycle();
            self.reused.fetch_add(1, Ordering::Relaxed);
            ctx
        } else {
            self.created.fetch_add(1, Ordering::Relaxed);
            Context::new()
        }
    }

    /// Returns a context to the pool; dropped if the pool is full.
    pub fn release(&self, ctx: Context) {
        let mut free = self.free.lock();
        if free.len() < self.capacity {
            free.push(ctx);
        }
    }

    /// Number of contexts created from scratch.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of acquisitions served by reuse.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of idle contexts currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_chain_lookup_and_shadowing() {
        let global = Scope::new();
        global.declare("x", Value::Number(1.0));
        let inner = global.child();
        assert_eq!(inner.get("x"), Some(Value::Number(1.0)));
        inner.declare("x", Value::Number(2.0));
        assert_eq!(inner.get("x"), Some(Value::Number(2.0)));
        assert_eq!(global.get("x"), Some(Value::Number(1.0)));
        assert_eq!(inner.get("missing"), None);
    }

    #[test]
    fn assignment_walks_the_chain() {
        let global = Scope::new();
        global.declare("x", Value::Number(1.0));
        let inner = global.child().child();
        inner.assign("x", Value::Number(5.0));
        assert_eq!(global.get("x"), Some(Value::Number(5.0)));
        // Undeclared assignment lands on the global scope.
        inner.assign("fresh", Value::Bool(true));
        assert_eq!(global.get("fresh"), Some(Value::Bool(true)));
        assert_eq!(inner.local_count(), 0);
    }

    #[test]
    fn meter_counts_and_kill() {
        let m = ResourceMeter::new();
        m.add_steps(10);
        m.add_allocated(100);
        m.add_transferred(1000);
        assert_eq!(m.steps(), 10);
        assert_eq!(m.allocated(), 100);
        assert_eq!(m.transferred(), 1000);
        assert!(!m.is_killed());
        m.kill();
        assert!(m.is_killed());
        m.reset();
        assert!(!m.is_killed());
        assert_eq!(m.steps(), 0);
    }

    #[test]
    fn context_recycle_clears_globals_and_bumps_generation() {
        let ctx = Context::new();
        ctx.set_global("a", Value::Number(1.0));
        assert!(ctx.get_global("a").is_some());
        assert_eq!(ctx.generation(), 0);
        ctx.recycle();
        assert!(ctx.get_global("a").is_none());
        assert_eq!(ctx.generation(), 1);
    }

    #[test]
    fn pool_reuses_up_to_capacity() {
        let pool = ContextPool::new(1);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.created(), 2);
        pool.release(a);
        pool.release(b); // dropped, capacity 1
        assert_eq!(pool.idle(), 1);
        let _c = pool.acquire();
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.idle(), 0);
    }
}
