//! The NkScript bytecode instruction set and compiled-program containers.
//!
//! [`crate::compile()`] lowers the AST into a [`CompiledFunction`] per function
//! literal (plus one for the program's top level): a flat instruction stream
//! over a small constant pool, with local variables resolved to frame slots
//! whenever the function contains no nested function (so no closure can
//! observe its scope).  [`crate::vm::Vm`] executes the result on a value
//! stack while preserving the tree-walking interpreter's sandbox contract —
//! fuel per instruction, heap accounting, the asynchronous kill flag, and the
//! same [`crate::ScriptError`] surface.
//!
//! The ISA is deliberately plain: a Rust enum with small operands, matched in
//! a dispatch loop.  The speedup over the interpreter comes from doing name
//! resolution, constant interning, and control-flow layout once at compile
//! time instead of on every execution.

use crate::ast::{BinaryOp, FunctionLiteral};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A constant-pool entry.
#[derive(Debug, Clone)]
pub enum Const {
    /// A numeric literal.
    Num(f64),
    /// A string literal, property name, or identifier name (interned once at
    /// compile time; pushing it at runtime is a reference-count bump).
    Str(Arc<str>),
}

/// One bytecode instruction.
///
/// Stack effects are noted as `pops -> pushes`.  `u16` operands index the
/// owning function's constant pool ([`Op::Num`], [`Op::Str`], name-carrying
/// ops) or its slot frame; `u32` operands are absolute instruction indices
/// within the owning function's code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // ---- constants and simple literals ----
    /// Push numeric constant `k`. `0 -> 1`
    Num(u16),
    /// Push string constant `k`. `0 -> 1`
    Str(u16),
    /// Push `true`. `0 -> 1`
    True,
    /// Push `false`. `0 -> 1`
    False,
    /// Push `null`. `0 -> 1`
    Null,
    /// Push `undefined`. `0 -> 1`
    Undef,

    // ---- stack shuffling ----
    /// Discard the top of stack. `1 -> 0`
    Pop,
    /// Duplicate the top of stack. `1 -> 2`
    Dup,
    /// Swap the two topmost values. `2 -> 2`
    Swap,

    // ---- variables ----
    /// Push the value of frame slot `i`. `0 -> 1`
    LoadSlot(u16),
    /// Pop into frame slot `i`. `1 -> 0`
    StoreSlot(u16),
    /// Pop into frame slot `i` (declaration; identical effect to
    /// [`Op::StoreSlot`] but kept distinct for disassembly clarity). `1 -> 0`
    DeclSlot(u16),
    /// Look name `k` up through the frame's scope chain; reference error when
    /// absent. `0 -> 1`
    LoadName(u16),
    /// Like [`Op::LoadName`] but missing names yield `undefined` (compound
    /// assignment reads through `eval_target`). `0 -> 1`
    LoadNameSoft(u16),
    /// Pop and assign name `k` through the scope chain, declaring at the
    /// global root on miss (sloppy assignment). `1 -> 0`
    StoreName(u16),
    /// Pop and declare name `k` in the innermost scope. `1 -> 0`
    DeclName(u16),
    /// Push the `typeof` string for name `k` without throwing on a missing
    /// binding. `0 -> 1`
    TypeofName(u16),
    /// Enter a fresh child scope (dynamically scoped functions only).
    PushScope,
    /// Leave the innermost scope.
    PopScope,

    // ---- composite literals ----
    /// Pop `n` elements, push a new array of them, and account its
    /// allocation. `n -> 1`
    MakeArray(u16),
    /// Push a new empty object (not yet accounted). `0 -> 1`
    MakeObject,
    /// Pop a value and set it as property `k` of the object at the (new) top
    /// of stack, which stays. `2 -> 1`
    InitProp(u16),
    /// Charge the memory accounting for the value at the top of stack
    /// (object literals are accounted after their properties exist, matching
    /// the interpreter). `1 -> 1`
    AccountTop,
    /// Push a closure over function-table entry `f`, capturing the current
    /// scope. `0 -> 1`
    MakeClosure(u16),

    // ---- property access ----
    /// Pop an object, push its property `k`. `1 -> 1`
    GetProp(u16),
    /// Pop an object then a value, set property `k`, leaving the value.
    /// `2 -> 1`
    SetProp(u16),
    /// Pop an index then an object, push the indexed property. `2 -> 1`
    GetIndex,
    /// Pop an index, an object, then a value; set the property, leaving the
    /// value. `3 -> 1`
    SetIndex,
    /// Pop an object, delete property `k`, push `true`. `1 -> 1`
    DelProp(u16),
    /// Pop an index then an object, delete that property, push `true`.
    /// `2 -> 1`
    DelIndex,

    // ---- operators ----
    /// Pop right then left, push `left op right`. `2 -> 1`
    Bin(BinaryOp),
    /// Arithmetic negation. `1 -> 1`
    Neg,
    /// Numeric coercion (unary plus). `1 -> 1`
    Plus,
    /// Logical not. `1 -> 1`
    Not,
    /// Replace the top of stack with its `typeof` string. `1 -> 1`
    Typeof,
    /// Replace the top of stack with its numeric coercion. `1 -> 1`
    ToNumber,

    // ---- control flow ----
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy. `1 -> 0`
    JumpIfFalse(u32),
    /// Pop; jump when truthy. `1 -> 0`
    JumpIfTrue(u32),
    /// Enter a loop: records the unwind levels for `break` / `continue`.
    LoopEnter {
        /// Jump target for `break` (past the loop's cleanup).
        break_ip: u32,
        /// Jump target for `continue` (the condition / update / next-key).
        continue_ip: u32,
        /// The loop pushes a header scope (`for` init scope, `for-in` loop
        /// scope) that `continue` must keep but `break` must drop.
        keeps_header_scope: bool,
        /// The loop owns a live `for-in` iterator that `continue` keeps.
        keeps_iter: bool,
    },
    /// Leave a loop normally (pops the control entry).
    LoopExit,
    /// Unwind to the innermost loop's break target, routing through enclosing
    /// `finally` blocks; a type error outside any loop.
    Break,
    /// Unwind to the innermost loop's continue target, routing through
    /// enclosing `finally` blocks; a type error outside any loop.
    Continue,
    /// Pop a value and push a `for-in` iterator over its keys onto the
    /// frame's iterator stack. `1 -> 0`
    ForInInit,
    /// Advance the innermost iterator: push the next key as a string, or pop
    /// the iterator and jump when exhausted. `0 -> 1` (or jump)
    ForInNext(u32),

    // ---- calls ----
    /// Pop the callee then `argc` arguments; call with `this = undefined`.
    /// `argc + 1 -> 1`
    Call(u16),
    /// Pop the receiver then `argc` arguments; call method `name` with the
    /// receiver as `this`, falling back to built-in methods. `argc + 1 -> 1`
    CallMethod {
        /// Constant-pool index of the method name.
        name: u16,
        /// Number of arguments already on the stack.
        argc: u16,
    },
    /// Pop a computed method name, the receiver, then `argc` arguments.
    /// `argc + 2 -> 1`
    CallIndexMethod(u16),
    /// Pop the constructor then `argc` arguments; construct with the class
    /// tag `class` (resolved at compile time from the callee expression).
    /// `argc + 1 -> 1`
    New {
        /// Number of arguments already on the stack.
        argc: u16,
        /// Constant-pool index of the class tag.
        class: u16,
    },
    /// Pop the return value and unwind the frame, running enclosing
    /// `finally` blocks. `1 -> 0`
    Return,
    /// Pop a value and raise it as a thrown script error. `1 -> 0`
    Throw,

    // ---- try / catch / finally ----
    /// Enter a protected region, recording unwind levels.
    TryEnter {
        /// Catch handler entry, or [`NO_CATCH`] when the clause is absent.
        catch_ip: u32,
        /// Finally entry (always present; may be just [`Op::TryExit`]).
        finally_ip: u32,
        /// Instruction index of the region's [`Op::TryExit`].
        exit_ip: u32,
    },
    /// Normal completion of the body or catch clause: latch the pending
    /// outcome and fall into the finally code.
    TryEndBody,
    /// End of the finally code: pop the control entry and apply the pending
    /// outcome (value, error, return, break, or continue).
    TryExit,

    // ---- statement value tracking ----
    /// Pop the top of stack into the frame's last-value register. `1 -> 0`
    StoreLast,
    /// Reset the last-value register to `undefined`.
    SetLastUndef,
    /// Push the last-value register (program epilogue). `0 -> 1`
    LoadLast,
    /// Raise a type error whose message is string constant `k` (compile-time
    /// detected invalid assignment targets).
    Fail(u16),
}

/// Sentinel for [`Op::TryEnter::catch_ip`] when the `try` has no catch
/// clause.
pub const NO_CATCH: u32 = u32::MAX;

/// How a compiled function stores its local variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameMode {
    /// Every local binding is a numbered frame slot; the scope chain is only
    /// consulted for free names.  Chosen when the function contains no nested
    /// function, so no closure can capture its locals.
    Slotted {
        /// Total slots to allocate per frame.
        n_slots: u16,
    },
    /// Locals live in real [`crate::context::Scope`] chains so nested
    /// closures can capture them; also used for the program's top level,
    /// which runs directly against the context's globals.
    Scoped,
}

/// A function literal (or the program top level) lowered to bytecode.
#[derive(Debug)]
pub struct CompiledFunction {
    /// The source literal, kept for closure creation and identity; `None`
    /// for the program's top-level chunk.
    pub literal: Option<Arc<FunctionLiteral>>,
    /// The instruction stream.
    pub code: Vec<Op>,
    /// The constant pool.
    pub consts: Vec<Const>,
    /// Nested functions referenced by [`Op::MakeClosure`].
    pub funcs: Vec<Arc<CompiledFunction>>,
    /// Local-variable storage strategy.
    pub mode: FrameMode,
    /// Slot indices for the parameters (slotted mode only; empty otherwise).
    pub param_slots: Vec<u16>,
    /// Slot holding `this` in slotted mode.
    pub this_slot: u16,
    /// Slot holding `arguments` in slotted mode.
    pub arguments_slot: u16,
}

/// A whole program lowered to bytecode: the top-level chunk plus every
/// function literal it contains, compiled once and shared.
///
/// The per-literal index is keyed by the literal's allocation address; each
/// entry owns an `Arc` to its literal, so a keyed address can never be
/// recycled while its entry lives.  Function values created by the VM and
/// the tree-walking interpreter are the same [`crate::value::Closure`]s, so
/// either engine can call closures produced by the other; a literal the
/// compiler has not seen before (for example a handler compiled by a
/// different program) is lowered on demand and cached here.
pub struct CompiledProgram {
    /// The top-level chunk.
    pub main: Arc<CompiledFunction>,
    by_literal: RwLock<HashMap<usize, Arc<CompiledFunction>>>,
}

impl CompiledProgram {
    /// Assembles a program around its compiled top-level chunk, indexing
    /// every transitively nested function (used by the compiler).
    pub(crate) fn new(main: CompiledFunction) -> CompiledProgram {
        let program = CompiledProgram {
            main: Arc::new(main),
            by_literal: RwLock::new(HashMap::new()),
        };
        let main = program.main.clone();
        program.register_tree(&main);
        program
    }

    /// Indexes `root` and every function nested beneath it by literal
    /// address.
    fn register_tree(&self, root: &Arc<CompiledFunction>) {
        let mut index = self.by_literal.write();
        let mut pending = vec![root.clone()];
        while let Some(f) = pending.pop() {
            if let Some(lit) = &f.literal {
                index.insert(Arc::as_ptr(lit) as usize, f.clone());
            }
            pending.extend(f.funcs.iter().cloned());
        }
    }

    /// Returns the compiled form of `literal`, lowering and caching it if
    /// this program has not seen it before.
    pub fn function_for(&self, literal: &Arc<FunctionLiteral>) -> Arc<CompiledFunction> {
        let key = Arc::as_ptr(literal) as usize;
        if let Some(f) = self.by_literal.read().get(&key) {
            return f.clone();
        }
        let compiled = Arc::new(crate::compile::compile_function(literal.clone()));
        self.register_tree(&compiled);
        compiled
    }

    /// Total instructions across the top level and all compiled functions
    /// (diagnostics and tests).
    pub fn instruction_count(&self) -> usize {
        self.by_literal
            .read()
            .values()
            .map(|f| f.code.len())
            .sum::<usize>()
            + self.main.code.len()
    }
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("main_ops", &self.main.code.len())
            .field("functions", &self.by_literal.read().len())
            .finish()
    }
}
