//! Abstract syntax tree for NkScript.

use std::sync::Arc;

/// A complete program: a list of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;` (also covers `let` / `const`).
    VarDecl {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `function name(params) { body }`.
    FunctionDecl {
        /// Function name.
        name: String,
        /// The function literal.
        func: Arc<FunctionLiteral>,
    },
    /// An expression evaluated for its side effects (or its value, for the
    /// final statement of a program).
    Expr(Expr),
    /// `return expr;`
    Return(Option<Expr>),
    /// `if (cond) { then } else { otherwise }`
    If {
        /// Condition expression.
        cond: Expr,
        /// Statements of the then-branch.
        then_branch: Vec<Stmt>,
        /// Statements of the else-branch (empty when absent).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) { body }`
    For {
        /// Optional initializer statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (missing means `true`).
        cond: Option<Expr>,
        /// Optional update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (var key in object) { body }`
    ForIn {
        /// Loop variable name.
        var: String,
        /// Object whose keys are iterated.
        object: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `throw expr;`
    Throw(Expr),
    /// `try { body } catch (name) { handler } finally { cleanup }`
    Try {
        /// Guarded statements.
        body: Vec<Stmt>,
        /// Name binding the caught value (if a catch clause exists).
        catch_name: Option<String>,
        /// Catch-clause statements.
        catch_body: Vec<Stmt>,
        /// Finally-clause statements.
        finally_body: Vec<Stmt>,
    },
    /// A braced block introducing no new scope semantics beyond grouping.
    Block(Vec<Stmt>),
    /// An empty statement (`;`).
    Empty,
}

/// A function literal: shared between function declarations and expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionLiteral {
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body statements.
    pub body: Vec<Stmt>,
    /// Optional name (for declarations and named expressions).
    pub name: Option<String>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Variable reference.
    Ident(String),
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>),
    /// Object literal `{ a: 1, "b": 2 }`.
    Object(Vec<(String, Expr)>),
    /// Function expression.
    Function(Arc<FunctionLiteral>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical `&&` / `||` with short-circuit evaluation.
    Logical {
        /// True for `&&`, false for `||`.
        is_and: bool,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conditional `cond ? a : b`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// Assignment to an identifier or member target.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Compound operator (`None` for plain `=`).
        op: Option<BinaryOp>,
        /// Value being assigned.
        value: Box<Expr>,
    },
    /// Property access `obj.prop`.
    Member {
        /// Object expression.
        object: Box<Expr>,
        /// Property name.
        property: String,
    },
    /// Indexed access `obj[expr]`.
    Index {
        /// Object expression.
        object: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Call `callee(args)`.  When `callee` is a member expression, the object
    /// becomes `this` for the call (method-call semantics).
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Constructor call `new Callee(args)`.
    New {
        /// Constructor expression.
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `typeof expr`.
    Typeof(Box<Expr>),
    /// `delete obj.prop` / `delete obj[k]`.
    Delete(Box<Expr>),
    /// Pre/post increment/decrement.
    Update {
        /// Target expression (identifier or member).
        target: Box<Expr>,
        /// +1 or -1.
        delta: f64,
        /// True if the operator preceded the operand (`++x`).
        prefix: bool,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Unary plus (numeric coercion).
    Plus,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (loose equality)
    Eq,
    /// `!=`
    NotEq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `in` — property-existence test.
    In,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Expr::Binary {
            op: BinaryOp::Add,
            left: Box::new(Expr::Number(1.0)),
            right: Box::new(Expr::Number(2.0)),
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
