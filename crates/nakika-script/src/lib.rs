//! NkScript — the scripting engine at the heart of Na Kika.
//!
//! The Na Kika paper (Grimm et al., NSDI 2006) expresses all hosted services,
//! applications *and* security policies as JavaScript event handlers executed
//! by an embedded SpiderMonkey engine that the authors extended with byte
//! arrays.  This crate is the from-scratch Rust substitute: **NkScript**, a
//! JavaScript-subset language with C-like syntax, first-class functions and
//! closures, objects, arrays and byte arrays, executed by a sandboxed
//! tree-walking interpreter.
//!
//! The properties the paper's design and evaluation rely on are reproduced
//! here:
//!
//! * **Sandboxing** — a script can only reach the globals its host installs
//!   (the *vocabularies*); there is no ambient file, socket, or process
//!   access (paper §3.2).
//! * **Per-context heaps with accounting** — each [`context::Context`] tracks
//!   its approximate heap footprint and the interpreter charges *fuel* per
//!   evaluation step, which is how the resource manager observes CPU and
//!   memory consumption of hosted code.
//! * **Asynchronous termination** — a context carries a kill flag that the
//!   congestion controller can set; the interpreter aborts promptly, which is
//!   the analogue of Na Kika killing the Apache process of an offending
//!   pipeline.
//! * **Context reuse** — creating a scripting context is much more expensive
//!   than reusing one (the paper measures 1.5 ms vs 3 µs), so a
//!   [`context::ContextPool`] recycles contexts across event-handler
//!   executions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod context;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod stdlib;
pub mod value;
pub mod vm;

pub use bytecode::CompiledProgram;
pub use compile::compile;
pub use context::{Context, ContextPool, ResourceMeter};
pub use error::ScriptError;
pub use interp::Interpreter;
pub use parser::parse_program;
pub use value::{NativeFn, ObjectRef, Value};
pub use vm::Vm;

/// Convenience: parse and evaluate `source` in a fresh default context,
/// returning the value of the last expression statement.
///
/// Intended for tests and small tools; production callers should construct a
/// [`Context`], install vocabularies, and use [`Interpreter`] directly.
pub fn eval(source: &str) -> Result<Value, ScriptError> {
    let program = parser::parse_program(source)?;
    let ctx = Context::new();
    stdlib::install(&ctx);
    let mut interp = Interpreter::new(&ctx);
    interp.run(&program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_smoke_test() {
        assert_eq!(eval("1 + 2 * 3").unwrap(), Value::Number(7.0));
        assert_eq!(
            eval("var x = 'na'; x + 'kika'").unwrap(),
            Value::string("nakika")
        );
    }
}
