//! The NkScript standard library: built-in methods on primitives and the
//! small set of ambient globals every context receives.
//!
//! Na Kika's security argument is that the platform starts from a *bare*
//! scripting engine and selectively adds functionality (paper §3.2).  The
//! standard library therefore contains only pure computation — string, array,
//! byte-array and math helpers — and no I/O.  All I/O goes through
//! vocabularies installed by the host (see `nakika-core::vocab`).

use crate::context::Context;
use crate::error::ScriptError;
use crate::value::{number_to_string, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Installs the ambient globals into a context: `Math`, `ByteArray`,
/// `parseInt`, `parseFloat`, `isNaN`, `String`, `Number`, and `NaN`.
pub fn install(ctx: &Context) {
    ctx.set_global("NaN", Value::Number(f64::NAN));
    ctx.set_global("Infinity", Value::Number(f64::INFINITY));

    ctx.set_global(
        "parseInt",
        Value::native(|_, args| {
            let s = arg(args, 0).to_display_string();
            let radix = match arg(args, 1) {
                Value::Undefined => 10,
                v => v.to_number() as u32,
            };
            let t = s.trim();
            let (neg, t) = match t.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, t.strip_prefix('+').unwrap_or(t)),
            };
            let t = if radix == 16 {
                t.trim_start_matches("0x").trim_start_matches("0X")
            } else {
                t
            };
            let digits: String = t
                .chars()
                .take_while(|c| c.is_digit(radix.clamp(2, 36)))
                .collect();
            if digits.is_empty() {
                return Ok(Value::Number(f64::NAN));
            }
            let n = i64::from_str_radix(&digits, radix.clamp(2, 36)).unwrap_or(0) as f64;
            Ok(Value::Number(if neg { -n } else { n }))
        }),
    );

    ctx.set_global(
        "parseFloat",
        Value::native(|_, args| {
            let s = arg(args, 0).to_display_string();
            let t = s.trim();
            let end = t
                .char_indices()
                .take_while(|(i, c)| {
                    c.is_ascii_digit() || *c == '.' || ((*c == '-' || *c == '+') && *i == 0)
                })
                .map(|(i, c)| i + c.len_utf8())
                .last()
                .unwrap_or(0);
            Ok(Value::Number(t[..end].parse().unwrap_or(f64::NAN)))
        }),
    );

    ctx.set_global(
        "isNaN",
        Value::native(|_, args| Ok(Value::Bool(arg(args, 0).to_number().is_nan()))),
    );

    ctx.set_global(
        "String",
        Value::native(|_, args| Ok(Value::string(arg(args, 0).to_display_string()))),
    );

    ctx.set_global(
        "Number",
        Value::native(|_, args| Ok(Value::Number(arg(args, 0).to_number()))),
    );

    // `new ByteArray()` or `new ByteArray(initialString)`.  The constructor is
    // the byte-array extension the paper added to SpiderMonkey.
    ctx.set_global(
        "ByteArray",
        Value::native(|_, args| {
            let initial = match arg(args, 0) {
                Value::Undefined => Vec::new(),
                other => other.as_bytes_vec().unwrap_or_default(),
            };
            Ok(Value::new_bytes(initial))
        }),
    );

    // `new Object()` / `new Array()` for completeness.
    ctx.set_global("Object", Value::native(|_, _| Ok(Value::new_object())));
    ctx.set_global(
        "Array",
        Value::native(|_, args| Ok(Value::new_array(args.to_vec()))),
    );

    let math = Value::new_object();
    let unary = |f: fn(f64) -> f64| {
        Value::native(move |_, args| Ok(Value::Number(f(arg(args, 0).to_number()))))
    };
    math.set_property("floor", unary(f64::floor)).unwrap();
    math.set_property("ceil", unary(f64::ceil)).unwrap();
    math.set_property("round", unary(f64::round)).unwrap();
    math.set_property("abs", unary(f64::abs)).unwrap();
    math.set_property("sqrt", unary(f64::sqrt)).unwrap();
    math.set_property("log", unary(f64::ln)).unwrap();
    math.set_property("exp", unary(f64::exp)).unwrap();
    math.set_property(
        "pow",
        Value::native(|_, args| {
            Ok(Value::Number(
                arg(args, 0).to_number().powf(arg(args, 1).to_number()),
            ))
        }),
    )
    .unwrap();
    math.set_property(
        "min",
        Value::native(|_, args| {
            Ok(Value::Number(
                args.iter()
                    .map(|v| v.to_number())
                    .fold(f64::INFINITY, f64::min),
            ))
        }),
    )
    .unwrap();
    math.set_property(
        "max",
        Value::native(|_, args| {
            Ok(Value::Number(
                args.iter()
                    .map(|v| v.to_number())
                    .fold(f64::NEG_INFINITY, f64::max),
            ))
        }),
    )
    .unwrap();
    math.set_property(
        "random",
        Value::native(|_, _| Ok(Value::Number(next_pseudo_random()))),
    )
    .unwrap();
    math.set_property("PI", Value::Number(std::f64::consts::PI))
        .unwrap();
    ctx.set_global("Math", math);
}

/// Deterministic-seeded xorshift used for `Math.random()`; scripts inside the
/// sandbox have no access to entropy sources, and the simulator benefits from
/// reproducibility.
fn next_pseudo_random() -> f64 {
    static STATE: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);
    let mut x = STATE.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    STATE.store(x, Ordering::Relaxed);
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Undefined)
}

/// Dispatches built-in methods on primitive values (strings, numbers, arrays,
/// byte arrays).  Returns `None` when no such method exists, so the caller
/// can report a type error.
pub fn call_builtin_method(
    this: &Value,
    name: &str,
    args: &[Value],
) -> Option<Result<Value, ScriptError>> {
    match this {
        Value::Str(s) => string_method(s, name, args),
        Value::Array(_) => array_method(this, name, args),
        Value::Bytes(_) => bytes_method(this, name, args),
        Value::Number(n) => number_method(*n, name, args),
        Value::Object(_) => object_method(this, name, args),
        _ => None,
    }
}

fn string_method(s: &str, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
    let a0 = arg(args, 0);
    let result = match name {
        "indexOf" => Value::Number(
            s.find(&a0.to_display_string())
                .map(|i| s[..i].chars().count() as f64)
                .unwrap_or(-1.0),
        ),
        "lastIndexOf" => Value::Number(
            s.rfind(&a0.to_display_string())
                .map(|i| s[..i].chars().count() as f64)
                .unwrap_or(-1.0),
        ),
        "includes" | "contains" => Value::Bool(s.contains(&a0.to_display_string())),
        "startsWith" => Value::Bool(s.starts_with(&a0.to_display_string())),
        "endsWith" => Value::Bool(s.ends_with(&a0.to_display_string())),
        "charAt" => {
            let i = a0.to_number().max(0.0) as usize;
            Value::string(s.chars().nth(i).map(|c| c.to_string()).unwrap_or_default())
        }
        "charCodeAt" => {
            let i = a0.to_number().max(0.0) as usize;
            s.chars()
                .nth(i)
                .map(|c| Value::Number(c as u32 as f64))
                .unwrap_or(Value::Number(f64::NAN))
        }
        "substring" | "slice" | "substr" => {
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as f64;
            let mut start = a0.to_number();
            let mut end = match arg(args, 1) {
                Value::Undefined => len,
                v => v.to_number(),
            };
            if name == "substr" {
                end += start;
            }
            if name == "slice" {
                if start < 0.0 {
                    start += len;
                }
                if end < 0.0 {
                    end += len;
                }
            }
            let start = start.clamp(0.0, len) as usize;
            let end = end.clamp(0.0, len) as usize;
            let (start, end) = if start <= end {
                (start, end)
            } else {
                (end, start)
            };
            Value::string(chars[start..end].iter().collect::<String>())
        }
        "toUpperCase" => Value::string(s.to_uppercase()),
        "toLowerCase" => Value::string(s.to_lowercase()),
        "trim" => Value::string(s.trim()),
        "split" => {
            let sep = a0.to_display_string();
            let parts: Vec<Value> = if sep.is_empty() {
                s.chars().map(|c| Value::string(c.to_string())).collect()
            } else {
                s.split(&sep).map(Value::string).collect()
            };
            Value::new_array(parts)
        }
        "replace" => {
            let from = a0.to_display_string();
            let to = arg(args, 1).to_display_string();
            Value::string(s.replacen(&from, &to, 1))
        }
        "replaceAll" => {
            let from = a0.to_display_string();
            let to = arg(args, 1).to_display_string();
            Value::string(s.replace(&from, &to))
        }
        "concat" => {
            let mut out = s.to_string();
            for a in args {
                out.push_str(&a.to_display_string());
            }
            Value::string(out)
        }
        "toString" => Value::string(s),
        _ => return None,
    };
    Some(Ok(result))
}

fn number_method(n: f64, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
    let result = match name {
        "toString" => Value::string(number_to_string(n)),
        "toFixed" => {
            let digits = arg(args, 0).to_number().max(0.0) as usize;
            Value::string(format!("{n:.digits$}"))
        }
        _ => return None,
    };
    Some(Ok(result))
}

fn array_method(this: &Value, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
    let arr = this.as_array()?;
    let result = match name {
        "push" => {
            let mut a = arr.write();
            for v in args {
                a.push(v.clone());
            }
            Value::Number(a.len() as f64)
        }
        "pop" => {
            let mut a = arr.write();
            a.pop().unwrap_or(Value::Undefined)
        }
        "shift" => {
            let mut a = arr.write();
            if a.is_empty() {
                Value::Undefined
            } else {
                a.remove(0)
            }
        }
        "unshift" => {
            let mut a = arr.write();
            for (i, v) in args.iter().enumerate() {
                a.insert(i, v.clone());
            }
            Value::Number(a.len() as f64)
        }
        "join" => {
            let sep = match arg(args, 0) {
                Value::Undefined => ",".to_string(),
                v => v.to_display_string(),
            };
            let a = arr.read();
            Value::string(
                a.iter()
                    .map(|v| v.to_display_string())
                    .collect::<Vec<_>>()
                    .join(&sep),
            )
        }
        "indexOf" => {
            let target = arg(args, 0);
            let a = arr.read();
            Value::Number(
                a.iter()
                    .position(|v| v.strict_equals(&target))
                    .map(|i| i as f64)
                    .unwrap_or(-1.0),
            )
        }
        "includes" | "contains" => {
            let target = arg(args, 0);
            Value::Bool(
                arr.read()
                    .iter()
                    .any(|v| v.strict_equals(&target) || v.loose_equals(&target)),
            )
        }
        "slice" => {
            let a = arr.read();
            let len = a.len() as f64;
            let mut start = arg(args, 0).to_number();
            let mut end = match arg(args, 1) {
                Value::Undefined => len,
                v => v.to_number(),
            };
            if start < 0.0 {
                start += len;
            }
            if end < 0.0 {
                end += len;
            }
            let start = start.clamp(0.0, len) as usize;
            let end = end.clamp(start as f64, len) as usize;
            Value::new_array(a[start..end].to_vec())
        }
        "concat" => {
            let mut out = arr.read().clone();
            for v in args {
                match v {
                    Value::Array(other) => out.extend(other.read().iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            Value::new_array(out)
        }
        "reverse" => {
            arr.write().reverse();
            this.clone()
        }
        "sort" => {
            let mut a = arr.write();
            a.sort_by_key(|x| x.to_display_string());
            drop(a);
            this.clone()
        }
        "toString" => Value::string(this.to_display_string()),
        _ => return None,
    };
    Some(Ok(result))
}

fn bytes_method(this: &Value, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
    let bytes = match this {
        Value::Bytes(b) => b.clone(),
        _ => return None,
    };
    let result = match name {
        // `body.append(buff)` from the paper's Figure 2.
        "append" | "push" => match arg(args, 0).as_bytes_vec() {
            Ok(data) => {
                bytes.write().extend_from_slice(&data);
                Value::Number(bytes.read().len() as f64)
            }
            Err(e) => return Some(Err(e)),
        },
        "toString" | "decode" => Value::string(String::from_utf8_lossy(&bytes.read())),
        "slice" => {
            let b = bytes.read();
            let len = b.len() as f64;
            let mut start = arg(args, 0).to_number();
            let mut end = match arg(args, 1) {
                Value::Undefined => len,
                v => v.to_number(),
            };
            if start < 0.0 {
                start += len;
            }
            if end < 0.0 {
                end += len;
            }
            let start = start.clamp(0.0, len) as usize;
            let end = end.clamp(start as f64, len) as usize;
            Value::new_bytes(b[start..end].to_vec())
        }
        "indexOf" => {
            let needle = match arg(args, 0).as_bytes_vec() {
                Ok(n) => n,
                Err(e) => return Some(Err(e)),
            };
            let b = bytes.read();
            let pos = if needle.is_empty() || needle.len() > b.len() {
                None
            } else {
                b.windows(needle.len()).position(|w| w == &needle[..])
            };
            Value::Number(pos.map(|p| p as f64).unwrap_or(-1.0))
        }
        "clear" => {
            bytes.write().clear();
            Value::Undefined
        }
        _ => return None,
    };
    Some(Ok(result))
}

fn object_method(this: &Value, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
    let obj = this.as_object()?;
    let result = match name {
        "hasOwnProperty" => {
            let key = arg(args, 0).to_display_string();
            Value::Bool(obj.read().properties.contains_key(&key))
        }
        "keys" => Value::new_array(obj.read().properties.keys().map(Value::string).collect()),
        "toString" => Value::string(this.to_display_string()),
        _ => return None,
    };
    Some(Ok(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;

    #[test]
    fn string_methods() {
        assert_eq!(
            eval("'hello world'.indexOf('world')").unwrap(),
            Value::Number(6.0)
        );
        assert_eq!(eval("'hello'.indexOf('x')").unwrap(), Value::Number(-1.0));
        assert_eq!(
            eval("'Hello'.toUpperCase()").unwrap(),
            Value::string("HELLO")
        );
        assert_eq!(
            eval("'Hello'.toLowerCase()").unwrap(),
            Value::string("hello")
        );
        assert_eq!(eval("'  x  '.trim()").unwrap(), Value::string("x"));
        assert_eq!(
            eval("'abcdef'.substring(1, 3)").unwrap(),
            Value::string("bc")
        );
        assert_eq!(eval("'abcdef'.slice(-2)").unwrap(), Value::string("ef"));
        assert_eq!(
            eval("'a,b,c'.split(',').length").unwrap(),
            Value::Number(3.0)
        );
        assert_eq!(
            eval("'a-b-a'.replace('a', 'x')").unwrap(),
            Value::string("x-b-a")
        );
        assert_eq!(
            eval("'a-b-a'.replaceAll('a', 'x')").unwrap(),
            Value::string("x-b-x")
        );
        assert_eq!(
            eval("'image/png'.startsWith('image/')").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("'file.nkp'.endsWith('.nkp')").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval("'abc'.charAt(1)").unwrap(), Value::string("b"));
        assert_eq!(eval("'A'.charCodeAt(0)").unwrap(), Value::Number(65.0));
    }

    #[test]
    fn array_methods() {
        assert_eq!(
            eval("var a = [1]; a.push(2, 3); a.length").unwrap(),
            Value::Number(3.0)
        );
        assert_eq!(eval("[1,2,3].pop()").unwrap(), Value::Number(3.0));
        assert_eq!(eval("[1,2,3].shift()").unwrap(), Value::Number(1.0));
        assert_eq!(eval("['a','b'].join('-')").unwrap(), Value::string("a-b"));
        assert_eq!(eval("[1,2,3].indexOf(2)").unwrap(), Value::Number(1.0));
        assert_eq!(eval("[1,2,3].indexOf(9)").unwrap(), Value::Number(-1.0));
        assert_eq!(
            eval("[1,2,3,4].slice(1,3).join(',')").unwrap(),
            Value::string("2,3")
        );
        assert_eq!(
            eval("[1,2].concat([3,4]).length").unwrap(),
            Value::Number(4.0)
        );
        assert_eq!(
            eval("[3,1,2].sort().join('')").unwrap(),
            Value::string("123")
        );
        assert_eq!(
            eval("[1,2,3].reverse().join('')").unwrap(),
            Value::string("321")
        );
        assert_eq!(eval("[1,2].includes(2)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn byte_array_methods() {
        assert_eq!(
            eval("var b = new ByteArray(); b.append('ab'); b.append('cd'); b.toString()").unwrap(),
            Value::string("abcd")
        );
        assert_eq!(
            eval("var b = new ByteArray('hello'); b.slice(1, 3).toString()").unwrap(),
            Value::string("el")
        );
        assert_eq!(
            eval("new ByteArray('hello').indexOf('llo')").unwrap(),
            Value::Number(2.0)
        );
        assert_eq!(
            eval("new ByteArray('xyz').length").unwrap(),
            Value::Number(3.0)
        );
    }

    #[test]
    fn math_and_number_globals() {
        assert_eq!(eval("Math.floor(3.7)").unwrap(), Value::Number(3.0));
        assert_eq!(eval("Math.ceil(3.2)").unwrap(), Value::Number(4.0));
        assert_eq!(eval("Math.max(1, 5, 3)").unwrap(), Value::Number(5.0));
        assert_eq!(eval("Math.min(4, 2, 8)").unwrap(), Value::Number(2.0));
        assert_eq!(eval("Math.abs(-2)").unwrap(), Value::Number(2.0));
        assert_eq!(eval("Math.pow(2, 10)").unwrap(), Value::Number(1024.0));
        assert_eq!(eval("parseInt('42px')").unwrap(), Value::Number(42.0));
        assert_eq!(eval("parseInt('-17')").unwrap(), Value::Number(-17.0));
        assert_eq!(eval("parseInt('ff', 16)").unwrap(), Value::Number(255.0));
        assert_eq!(eval("parseFloat('3.5kg')").unwrap(), Value::Number(3.5));
        assert_eq!(eval("isNaN('abc')").unwrap(), Value::Bool(true));
        assert_eq!(eval("isNaN('12')").unwrap(), Value::Bool(false));
        assert_eq!(eval("String(42)").unwrap(), Value::string("42"));
        assert_eq!(eval("Number('3.5')").unwrap(), Value::Number(3.5));
        assert_eq!(eval("(3.14159).toFixed(2)").unwrap(), Value::string("3.14"));
        let v = eval("Math.random()").unwrap();
        let n = v.to_number();
        assert!((0.0..1.0).contains(&n));
    }

    #[test]
    fn object_helpers() {
        assert_eq!(
            eval("var o = {a: 1}; o.hasOwnProperty('a')").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("var o = {a: 1}; o.hasOwnProperty('b')").unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval("var o = {a: 1, b: 2}; o.keys().join(',')").unwrap(),
            Value::string("a,b")
        );
    }

    #[test]
    fn unknown_method_is_type_error() {
        assert!(eval("'abc'.frobnicate()").is_err());
        assert!(eval("[1].frobnicate()").is_err());
    }
}
