//! Static analysis over NkScript function literals.
//!
//! `nakika-core` uses these queries at policy-compile time to classify event
//! handlers: a handler that can never call a blocking vocabulary entry point
//! (`Fetch`, `FetchInto`, …) is safe to run inline on the reactor's event
//! loop, and a request handler that always produces a response lets a warm
//! pipeline skip origin dispatch entirely.  Both analyses are conservative —
//! over-approximating in the safe direction — because NkScript is dynamic:
//! mentioning a name anywhere (even without calling it) counts as a possible
//! use, and only syntactically unconditional response calls count as "always
//! responds".

use crate::ast::{Expr, FunctionLiteral, Stmt};

/// True when `func` (or any function nested inside it) mentions the
/// identifier `name` anywhere.  Conservative: a handler that never mentions
/// `Fetch` cannot call it (NkScript has no `eval` and no computed access to
/// the scope chain), but a mention in dead code still counts.
pub fn function_mentions_ident(func: &FunctionLiteral, name: &str) -> bool {
    stmts_mention(&func.body, name)
}

fn stmts_mention(body: &[Stmt], name: &str) -> bool {
    body.iter().any(|s| stmt_mentions(s, name))
}

fn stmt_mentions(s: &Stmt, name: &str) -> bool {
    match s {
        Stmt::VarDecl { init, .. } => init.as_ref().is_some_and(|e| expr_mentions(e, name)),
        Stmt::FunctionDecl { func, .. } => stmts_mention(&func.body, name),
        Stmt::Expr(e) | Stmt::Throw(e) => expr_mentions(e, name),
        Stmt::Return(e) => e.as_ref().is_some_and(|e| expr_mentions(e, name)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_mentions(cond, name)
                || stmts_mention(then_branch, name)
                || stmts_mention(else_branch, name)
        }
        Stmt::While { cond, body } => expr_mentions(cond, name) || stmts_mention(body, name),
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.as_deref().is_some_and(|s| stmt_mentions(s, name))
                || cond.as_ref().is_some_and(|e| expr_mentions(e, name))
                || update.as_ref().is_some_and(|e| expr_mentions(e, name))
                || stmts_mention(body, name)
        }
        Stmt::ForIn { object, body, .. } => {
            expr_mentions(object, name) || stmts_mention(body, name)
        }
        Stmt::Try {
            body,
            catch_body,
            finally_body,
            ..
        } => {
            stmts_mention(body, name)
                || stmts_mention(catch_body, name)
                || stmts_mention(finally_body, name)
        }
        Stmt::Block(body) => stmts_mention(body, name),
        Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

fn expr_mentions(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Ident(id) => id == name,
        Expr::Function(f) => stmts_mention(&f.body, name),
        Expr::Number(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Undefined => false,
        Expr::Array(items) => items.iter().any(|e| expr_mentions(e, name)),
        Expr::Object(props) => props.iter().any(|(_, v)| expr_mentions(v, name)),
        Expr::Unary { expr, .. }
        | Expr::Typeof(expr)
        | Expr::Delete(expr)
        | Expr::Update { target: expr, .. } => expr_mentions(expr, name),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            expr_mentions(left, name) || expr_mentions(right, name)
        }
        Expr::Conditional {
            cond,
            then,
            otherwise,
        } => {
            expr_mentions(cond, name) || expr_mentions(then, name) || expr_mentions(otherwise, name)
        }
        Expr::Assign { target, value, .. } => {
            expr_mentions(target, name) || expr_mentions(value, name)
        }
        Expr::Member { object, .. } => expr_mentions(object, name),
        Expr::Index { object, index } => expr_mentions(object, name) || expr_mentions(index, name),
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            expr_mentions(callee, name) || args.iter().any(|e| expr_mentions(e, name))
        }
    }
}

/// True when every execution of `func` syntactically reaches a
/// `<receiver>.<method>(...)` statement-level call before returning —
/// typically `Request.respond(...)` or `Request.terminate(...)`.  Only
/// unconditional top-level statements count; a call under an `if` or loop
/// does not qualify.  Used to recognise request handlers that always
/// generate a response locally, so a warm scripted pipeline never blocks on
/// the origin.
pub fn function_always_calls(func: &FunctionLiteral, receiver: &str, methods: &[&str]) -> bool {
    func.body.iter().any(|s| {
        let Stmt::Expr(e) = s else { return false };
        let Expr::Call { callee, .. } = e else {
            return false;
        };
        let Expr::Member { object, property } = callee.as_ref() else {
            return false;
        };
        matches!(object.as_ref(), Expr::Ident(id) if id == receiver)
            && methods.contains(&property.as_str())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use crate::parser::parse_program;
    use std::sync::Arc;

    fn first_function(src: &str) -> Arc<FunctionLiteral> {
        let Program { body } = parse_program(src).unwrap();
        for stmt in body {
            if let Stmt::FunctionDecl { func, .. } = stmt {
                return func;
            }
        }
        panic!("no function in {src:?}");
    }

    #[test]
    fn detects_fetch_mentions_at_any_depth() {
        let f = first_function(
            "function h(req) { if (req.miss) { var g = function() { return Fetch(req.url); }; return g(); } }",
        );
        assert!(function_mentions_ident(&f, "Fetch"));
        assert!(!function_mentions_ident(&f, "FetchInto"));

        let clean = first_function("function h(req) { Request.respond(200, 'ok'); }");
        assert!(!function_mentions_ident(&clean, "Fetch"));
    }

    #[test]
    fn always_calls_requires_unconditional_statement() {
        let yes = first_function("function h(req) { Request.respond(200, 'hi'); }");
        assert!(function_always_calls(
            &yes,
            "Request",
            &["respond", "terminate"]
        ));

        let conditional =
            first_function("function h(req) { if (req.bad) { Request.respond(500, 'no'); } }");
        assert!(!function_always_calls(
            &conditional,
            "Request",
            &["respond", "terminate"]
        ));

        let wrong_receiver = first_function("function h(req) { Response.respond(200, 'hi'); }");
        assert!(!function_always_calls(
            &wrong_receiver,
            "Request",
            &["respond", "terminate"]
        ));
    }
}
