//! The NkScript stack-based bytecode VM.
//!
//! Executes a [`CompiledProgram`] inside a [`Context`] under exactly the
//! sandbox contract the tree-walking interpreter enforces: fuel is charged
//! per instruction (with the same safepoint cadence for kill-flag polling),
//! heap allocations are accounted against the context's memory limit, script
//! call depth is bounded, and every failure surfaces as the same
//! [`ScriptError`].  The differential property tests in
//! `tests/differential.rs` pin the two engines to identical values and
//! errors.
//!
//! Fuel *counts* are the one sanctioned divergence: the interpreter charges
//! per AST node visited, the VM per instruction dispatched, so the same
//! program consumes similar but not identical fuel on the two engines.  Both
//! engines kill runaway scripts; callers must not depend on the exact step
//! at which a limit trips.
//!
//! Control flow (`break` / `continue` / `return` / thrown errors) unwinds
//! through a per-frame control stack seeded by `LoopEnter` / `TryEnter`
//! markers, which is how `finally` ordering, catch-scope creation, and the
//! "resource kills skip `catch` but still route through `finally`" rule are
//! reproduced without the interpreter's Rust-level recursion.

use crate::bytecode::{CompiledFunction, CompiledProgram, Const, FrameMode, Op, NO_CATCH};
use crate::context::{Context, Scope};
use crate::error::ScriptError;
use crate::interp::{binary_values, MAX_DEPTH, SAFEPOINT_INTERVAL};
use crate::stdlib;
use crate::value::{Closure, ObjectData, Value};
use parking_lot::RwLock;
use std::sync::Arc;

/// A live `for-in` iteration (keys snapshotted at loop entry, as the
/// interpreter does).
struct ForInIter {
    keys: Vec<String>,
    idx: usize,
}

/// The outcome a protected region carries into its `finally` code.
enum Pending {
    /// Normal completion; the value restores the frame's last-value register.
    Value(Value),
    /// An uncaught (or catch-re-raised) error.
    Err(ScriptError),
    /// A `return` passing through.
    Return(Value),
    /// A `break` passing through.
    Break,
    /// A `continue` passing through.
    Continue,
}

/// Which part of a `try` statement is currently executing.
#[derive(PartialEq, Eq, Clone, Copy)]
enum TryState {
    Body,
    Catch,
    Finally,
}

/// One entry on a frame's control stack.
enum Ctrl {
    Loop {
        break_ip: u32,
        continue_ip: u32,
        stack_h: usize,
        scope_d: usize,
        iter_d: usize,
        keeps_header_scope: bool,
        keeps_iter: bool,
    },
    Try {
        catch_ip: u32,
        finally_ip: u32,
        exit_ip: u32,
        stack_h: usize,
        scope_d: usize,
        iter_d: usize,
        state: TryState,
        pending: Pending,
    },
}

/// One function activation.
struct Frame {
    stack: Vec<Value>,
    slots: Vec<Value>,
    scopes: Vec<Scope>,
    iters: Vec<ForInIter>,
    ctrl: Vec<Ctrl>,
    last: Value,
    ip: usize,
}

impl Frame {
    fn new(n_slots: usize, scopes: Vec<Scope>) -> Frame {
        Frame {
            stack: Vec::with_capacity(8),
            slots: vec![Value::Undefined; n_slots],
            scopes,
            iters: Vec::new(),
            ctrl: Vec::new(),
            last: Value::Undefined,
            ip: 0,
        }
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("vm stack underflow")
    }

    fn scope(&self) -> &Scope {
        self.scopes.last().expect("vm scope stack empty")
    }

    fn truncate_to(&mut self, stack_h: usize, scope_d: usize, iter_d: usize) {
        self.stack.truncate(stack_h);
        self.scopes.truncate(scope_d);
        self.iters.truncate(iter_d);
    }
}

/// Raises `e` inside the frame: routes it to the innermost catch handler (or
/// through intervening `finally` blocks).  `Err` means the error escapes the
/// frame.  Resource kills (fuel, memory, termination) skip `catch` clauses
/// but still enter `finally` code, exactly as the interpreter behaves.
fn raise(frame: &mut Frame, mut e: ScriptError) -> Result<(), ScriptError> {
    loop {
        let Some(top) = frame.ctrl.last_mut() else {
            return Err(e);
        };
        match top {
            Ctrl::Loop { .. } => {
                frame.ctrl.pop();
            }
            Ctrl::Try {
                catch_ip,
                finally_ip,
                stack_h,
                scope_d,
                iter_d,
                state,
                pending,
                ..
            } => match *state {
                TryState::Body if *catch_ip != NO_CATCH && !e.is_resource_kill() => {
                    let (cip, sh, sd, id) = (*catch_ip, *stack_h, *scope_d, *iter_d);
                    *state = TryState::Catch;
                    let message = match &e {
                        ScriptError::Thrown(m) => m.clone(),
                        other => other.to_string(),
                    };
                    frame.truncate_to(sh, sd, id);
                    // The catch prologue declares its binding by popping this.
                    frame.stack.push(Value::string(message));
                    frame.ip = cip as usize;
                    return Ok(());
                }
                TryState::Body | TryState::Catch => {
                    let (fip, sh, sd, id) = (*finally_ip, *stack_h, *scope_d, *iter_d);
                    *pending = Pending::Err(e);
                    *state = TryState::Finally;
                    frame.truncate_to(sh, sd, id);
                    frame.ip = fip as usize;
                    return Ok(());
                }
                TryState::Finally => {
                    // An error inside finally code: the body/catch error (if
                    // one is pending) wins, matching the interpreter.
                    if let Pending::Err(e0) =
                        std::mem::replace(pending, Pending::Value(Value::Undefined))
                    {
                        e = e0;
                    }
                    frame.ctrl.pop();
                }
            },
        }
    }
}

/// Unwinds a `return` carrying `v`.  `Some` means the frame completes with
/// that value; `None` means an enclosing `finally` intercepted it (a
/// `return` written inside finally code itself is discarded, matching the
/// interpreter's treatment of the finally block's own flow).
fn unwind_return(frame: &mut Frame, v: Value) -> Option<Value> {
    loop {
        let Some(top) = frame.ctrl.last_mut() else {
            return Some(v);
        };
        match top {
            Ctrl::Loop { .. } => {
                frame.ctrl.pop();
            }
            Ctrl::Try {
                finally_ip,
                exit_ip,
                stack_h,
                scope_d,
                iter_d,
                state,
                pending,
                ..
            } => {
                if *state == TryState::Finally {
                    let (xip, sh, sd, id) = (*exit_ip, *stack_h, *scope_d, *iter_d);
                    frame.truncate_to(sh, sd, id);
                    frame.ip = xip as usize;
                } else {
                    let (fip, sh, sd, id) = (*finally_ip, *stack_h, *scope_d, *iter_d);
                    *pending = Pending::Return(v);
                    *state = TryState::Finally;
                    frame.truncate_to(sh, sd, id);
                    frame.ip = fip as usize;
                }
                return None;
            }
        }
    }
}

/// Unwinds a `break` (or `continue` when `is_continue`).  `Err` is the
/// outside-of-a-loop type error, which by construction can only occur with
/// an empty control stack and therefore escapes the frame uncaught — just as
/// the interpreter only materialises it at a function or program boundary.
fn unwind_break(frame: &mut Frame, is_continue: bool) -> Result<(), ScriptError> {
    let Some(top) = frame.ctrl.last_mut() else {
        return Err(ScriptError::Type(
            "break/continue outside of a loop".to_string(),
        ));
    };
    match top {
        Ctrl::Loop {
            break_ip,
            continue_ip,
            stack_h,
            scope_d,
            iter_d,
            keeps_header_scope,
            keeps_iter,
        } => {
            let (bip, cip, sh, sd, id) = (*break_ip, *continue_ip, *stack_h, *scope_d, *iter_d);
            let (kh, ki) = (*keeps_header_scope as usize, *keeps_iter as usize);
            if is_continue {
                frame.truncate_to(sh, sd + kh, id + ki);
                frame.ip = cip as usize;
            } else {
                frame.truncate_to(sh, sd, id);
                frame.ctrl.pop();
                frame.ip = bip as usize;
            }
        }
        Ctrl::Try {
            finally_ip,
            exit_ip,
            stack_h,
            scope_d,
            iter_d,
            state,
            pending,
            ..
        } => {
            if *state == TryState::Finally {
                // break/continue written inside finally code: discarded.
                let (xip, sh, sd, id) = (*exit_ip, *stack_h, *scope_d, *iter_d);
                frame.truncate_to(sh, sd, id);
                frame.ip = xip as usize;
            } else {
                let (fip, sh, sd, id) = (*finally_ip, *stack_h, *scope_d, *iter_d);
                *pending = if is_continue {
                    Pending::Continue
                } else {
                    Pending::Break
                };
                *state = TryState::Finally;
                frame.truncate_to(sh, sd, id);
                frame.ip = fip as usize;
            }
        }
    }
    Ok(())
}

fn cstr(func: &CompiledFunction, k: u16) -> &Arc<str> {
    match &func.consts[k as usize] {
        Const::Str(s) => s,
        other => unreachable!("string constant expected, found {other:?}"),
    }
}

fn cnum(func: &CompiledFunction, k: u16) -> f64 {
    match &func.consts[k as usize] {
        Const::Num(n) => *n,
        other => unreachable!("numeric constant expected, found {other:?}"),
    }
}

fn forin_keys(v: &Value) -> Vec<String> {
    match v {
        Value::Object(o) => o.read().properties.keys().cloned().collect(),
        Value::Array(a) => (0..a.read().len()).map(|i| i.to_string()).collect(),
        Value::Str(s) => (0..s.chars().count()).map(|i| i.to_string()).collect(),
        _ => Vec::new(),
    }
}

/// The bytecode VM.  Cheap to create; holds per-run accounting, mirroring
/// [`crate::Interpreter`]'s public surface.
pub struct Vm<'c> {
    ctx: &'c Context,
    fuel_used: u64,
    fuel_reported: u64,
    mem_used: usize,
    depth: usize,
}

impl<'c> Vm<'c> {
    /// Creates a VM bound to `ctx`.
    pub fn new(ctx: &'c Context) -> Vm<'c> {
        Vm {
            ctx,
            fuel_used: 0,
            fuel_reported: 0,
            mem_used: 0,
            depth: 0,
        }
    }

    /// Reports any not-yet-reported fuel to the context's meter.
    pub fn flush_meter(&mut self) {
        if self.fuel_used > self.fuel_reported {
            self.ctx
                .meter
                .add_steps(self.fuel_used - self.fuel_reported);
            self.fuel_reported = self.fuel_used;
        }
    }

    /// Fuel consumed so far in this run (instructions dispatched).
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Approximate bytes allocated so far in this run.
    pub fn memory_used(&self) -> usize {
        self.mem_used
    }

    /// Runs a compiled program's top level in the context's global scope,
    /// returning the value of the last expression statement (or
    /// `undefined`).
    pub fn run(&mut self, program: &CompiledProgram) -> Result<Value, ScriptError> {
        let mut frame = Frame::new(0, vec![self.ctx.globals.clone()]);
        let result = self.run_frame(program, &program.main, &mut frame);
        self.flush_meter();
        result
    }

    /// Calls a script or native function value with an explicit `this` and
    /// arguments — how the pipeline invokes `onRequest` / `onResponse`
    /// handlers on the VM engine.  Closures compiled by another program are
    /// lowered on demand and cached in `program`.
    pub fn call_function(
        &mut self,
        program: &CompiledProgram,
        callee: &Value,
        this: &Value,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        self.call_value(program, callee, this, args)
    }

    // ---- accounting (identical to the interpreter) -------------------------

    fn charge(&mut self, steps: u64) -> Result<(), ScriptError> {
        self.fuel_used += steps;
        if self.fuel_used - self.fuel_reported >= SAFEPOINT_INTERVAL {
            self.flush_meter();
            if self.ctx.meter.is_killed() {
                return Err(ScriptError::Terminated);
            }
        }
        if self.fuel_used > self.ctx.fuel_limit {
            return Err(ScriptError::FuelExhausted);
        }
        Ok(())
    }

    fn account_alloc(&mut self, value: &Value) -> Result<(), ScriptError> {
        let size = value.shallow_size();
        self.mem_used += size;
        self.ctx.meter.add_allocated(size as u64);
        if self.mem_used > self.ctx.memory_limit {
            return Err(ScriptError::MemoryExceeded {
                limit: self.ctx.memory_limit,
            });
        }
        Ok(())
    }

    // ---- calls -------------------------------------------------------------

    fn call_value(
        &mut self,
        program: &CompiledProgram,
        callee: &Value,
        this: &Value,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        self.charge(1)?;
        let result = match callee {
            Value::Native(f) => f(this, args),
            Value::Function(closure) => {
                if self.depth >= MAX_DEPTH {
                    return Err(ScriptError::StackOverflow);
                }
                self.depth += 1;
                let func = program.function_for(&closure.literal);
                let result = self.run_function(program, &func, closure, this, args);
                self.depth -= 1;
                result
            }
            other => Err(ScriptError::Type(format!(
                "{} is not a function",
                other.type_name()
            ))),
        };
        if self.depth == 0 {
            self.flush_meter();
        }
        result
    }

    fn run_function(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFunction,
        closure: &Closure,
        this: &Value,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let mut frame = match func.mode {
            FrameMode::Slotted { n_slots } => {
                let mut frame = Frame::new(n_slots as usize, vec![closure.scope.clone()]);
                for (i, slot) in func.param_slots.iter().enumerate() {
                    frame.slots[*slot as usize] = args.get(i).cloned().unwrap_or(Value::Undefined);
                }
                frame.slots[func.this_slot as usize] = this.clone();
                frame.slots[func.arguments_slot as usize] = Value::new_array(args.to_vec());
                frame
            }
            FrameMode::Scoped => {
                let scope = closure.scope.child();
                let literal = func
                    .literal
                    .as_ref()
                    .expect("scoped function has a literal");
                for (i, param) in literal.params.iter().enumerate() {
                    scope.declare(param, args.get(i).cloned().unwrap_or(Value::Undefined));
                }
                scope.declare("this", this.clone());
                scope.declare("arguments", Value::new_array(args.to_vec()));
                Frame::new(0, vec![scope])
            }
        };
        self.run_frame(program, func, &mut frame)
    }

    fn call_method(
        &mut self,
        program: &CompiledProgram,
        this: &Value,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let member = this.get_property(name);
        match member {
            Value::Function(_) | Value::Native(_) => self.call_value(program, &member, this, args),
            _ => {
                if let Some(result) = stdlib::call_builtin_method(this, name, args) {
                    let value = result?;
                    self.account_alloc(&value)?;
                    if let Value::Bytes(_) | Value::Str(_) = &value {
                        self.ctx.meter.add_transferred(0);
                    }
                    Ok(value)
                } else {
                    Err(ScriptError::Type(format!(
                        "{}.{name} is not a function",
                        this.type_name()
                    )))
                }
            }
        }
    }

    fn construct(
        &mut self,
        program: &CompiledProgram,
        ctor: &Value,
        class: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        match ctor {
            Value::Native(f) => {
                let this = Value::Object(Arc::new(RwLock::new(ObjectData::with_class(class))));
                self.account_alloc(&this)?;
                let result = f(&this, args)?;
                Ok(match result {
                    Value::Undefined => this,
                    other => other,
                })
            }
            Value::Function(_) => {
                let this = Value::Object(Arc::new(RwLock::new(ObjectData::with_class(class))));
                self.account_alloc(&this)?;
                let result = self.call_value(program, ctor, &this, args)?;
                Ok(match result {
                    Value::Object(_) | Value::Array(_) | Value::Bytes(_) => result,
                    _ => this,
                })
            }
            other => Err(ScriptError::Type(format!(
                "{} is not a constructor",
                other.type_name()
            ))),
        }
    }

    // ---- the dispatch loop -------------------------------------------------

    fn run_frame(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFunction,
        frame: &mut Frame,
    ) -> Result<Value, ScriptError> {
        loop {
            let op = func.code[frame.ip];
            frame.ip += 1;
            let stepped = match self.charge(1) {
                Ok(()) => self.step(program, func, frame, op),
                Err(e) => Err(e),
            };
            match stepped {
                Ok(None) => {}
                Ok(Some(v)) => return Ok(v),
                Err(e) => raise(frame, e)?,
            }
        }
    }

    /// Executes one instruction.  `Ok(Some(v))` completes the frame;
    /// `Err(e)` feeds the frame's unwinder.
    fn step(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFunction,
        frame: &mut Frame,
        op: Op,
    ) -> Result<Option<Value>, ScriptError> {
        match op {
            // ---- constants and simple literals ----
            Op::Num(k) => frame.stack.push(Value::Number(cnum(func, k))),
            Op::Str(k) => frame.stack.push(Value::Str(cstr(func, k).clone())),
            Op::True => frame.stack.push(Value::Bool(true)),
            Op::False => frame.stack.push(Value::Bool(false)),
            Op::Null => frame.stack.push(Value::Null),
            Op::Undef => frame.stack.push(Value::Undefined),

            // ---- stack shuffling ----
            Op::Pop => {
                frame.pop();
            }
            Op::Dup => {
                let v = frame.stack.last().expect("vm stack underflow").clone();
                frame.stack.push(v);
            }
            Op::Swap => {
                let n = frame.stack.len();
                frame.stack.swap(n - 1, n - 2);
            }

            // ---- variables ----
            Op::LoadSlot(i) => frame.stack.push(frame.slots[i as usize].clone()),
            Op::StoreSlot(i) | Op::DeclSlot(i) => {
                frame.slots[i as usize] = frame.pop();
            }
            Op::LoadName(k) => {
                let name = cstr(func, k);
                let v = frame
                    .scope()
                    .get(name)
                    .ok_or_else(|| ScriptError::Reference(name.to_string()))?;
                frame.stack.push(v);
            }
            Op::LoadNameSoft(k) => {
                let v = frame.scope().get(cstr(func, k)).unwrap_or(Value::Undefined);
                frame.stack.push(v);
            }
            Op::StoreName(k) => {
                let v = frame.pop();
                frame.scope().assign(cstr(func, k), v);
            }
            Op::DeclName(k) => {
                let v = frame.pop();
                frame.scope().declare(cstr(func, k), v);
            }
            Op::TypeofName(k) => {
                let name = frame
                    .scope()
                    .get(cstr(func, k))
                    .map(|v| v.type_name())
                    .unwrap_or("undefined");
                frame.stack.push(Value::string(name));
            }
            Op::PushScope => {
                let child = frame.scope().child();
                frame.scopes.push(child);
            }
            Op::PopScope => {
                frame.scopes.pop();
            }

            // ---- composite literals ----
            Op::MakeArray(n) => {
                let items = frame.stack.split_off(frame.stack.len() - n as usize);
                let v = Value::new_array(items);
                self.account_alloc(&v)?;
                frame.stack.push(v);
            }
            Op::MakeObject => frame.stack.push(Value::new_object()),
            Op::InitProp(k) => {
                let v = frame.pop();
                let obj = frame.stack.last().expect("vm stack underflow");
                obj.set_property(cstr(func, k), v)?;
            }
            Op::AccountTop => {
                let v = frame.stack.last().expect("vm stack underflow").clone();
                self.account_alloc(&v)?;
            }
            Op::MakeClosure(f) => {
                let compiled = &func.funcs[f as usize];
                let literal = compiled
                    .literal
                    .clone()
                    .expect("closure table entry has a literal");
                frame.stack.push(Value::Function(Arc::new(Closure {
                    literal,
                    scope: frame.scope().clone(),
                })));
            }

            // ---- property access ----
            Op::GetProp(k) => {
                let obj = frame.pop();
                frame.stack.push(obj.get_property(cstr(func, k)));
            }
            Op::SetProp(k) => {
                let obj = frame.pop();
                let v = frame.pop();
                obj.set_property(cstr(func, k), v.clone())?;
                frame.stack.push(v);
            }
            Op::GetIndex => {
                let idx = frame.pop();
                let obj = frame.pop();
                frame.stack.push(obj.get_property(&idx.to_display_string()));
            }
            Op::SetIndex => {
                let idx = frame.pop();
                let obj = frame.pop();
                let v = frame.pop();
                obj.set_property(&idx.to_display_string(), v.clone())?;
                frame.stack.push(v);
            }
            Op::DelProp(k) => {
                let obj = frame.pop();
                if let Value::Object(o) = obj {
                    o.write().properties.remove(cstr(func, k).as_ref());
                }
                frame.stack.push(Value::Bool(true));
            }
            Op::DelIndex => {
                let idx = frame.pop();
                let obj = frame.pop();
                if let Value::Object(o) = obj {
                    o.write().properties.remove(&idx.to_display_string());
                }
                frame.stack.push(Value::Bool(true));
            }

            // ---- operators ----
            Op::Bin(op) => {
                let r = frame.pop();
                let l = frame.pop();
                let (v, needs_account) = binary_values(op, l, r);
                if needs_account {
                    self.account_alloc(&v)?;
                }
                frame.stack.push(v);
            }
            Op::Neg => {
                let v = frame.pop();
                frame.stack.push(Value::Number(-v.to_number()));
            }
            Op::Plus | Op::ToNumber => {
                let v = frame.pop();
                frame.stack.push(Value::Number(v.to_number()));
            }
            Op::Not => {
                let v = frame.pop();
                frame.stack.push(Value::Bool(!v.truthy()));
            }
            Op::Typeof => {
                let v = frame.pop();
                frame.stack.push(Value::string(v.type_name()));
            }

            // ---- control flow ----
            Op::Jump(t) => frame.ip = t as usize,
            Op::JumpIfFalse(t) => {
                if !frame.pop().truthy() {
                    frame.ip = t as usize;
                }
            }
            Op::JumpIfTrue(t) => {
                if frame.pop().truthy() {
                    frame.ip = t as usize;
                }
            }
            Op::LoopEnter {
                break_ip,
                continue_ip,
                keeps_header_scope,
                keeps_iter,
            } => frame.ctrl.push(Ctrl::Loop {
                break_ip,
                continue_ip,
                stack_h: frame.stack.len(),
                scope_d: frame.scopes.len(),
                iter_d: frame.iters.len(),
                keeps_header_scope,
                keeps_iter,
            }),
            Op::LoopExit => {
                frame.ctrl.pop();
            }
            Op::Break => unwind_break(frame, false)?,
            Op::Continue => unwind_break(frame, true)?,
            Op::ForInInit => {
                let v = frame.pop();
                frame.iters.push(ForInIter {
                    keys: forin_keys(&v),
                    idx: 0,
                });
            }
            Op::ForInNext(t) => {
                let iter = frame.iters.last_mut().expect("vm iterator stack empty");
                if iter.idx < iter.keys.len() {
                    let key = Value::string(&iter.keys[iter.idx]);
                    iter.idx += 1;
                    frame.stack.push(key);
                } else {
                    frame.iters.pop();
                    frame.ip = t as usize;
                }
            }

            // ---- calls ----
            Op::Call(argc) => {
                let callee = frame.pop();
                let args = frame.stack.split_off(frame.stack.len() - argc as usize);
                let v = self.call_value(program, &callee, &Value::Undefined, &args)?;
                frame.stack.push(v);
            }
            Op::CallMethod { name, argc } => {
                let this = frame.pop();
                let args = frame.stack.split_off(frame.stack.len() - argc as usize);
                let v = self.call_method(program, &this, cstr(func, name), &args)?;
                frame.stack.push(v);
            }
            Op::CallIndexMethod(argc) => {
                let name = frame.pop().to_display_string();
                let this = frame.pop();
                let args = frame.stack.split_off(frame.stack.len() - argc as usize);
                let v = self.call_method(program, &this, &name, &args)?;
                frame.stack.push(v);
            }
            Op::New { argc, class } => {
                let ctor = frame.pop();
                let args = frame.stack.split_off(frame.stack.len() - argc as usize);
                let v = self.construct(program, &ctor, cstr(func, class), &args)?;
                frame.stack.push(v);
            }
            Op::Return => {
                let v = frame.pop();
                return Ok(unwind_return(frame, v));
            }
            Op::Throw => {
                let v = frame.pop();
                return Err(ScriptError::Thrown(v.to_display_string()));
            }

            // ---- try / catch / finally ----
            Op::TryEnter {
                catch_ip,
                finally_ip,
                exit_ip,
            } => frame.ctrl.push(Ctrl::Try {
                catch_ip,
                finally_ip,
                exit_ip,
                stack_h: frame.stack.len(),
                scope_d: frame.scopes.len(),
                iter_d: frame.iters.len(),
                state: TryState::Body,
                pending: Pending::Value(Value::Undefined),
            }),
            Op::TryEndBody => {
                let last = frame.last.clone();
                if let Some(Ctrl::Try {
                    finally_ip,
                    state,
                    pending,
                    ..
                }) = frame.ctrl.last_mut()
                {
                    *pending = Pending::Value(last);
                    *state = TryState::Finally;
                    frame.ip = *finally_ip as usize;
                } else {
                    unreachable!("TryEndBody without a try entry");
                }
            }
            Op::TryExit => {
                let Some(Ctrl::Try { pending, .. }) = frame.ctrl.pop() else {
                    unreachable!("TryExit without a try entry");
                };
                match pending {
                    Pending::Value(v) => frame.last = v,
                    Pending::Err(e) => return Err(e),
                    Pending::Return(v) => return Ok(unwind_return(frame, v)),
                    Pending::Break => unwind_break(frame, false)?,
                    Pending::Continue => unwind_break(frame, true)?,
                }
            }

            // ---- statement value tracking ----
            Op::StoreLast => frame.last = frame.pop(),
            Op::SetLastUndef => frame.last = Value::Undefined,
            Op::LoadLast => frame.stack.push(frame.last.clone()),
            Op::Fail(k) => {
                return Err(ScriptError::Type(cstr(func, k).to_string()));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse_program;

    fn run(src: &str) -> Result<Value, ScriptError> {
        let program = parse_program(src)?;
        let compiled = compile(&program);
        let ctx = Context::new();
        stdlib::install(&ctx);
        let mut vm = Vm::new(&ctx);
        vm.run(&compiled)
    }

    fn run_ok(src: &str) -> Value {
        match run(src) {
            Ok(v) => v,
            Err(e) => panic!("vm error on {src:?}: {e}"),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_ok("1 + 2 * 3"), Value::Number(7.0));
        assert_eq!(run_ok("(1 + 2) * 3"), Value::Number(9.0));
        assert_eq!(run_ok("10 % 3"), Value::Number(1.0));
        assert_eq!(run_ok("-3 + +2"), Value::Number(-1.0));
        assert_eq!(run_ok("'a' + 'b' + 1"), Value::string("ab1"));
    }

    #[test]
    fn variables_assignment_and_updates() {
        assert_eq!(run_ok("var x = 5; x += 3; x"), Value::Number(8.0));
        assert_eq!(run_ok("y = 7; y"), Value::Number(7.0)); // sloppy global
        assert_eq!(run_ok("var i = 5; i++; ++i; i"), Value::Number(7.0));
        assert_eq!(run_ok("var i = 5; i++"), Value::Number(5.0));
        assert_eq!(run_ok("var i = 5; ++i"), Value::Number(6.0));
        assert_eq!(run_ok("var o = {n: 1}; o.n++; o.n"), Value::Number(2.0));
        assert_eq!(run_ok("var a = [3]; a[0] += 4; a[0]"), Value::Number(7.0));
    }

    #[test]
    fn control_flow_loops() {
        assert_eq!(
            run_ok("var x = 0; if (1 < 2) { x = 10; } else { x = 20; } x"),
            Value::Number(10.0)
        );
        assert_eq!(
            run_ok("var s = 0; for (var i = 1; i <= 10; i++) { s += i; } s"),
            Value::Number(55.0)
        );
        assert_eq!(
            run_ok("var n = 0; while (n < 5) { n++; } n"),
            Value::Number(5.0)
        );
        assert_eq!(
            run_ok("var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) continue; if (i == 6) break; s += i; } s"),
            Value::Number(12.0)
        );
    }

    #[test]
    fn functions_closures_recursion() {
        assert_eq!(
            run_ok("function add(a, b) { return a + b; } add(2, 3)"),
            Value::Number(5.0)
        );
        assert_eq!(
            run_ok("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(12)"),
            Value::Number(144.0)
        );
        assert_eq!(
            run_ok(
                "function counter() { var n = 0; return function() { n++; return n; }; } \
                 var c = counter(); c(); c(); c()"
            ),
            Value::Number(3.0)
        );
        assert_eq!(
            run_ok("var v = f(); function f() { return 9; } v"),
            Value::Number(9.0)
        );
        assert_eq!(
            run("function f() { return f(); } f()"),
            Err(ScriptError::StackOverflow)
        );
    }

    #[test]
    fn objects_arrays_for_in() {
        assert_eq!(
            run_ok("var o = { a: 1, b: { c: 2 } }; o.a + o.b.c"),
            Value::Number(3.0)
        );
        assert_eq!(
            run_ok("var a = [1, 2, 3]; a[1] = 20; a[0] + a[1] + a.length"),
            Value::Number(24.0)
        );
        assert_eq!(
            run_ok("var o = {a: 1}; delete o.a; typeof o.a"),
            Value::string("undefined")
        );
        assert_eq!(
            run_ok(
                "var o = {a: 1, b: 2, c: 3}; var keys = ''; for (var k in o) { keys += k; } keys"
            ),
            Value::string("abc")
        );
        assert_eq!(
            run_ok("var a = [10, 20]; var s = 0; for (var i in a) { s += a[i]; } s"),
            Value::Number(30.0)
        );
    }

    #[test]
    fn methods_and_constructors() {
        assert_eq!(
            run_ok("var o = { n: 2, double: function() { return this.n * 2; } }; o.double()"),
            Value::Number(4.0)
        );
        assert_eq!(
            run_ok("function Point(x, y) { this.x = x; this.y = y; } var p = new Point(3, 4); p.x + p.y"),
            Value::Number(7.0)
        );
        assert_eq!(
            run_ok("var b = new ByteArray(); b.append('abc'); b.length"),
            Value::Number(3.0)
        );
    }

    #[test]
    fn logical_and_ternary_short_circuit() {
        assert_eq!(run_ok("1 > 2 ? 'a' : 'b'"), Value::string("b"));
        assert_eq!(run_ok("null || 'fallback'"), Value::string("fallback"));
        assert_eq!(run_ok("0 && explode()"), Value::Number(0.0));
        assert_eq!(run_ok("'x' || explode()"), Value::string("x"));
    }

    #[test]
    fn try_catch_finally() {
        assert_eq!(
            run_ok("var r = ''; try { throw 'boom'; } catch (e) { r = e; } r"),
            Value::string("boom")
        );
        assert_eq!(
            run_ok("var r = 0; try { r = 1; } finally { r = r + 10; } r"),
            Value::Number(11.0)
        );
        assert_eq!(
            run_ok("var r = ''; try { undeclaredFn(); } catch (e) { r = 'caught'; } r"),
            Value::string("caught")
        );
        assert!(run("throw 'unhandled'").is_err());
        // finally runs on the return path, and the body's return value wins
        // over the finally block's own flow.
        assert_eq!(
            run_ok(
                "var log = ''; \
                 function f() { try { return 'body'; } finally { log += 'fin'; } } \
                 f() + ':' + log"
            ),
            Value::string("body:fin")
        );
        // break inside try routes through finally before leaving the loop.
        assert_eq!(
            run_ok(
                "var log = ''; \
                 for (var i = 0; i < 3; i++) { try { if (i == 1) break; log += i; } finally { log += 'f'; } } \
                 log"
            ),
            Value::string("0ff")
        );
    }

    #[test]
    fn errors_match_interpreter_surface() {
        assert!(matches!(run("missing + 1"), Err(ScriptError::Reference(_))));
        assert!(matches!(run("5()"), Err(ScriptError::Type(_))));
        assert!(matches!(
            run("var o = {}; o.nothing()"),
            Err(ScriptError::Type(_))
        ));
    }

    #[test]
    fn assignment_as_condition_value() {
        assert_eq!(
            run_ok(
                "var i = 0; var buff; var count = 0; \
                 function read() { i++; if (i > 3) return null; return 'chunk'; } \
                 while (buff = read()) { count++; } count"
            ),
            Value::Number(3.0)
        );
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let program = parse_program("while (true) { }").unwrap();
        let compiled = compile(&program);
        let ctx = Context::with_limits(10_000, crate::context::DEFAULT_MEMORY_LIMIT);
        stdlib::install(&ctx);
        let mut vm = Vm::new(&ctx);
        assert_eq!(vm.run(&compiled), Err(ScriptError::FuelExhausted));
    }

    #[test]
    fn memory_limit_stops_string_doubling() {
        let program =
            parse_program("var s = 'xxxxxxxxxxxxxxxx'; while (true) { s = s + s; }").unwrap();
        let compiled = compile(&program);
        let ctx = Context::with_limits(u64::MAX / 2, 1024 * 1024);
        stdlib::install(&ctx);
        let mut vm = Vm::new(&ctx);
        assert!(matches!(
            vm.run(&compiled),
            Err(ScriptError::MemoryExceeded { .. }) | Err(ScriptError::FuelExhausted)
        ));
    }

    #[test]
    fn kill_flag_terminates_promptly() {
        let program = parse_program("while (true) { }").unwrap();
        let compiled = compile(&program);
        let ctx = Context::new();
        stdlib::install(&ctx);
        ctx.meter.kill();
        let mut vm = Vm::new(&ctx);
        assert_eq!(vm.run(&compiled), Err(ScriptError::Terminated));
    }

    #[test]
    fn resource_kill_skips_catch_but_runs_finally() {
        let program = parse_program(
            "var out = ''; \
             try { while (true) { } } catch (e) { out = 'caught'; } finally { out = out + 'fin'; } \
             out",
        )
        .unwrap();
        let compiled = compile(&program);
        let ctx = Context::with_limits(10_000, crate::context::DEFAULT_MEMORY_LIMIT);
        stdlib::install(&ctx);
        let mut vm = Vm::new(&ctx);
        // The fuel error must not be caught; it surfaces from the program.
        assert_eq!(vm.run(&compiled), Err(ScriptError::FuelExhausted));
    }

    #[test]
    fn call_function_entry_point_for_handlers() {
        let program = parse_program("onResponse = function() { return Count + 1; }").unwrap();
        let compiled = compile(&program);
        let ctx = Context::new();
        stdlib::install(&ctx);
        ctx.set_global("Count", Value::Number(41.0));
        let mut vm = Vm::new(&ctx);
        vm.run(&compiled).unwrap();
        let handler = ctx.get_global("onResponse").unwrap();
        let result = vm
            .call_function(&compiled, &handler, &Value::Undefined, &[])
            .unwrap();
        assert_eq!(result, Value::Number(42.0));
    }

    #[test]
    fn meter_observes_consumption() {
        let ctx = Context::new();
        stdlib::install(&ctx);
        let program =
            parse_program("var s = 0; for (var i = 0; i < 1000; i++) { s += i; } s").unwrap();
        let compiled = compile(&program);
        let mut vm = Vm::new(&ctx);
        vm.run(&compiled).unwrap();
        assert!(vm.fuel_used() > 1000);
        assert!(ctx.meter.steps() > 0);
    }

    #[test]
    fn slot_resolution_matches_dynamic_scoping() {
        // A use before its `var` in the same function resolves dynamically
        // (here: the sloppy global), not to the later slot.
        assert_eq!(
            run_ok(
                "function f() { x = 1; var x = 2; return x; } \
                 f(); typeof x + ':' + x"
            ),
            Value::string("number:1")
        );
        // Locals of a slotted function do not leak into the globals.
        assert_eq!(
            run_ok("function g(a) { var b = a * 2; return b; } g(4); typeof b"),
            Value::string("undefined")
        );
    }

    #[test]
    fn nested_loops_break_inner_only() {
        assert_eq!(
            run_ok(
                "var s = ''; \
                 for (var i = 0; i < 3; i++) { \
                   for (var j = 0; j < 3; j++) { if (j == 1) break; s += '' + i + j; } \
                 } s"
            ),
            Value::string("001020")
        );
    }

    #[test]
    fn program_value_is_last_expression() {
        assert_eq!(run_ok("1; 2; 3"), Value::Number(3.0));
        assert_eq!(run_ok("if (true) { 42 }"), Value::Number(42.0));
        assert_eq!(run_ok("var x = 1;"), Value::Undefined);
        assert_eq!(
            run_ok("try { 'tried' } finally { 'ignored' }"),
            Value::string("tried")
        );
    }
}
