//! Runtime values for NkScript.
//!
//! Objects, arrays and byte arrays are reference types shared through
//! `Arc<RwLock<..>>` so that host code (vocabularies) running on other threads
//! of a Na Kika node — for example the resource monitor — can observe them,
//! and so that the same `Value` type can cross thread boundaries when the
//! proxy processes connections concurrently.

use crate::error::ScriptError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ast::FunctionLiteral;
use crate::context::Scope;

/// A native (Rust) function exposed to scripts through a vocabulary.
///
/// Receives the `this` value and the call arguments.  Host functions are the
/// *only* way a script can affect the outside world (paper §3.2).
pub type NativeFn =
    Arc<dyn Fn(&Value, &[Value]) -> Result<Value, ScriptError> + Send + Sync + 'static>;

/// Shared, mutable object storage.
pub type ObjectRef = Arc<RwLock<ObjectData>>;

/// Shared, mutable array storage.
pub type ArrayRef = Arc<RwLock<Vec<Value>>>;

/// Shared, mutable byte-array storage (the paper's SpiderMonkey extension).
pub type BytesRef = Arc<RwLock<Vec<u8>>>;

/// Property map of a script object.
#[derive(Default)]
pub struct ObjectData {
    /// Named properties in sorted order (deterministic iteration).
    pub properties: BTreeMap<String, Value>,
    /// Class tag for objects created by `new Name()` — lets vocabularies such
    /// as `Policy` recognise their own instances.
    pub class: Option<String>,
}

impl ObjectData {
    /// Creates an empty object with the given class tag.
    pub fn with_class(class: &str) -> ObjectData {
        ObjectData {
            properties: BTreeMap::new(),
            class: Some(class.to_string()),
        }
    }
}

/// A user-defined script function together with its captured environment.
pub struct Closure {
    /// The function's parameters and body.
    pub literal: Arc<FunctionLiteral>,
    /// The lexical scope captured at creation time.
    pub scope: Scope,
}

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// IEEE-754 double, like JavaScript numbers.
    Number(f64),
    /// Immutable UTF-8 string.
    Str(Arc<str>),
    /// Mutable byte array.
    Bytes(BytesRef),
    /// Array of values.
    Array(ArrayRef),
    /// Object with named properties.
    Object(ObjectRef),
    /// User-defined function (closure).
    Function(Arc<Closure>),
    /// Native host function (vocabulary entry point).
    Native(NativeFn),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn string(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for a fresh empty object.
    pub fn new_object() -> Value {
        Value::Object(Arc::new(RwLock::new(ObjectData::default())))
    }

    /// Convenience constructor for a fresh array.
    pub fn new_array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(RwLock::new(items)))
    }

    /// Convenience constructor for a byte array.
    pub fn new_bytes(data: Vec<u8>) -> Value {
        Value::Bytes(Arc::new(RwLock::new(data)))
    }

    /// Wraps a Rust closure as a native function value.
    pub fn native<F>(f: F) -> Value
    where
        F: Fn(&Value, &[Value]) -> Result<Value, ScriptError> + Send + Sync + 'static,
    {
        Value::Native(Arc::new(f))
    }

    /// JavaScript-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.read().is_empty(),
            Value::Array(_) | Value::Object(_) | Value::Function(_) | Value::Native(_) => true,
        }
    }

    /// `typeof` result.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytearray",
            Value::Array(_) | Value::Object(_) => "object",
            Value::Function(_) | Value::Native(_) => "function",
        }
    }

    /// Numeric coercion (`Number(v)` semantics, simplified).
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Number(n) => *n,
            Value::Str(s) => {
                let t = s.trim();
                if t.is_empty() {
                    0.0
                } else {
                    t.parse().unwrap_or(f64::NAN)
                }
            }
            Value::Bytes(b) => b.read().len() as f64,
            Value::Array(a) => {
                let a = a.read();
                match a.len() {
                    0 => 0.0,
                    1 => a[0].to_number(),
                    _ => f64::NAN,
                }
            }
            Value::Object(_) | Value::Function(_) | Value::Native(_) => f64::NAN,
        }
    }

    /// String coercion (used by `+` concatenation and `String(v)`).
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Undefined => "undefined".to_string(),
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => number_to_string(*n),
            Value::Str(s) => s.to_string(),
            Value::Bytes(b) => String::from_utf8_lossy(&b.read()).into_owned(),
            Value::Array(a) => {
                let a = a.read();
                a.iter()
                    .map(|v| v.to_display_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
            Value::Object(o) => {
                let o = o.read();
                match &o.class {
                    Some(c) => format!("[object {c}]"),
                    None => "[object Object]".to_string(),
                }
            }
            Value::Function(_) | Value::Native(_) => "[function]".to_string(),
        }
    }

    /// Strict (`===`) equality.
    pub fn strict_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => Arc::ptr_eq(a, b),
            (Value::Array(a), Value::Array(b)) => Arc::ptr_eq(a, b),
            (Value::Object(a), Value::Object(b)) => Arc::ptr_eq(a, b),
            (Value::Function(a), Value::Function(b)) => Arc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Loose (`==`) equality: like strict equality plus number/string/bool
    /// coercions and `null == undefined`.
    pub fn loose_equals(&self, other: &Value) -> bool {
        if self.strict_equals(other) {
            return true;
        }
        match (self, other) {
            (Value::Null, Value::Undefined) | (Value::Undefined, Value::Null) => true,
            (Value::Number(_), Value::Str(_))
            | (Value::Str(_), Value::Number(_))
            | (Value::Bool(_), _)
            | (_, Value::Bool(_)) => {
                let a = self.to_number();
                let b = other.to_number();
                !a.is_nan() && !b.is_nan() && a == b
            }
            _ => false,
        }
    }

    /// Reads a property from an object/array/string/bytes value.  Returns
    /// `Undefined` for missing properties, mirroring JavaScript.
    pub fn get_property(&self, name: &str) -> Value {
        match self {
            Value::Object(o) => o
                .read()
                .properties
                .get(name)
                .cloned()
                .unwrap_or(Value::Undefined),
            Value::Array(a) => {
                if name == "length" {
                    Value::Number(a.read().len() as f64)
                } else if let Ok(idx) = name.parse::<usize>() {
                    a.read().get(idx).cloned().unwrap_or(Value::Undefined)
                } else {
                    Value::Undefined
                }
            }
            Value::Str(s) => {
                if name == "length" {
                    Value::Number(s.chars().count() as f64)
                } else if let Ok(idx) = name.parse::<usize>() {
                    s.chars()
                        .nth(idx)
                        .map(|c| Value::string(c.to_string()))
                        .unwrap_or(Value::Undefined)
                } else {
                    Value::Undefined
                }
            }
            Value::Bytes(b) => {
                if name == "length" {
                    Value::Number(b.read().len() as f64)
                } else if let Ok(idx) = name.parse::<usize>() {
                    b.read()
                        .get(idx)
                        .map(|byte| Value::Number(*byte as f64))
                        .unwrap_or(Value::Undefined)
                } else {
                    Value::Undefined
                }
            }
            _ => Value::Undefined,
        }
    }

    /// Writes a property on an object or an indexed slot on an array /
    /// byte array.  Errors for primitives.
    pub fn set_property(&self, name: &str, value: Value) -> Result<(), ScriptError> {
        match self {
            Value::Object(o) => {
                o.write().properties.insert(name.to_string(), value);
                Ok(())
            }
            Value::Array(a) => {
                if let Ok(idx) = name.parse::<usize>() {
                    let mut arr = a.write();
                    if idx >= arr.len() {
                        arr.resize(idx + 1, Value::Undefined);
                    }
                    arr[idx] = value;
                    Ok(())
                } else if name == "length" {
                    let len = value.to_number().max(0.0) as usize;
                    a.write().resize(len, Value::Undefined);
                    Ok(())
                } else {
                    Err(ScriptError::Type(format!(
                        "cannot set property '{name}' on array"
                    )))
                }
            }
            Value::Bytes(b) => {
                if let Ok(idx) = name.parse::<usize>() {
                    let mut bytes = b.write();
                    if idx >= bytes.len() {
                        bytes.resize(idx + 1, 0);
                    }
                    bytes[idx] = value.to_number() as u8;
                    Ok(())
                } else {
                    Err(ScriptError::Type(format!(
                        "cannot set property '{name}' on byte array"
                    )))
                }
            }
            other => Err(ScriptError::Type(format!(
                "cannot set property '{name}' on {}",
                other.type_name()
            ))),
        }
    }

    /// Approximate heap footprint contributed by creating this value
    /// (shallow), used for the sandbox's memory accounting.
    pub fn shallow_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len() + 24,
            Value::Bytes(b) => b.read().len() + 32,
            Value::Array(a) => a.read().len() * 16 + 32,
            Value::Object(o) => o.read().properties.len() * 48 + 48,
            _ => 16,
        }
    }

    /// Extracts the bytes of a `Bytes` or `Str` value; errors otherwise.
    pub fn as_bytes_vec(&self) -> Result<Vec<u8>, ScriptError> {
        match self {
            Value::Bytes(b) => Ok(b.read().clone()),
            Value::Str(s) => Ok(s.as_bytes().to_vec()),
            other => Err(ScriptError::Type(format!(
                "expected bytes, found {}",
                other.type_name()
            ))),
        }
    }

    /// Returns the object reference if this value is an object.
    pub fn as_object(&self) -> Option<ObjectRef> {
        match self {
            Value::Object(o) => Some(o.clone()),
            _ => None,
        }
    }

    /// Returns the array reference if this value is an array.
    pub fn as_array(&self) -> Option<ArrayRef> {
        match self {
            Value::Array(a) => Some(a.clone()),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strict_equals(other)
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Function(_) => write!(f, "[function]"),
            Value::Native(_) => write!(f, "[native]"),
            other => write!(f, "{}", other.to_display_string()),
        }
    }
}

/// Formats a number the way JavaScript's `toString` does for the common
/// cases: integers without a decimal point, NaN/Infinity spelled out.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Number(0.0).truthy());
        assert!(!Value::Number(f64::NAN).truthy());
        assert!(!Value::string("").truthy());
        assert!(Value::string("x").truthy());
        assert!(Value::Number(-1.0).truthy());
        assert!(Value::new_object().truthy());
        assert!(Value::new_array(vec![]).truthy());
        assert!(!Value::new_bytes(vec![]).truthy());
        assert!(Value::new_bytes(vec![1]).truthy());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::string("42").to_number(), 42.0);
        assert_eq!(Value::string("  3.5 ").to_number(), 3.5);
        assert!(Value::string("abc").to_number().is_nan());
        assert_eq!(Value::Null.to_number(), 0.0);
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Number(3.0).to_display_string(), "3");
        assert_eq!(Value::Number(3.25).to_display_string(), "3.25");
        assert_eq!(Value::Undefined.to_display_string(), "undefined");
    }

    #[test]
    fn equality_semantics() {
        assert!(Value::Number(1.0).loose_equals(&Value::string("1")));
        assert!(!Value::Number(1.0).strict_equals(&Value::string("1")));
        assert!(Value::Null.loose_equals(&Value::Undefined));
        assert!(!Value::Null.strict_equals(&Value::Undefined));
        assert!(Value::Bool(true).loose_equals(&Value::Number(1.0)));
        let a = Value::new_object();
        let b = a.clone();
        assert!(a.strict_equals(&b));
        assert!(!Value::new_object().strict_equals(&Value::new_object()));
    }

    #[test]
    fn property_access_on_builtin_shapes() {
        let arr = Value::new_array(vec![Value::Number(10.0), Value::Number(20.0)]);
        assert_eq!(arr.get_property("length"), Value::Number(2.0));
        assert_eq!(arr.get_property("1"), Value::Number(20.0));
        assert_eq!(arr.get_property("5"), Value::Undefined);
        arr.set_property("3", Value::Number(40.0)).unwrap();
        assert_eq!(arr.get_property("length"), Value::Number(4.0));

        let s = Value::string("hi");
        assert_eq!(s.get_property("length"), Value::Number(2.0));
        assert_eq!(s.get_property("0"), Value::string("h"));

        let b = Value::new_bytes(vec![7, 8]);
        assert_eq!(b.get_property("length"), Value::Number(2.0));
        assert_eq!(b.get_property("1"), Value::Number(8.0));
        b.set_property("2", Value::Number(9.0)).unwrap();
        assert_eq!(b.get_property("2"), Value::Number(9.0));

        assert!(Value::Number(1.0).set_property("x", Value::Null).is_err());
    }

    #[test]
    fn object_properties() {
        let o = Value::new_object();
        assert_eq!(o.get_property("missing"), Value::Undefined);
        o.set_property("x", Value::Number(1.0)).unwrap();
        assert_eq!(o.get_property("x"), Value::Number(1.0));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number_to_string(42.0), "42");
        assert_eq!(number_to_string(-3.0), "-3");
        assert_eq!(number_to_string(0.5), "0.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
    }

    #[test]
    fn shallow_sizes_scale_with_content() {
        let small = Value::string("a");
        let big = Value::string("a".repeat(1000));
        assert!(big.shallow_size() > small.shallow_size());
        assert!(Value::new_bytes(vec![0; 100]).shallow_size() >= 100);
    }

    #[test]
    fn bytes_extraction() {
        assert_eq!(Value::string("ab").as_bytes_vec().unwrap(), b"ab");
        assert_eq!(
            Value::new_bytes(vec![1, 2]).as_bytes_vec().unwrap(),
            vec![1, 2]
        );
        assert!(Value::Number(1.0).as_bytes_vec().is_err());
    }
}
