//! Recursive-descent parser producing the NkScript AST.

use crate::ast::*;
use crate::error::ScriptError;
use crate::lexer::{tokenize, Keyword, Punct, Token, TokenKind};
use std::sync::Arc;

/// Parses a complete program from source text.
pub fn parse_program(source: &str) -> Result<Program, ScriptError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !parser.at_eof() {
        body.push(parser.statement()?);
    }
    Ok(Program { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> ScriptError {
        ScriptError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ScriptError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}, found {:?}", p, self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ScriptError> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat_punct(Punct::Semicolon) {}
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        let stmt = match self.peek().clone() {
            TokenKind::Punct(Punct::Semicolon) => {
                self.advance();
                return Ok(Stmt::Empty);
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.advance();
                let body = self.block_body()?;
                return Ok(Stmt::Block(body));
            }
            TokenKind::Keyword(Keyword::Var) => {
                self.advance();
                self.var_decl()?
            }
            TokenKind::Keyword(Keyword::Function) => {
                // Could be a declaration (function name(...)) or the start of
                // an expression statement (rare); we treat a following
                // identifier as a declaration.
                if matches!(&self.tokens[self.pos + 1].kind, TokenKind::Ident(_)) {
                    self.advance();
                    let name = self.expect_ident()?;
                    let func = self.function_rest(Some(name.clone()))?;
                    Stmt::FunctionDecl {
                        name,
                        func: Arc::new(func),
                    }
                } else {
                    let expr = self.expression()?;
                    Stmt::Expr(expr)
                }
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.advance();
                if matches!(
                    self.peek(),
                    TokenKind::Punct(Punct::Semicolon)
                        | TokenKind::Punct(Punct::RBrace)
                        | TokenKind::Eof
                ) {
                    Stmt::Return(None)
                } else {
                    Stmt::Return(Some(self.expression()?))
                }
            }
            TokenKind::Keyword(Keyword::If) => {
                self.advance();
                return self.if_statement();
            }
            TokenKind::Keyword(Keyword::While) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.statement_as_block()?;
                return Ok(Stmt::While { cond, body });
            }
            TokenKind::Keyword(Keyword::For) => {
                self.advance();
                return self.for_statement();
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.advance();
                Stmt::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.advance();
                Stmt::Continue
            }
            TokenKind::Keyword(Keyword::Throw) => {
                self.advance();
                Stmt::Throw(self.expression()?)
            }
            TokenKind::Keyword(Keyword::Try) => {
                self.advance();
                return self.try_statement();
            }
            _ => Stmt::Expr(self.expression()?),
        };
        self.eat_semicolons();
        Ok(stmt)
    }

    fn var_decl(&mut self) -> Result<Stmt, ScriptError> {
        let name = self.expect_ident()?;
        let init = if self.eat_punct(Punct::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        // Multiple declarators (`var a = 1, b = 2`) desugar into a block.
        if self.eat_punct(Punct::Comma) {
            let mut decls = vec![Stmt::VarDecl { name, init }];
            loop {
                let name = self.expect_ident()?;
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.expression()?)
                } else {
                    None
                };
                decls.push(Stmt::VarDecl { name, init });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            return Ok(Stmt::Block(decls));
        }
        Ok(Stmt::VarDecl { name, init })
    }

    fn if_statement(&mut self) -> Result<Stmt, ScriptError> {
        self.expect_punct(Punct::LParen)?;
        let cond = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        let then_branch = self.statement_as_block()?;
        let else_branch = if self.eat_keyword(Keyword::Else) {
            self.statement_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn for_statement(&mut self) -> Result<Stmt, ScriptError> {
        self.expect_punct(Punct::LParen)?;
        // for-in form: `for (var k in obj)` or `for (k in obj)`
        let checkpoint = self.pos;
        let had_var = self.eat_keyword(Keyword::Var);
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens[self.pos + 1].kind == TokenKind::Keyword(Keyword::In) {
                self.advance(); // ident
                self.advance(); // in
                let object = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.statement_as_block()?;
                return Ok(Stmt::ForIn {
                    var: name,
                    object,
                    body,
                });
            }
        }
        self.pos = checkpoint;
        let _ = had_var;

        let init = if self.eat_punct(Punct::Semicolon) {
            None
        } else {
            let stmt = if self.eat_keyword(Keyword::Var) {
                self.var_decl()?
            } else {
                Stmt::Expr(self.expression()?)
            };
            self.expect_punct(Punct::Semicolon)?;
            Some(Box::new(stmt))
        };
        let cond = if self.peek() == &TokenKind::Punct(Punct::Semicolon) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect_punct(Punct::Semicolon)?;
        let update = if self.peek() == &TokenKind::Punct(Punct::RParen) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.statement_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            update,
            body,
        })
    }

    fn try_statement(&mut self) -> Result<Stmt, ScriptError> {
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        let mut catch_name = None;
        let mut catch_body = Vec::new();
        let mut finally_body = Vec::new();
        if self.eat_keyword(Keyword::Catch) {
            if self.eat_punct(Punct::LParen) {
                catch_name = Some(self.expect_ident()?);
                self.expect_punct(Punct::RParen)?;
            } else {
                catch_name = Some("$error".to_string());
            }
            self.expect_punct(Punct::LBrace)?;
            catch_body = self.block_body()?;
        }
        if self.eat_keyword(Keyword::Finally) {
            self.expect_punct(Punct::LBrace)?;
            finally_body = self.block_body()?;
        }
        if catch_name.is_none() && finally_body.is_empty() {
            return Err(self.error("try without catch or finally"));
        }
        Ok(Stmt::Try {
            body,
            catch_name,
            catch_body,
            finally_body,
        })
    }

    /// Parses `{ ... }` bodies or a single statement, always returning a list.
    fn statement_as_block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        if self.eat_punct(Punct::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    /// Parses statements until the closing `}` (which it consumes).
    fn block_body(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        let mut body = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                return Ok(body);
            }
            if self.at_eof() {
                return Err(self.error("unexpected end of input inside block"));
            }
            body.push(self.statement()?);
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ScriptError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ScriptError> {
        let target = self.conditional()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusAssign) => Some(Some(BinaryOp::Add)),
            TokenKind::Punct(Punct::MinusAssign) => Some(Some(BinaryOp::Sub)),
            TokenKind::Punct(Punct::StarAssign) => Some(Some(BinaryOp::Mul)),
            TokenKind::Punct(Punct::SlashAssign) => Some(Some(BinaryOp::Div)),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            if !matches!(
                target,
                Expr::Ident(_) | Expr::Member { .. } | Expr::Index { .. }
            ) {
                return Err(self.error("invalid assignment target"));
            }
            let value = self.assignment()?;
            return Ok(Expr::Assign {
                target: Box::new(target),
                op,
                value: Box::new(value),
            });
        }
        Ok(target)
    }

    fn conditional(&mut self) -> Result<Expr, ScriptError> {
        let cond = self.logical_or()?;
        if self.eat_punct(Punct::Question) {
            let then = self.assignment()?;
            self.expect_punct(Punct::Colon)?;
            let otherwise = self.assignment()?;
            return Ok(Expr::Conditional {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            });
        }
        Ok(cond)
    }

    fn logical_or(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.logical_and()?;
        while self.eat_punct(Punct::OrOr) {
            let right = self.logical_and()?;
            left = Expr::Logical {
                is_and: false,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn logical_and(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.equality()?;
        while self.eat_punct(Punct::AndAnd) {
            let right = self.equality()?;
            left = Expr::Logical {
                is_and: true,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Eq) => BinaryOp::Eq,
                TokenKind::Punct(Punct::NotEq) => BinaryOp::NotEq,
                TokenKind::Punct(Punct::StrictEq) => BinaryOp::StrictEq,
                TokenKind::Punct(Punct::StrictNotEq) => BinaryOp::StrictNotEq,
                _ => break,
            };
            self.advance();
            let right = self.relational()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn relational(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Lt) => BinaryOp::Lt,
                TokenKind::Punct(Punct::Gt) => BinaryOp::Gt,
                TokenKind::Punct(Punct::Le) => BinaryOp::Le,
                TokenKind::Punct(Punct::Ge) => BinaryOp::Ge,
                TokenKind::Keyword(Keyword::In) => BinaryOp::In,
                _ => break,
            };
            self.advance();
            let right = self.additive()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Plus) => BinaryOp::Add,
                TokenKind::Punct(Punct::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Star) => BinaryOp::Mul,
                TokenKind::Punct(Punct::Slash) => BinaryOp::Div,
                TokenKind::Punct(Punct::Percent) => BinaryOp::Rem,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.advance();
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct(Punct::Plus) => {
                self.advance();
                Ok(Expr::Unary {
                    op: UnaryOp::Plus,
                    expr: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct(Punct::Not) => {
                self.advance();
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(self.unary()?),
                })
            }
            TokenKind::Keyword(Keyword::Typeof) => {
                self.advance();
                Ok(Expr::Typeof(Box::new(self.unary()?)))
            }
            TokenKind::Keyword(Keyword::Delete) => {
                self.advance();
                Ok(Expr::Delete(Box::new(self.unary()?)))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.advance();
                let base = self.primary_for_new()?;
                let callee = self.member_chain(base)?;
                // The argument list is part of `new`.
                let args = if self.eat_punct(Punct::LParen) {
                    self.argument_list()?
                } else {
                    Vec::new()
                };
                let expr = Expr::New {
                    callee: Box::new(callee),
                    args,
                };
                self.call_tail(expr)
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.advance();
                let target = self.unary()?;
                Ok(Expr::Update {
                    target: Box::new(target),
                    delta: 1.0,
                    prefix: true,
                })
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.advance();
                let target = self.unary()?;
                Ok(Expr::Update {
                    target: Box::new(target),
                    delta: -1.0,
                    prefix: true,
                })
            }
            _ => self.postfix(),
        }
    }

    /// For `new Foo.Bar(...)`: parse the primary without consuming call
    /// parentheses (those belong to `new`).
    fn primary_for_new(&mut self) -> Result<Expr, ScriptError> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(Expr::Ident(name)),
            other => Err(self.error(format!(
                "expected constructor name after new, found {other:?}"
            ))),
        }
    }

    /// Member accesses only (no calls) — used when parsing `new` targets.
    fn member_chain(&mut self, mut expr: Expr) -> Result<Expr, ScriptError> {
        loop {
            if self.eat_punct(Punct::Dot) {
                let property = self.property_name()?;
                expr = Expr::Member {
                    object: Box::new(expr),
                    property,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let expr = self.primary()?;
        let expr = self.call_tail(expr)?;
        match self.peek() {
            TokenKind::Punct(Punct::PlusPlus) => {
                self.advance();
                Ok(Expr::Update {
                    target: Box::new(expr),
                    delta: 1.0,
                    prefix: false,
                })
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.advance();
                Ok(Expr::Update {
                    target: Box::new(expr),
                    delta: -1.0,
                    prefix: false,
                })
            }
            _ => Ok(expr),
        }
    }

    /// Parses chains of `.prop`, `[index]`, and `(args)` after a primary.
    fn call_tail(&mut self, mut expr: Expr) -> Result<Expr, ScriptError> {
        loop {
            if self.eat_punct(Punct::Dot) {
                let property = self.property_name()?;
                expr = Expr::Member {
                    object: Box::new(expr),
                    property,
                };
            } else if self.eat_punct(Punct::LBracket) {
                let index = self.expression()?;
                self.expect_punct(Punct::RBracket)?;
                expr = Expr::Index {
                    object: Box::new(expr),
                    index: Box::new(index),
                };
            } else if self.eat_punct(Punct::LParen) {
                let args = self.argument_list()?;
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    /// Property names after `.` may be identifiers or keywords (`obj.delete`).
    fn property_name(&mut self) -> Result<String, ScriptError> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(name),
            TokenKind::Keyword(k) => Ok(format!("{k:?}").to_ascii_lowercase()),
            other => Err(self.error(format!("expected property name, found {other:?}"))),
        }
    }

    fn argument_list(&mut self) -> Result<Vec<Expr>, ScriptError> {
        let mut args = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.assignment()?);
            if self.eat_punct(Punct::Comma) {
                continue;
            }
            self.expect_punct(Punct::RParen)?;
            return Ok(args);
        }
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        match self.advance() {
            TokenKind::Number(n) => Ok(Expr::Number(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Bool(false)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Null),
            TokenKind::Keyword(Keyword::Undefined) => Ok(Expr::Undefined),
            TokenKind::Ident(name) => Ok(Expr::Ident(name)),
            TokenKind::Keyword(Keyword::Function) => {
                let name = if let TokenKind::Ident(n) = self.peek().clone() {
                    self.advance();
                    Some(n)
                } else {
                    None
                };
                Ok(Expr::Function(Arc::new(self.function_rest(name)?)))
            }
            TokenKind::Punct(Punct::LParen) => {
                let expr = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(expr)
            }
            TokenKind::Punct(Punct::LBracket) => {
                let mut items = Vec::new();
                if self.eat_punct(Punct::RBracket) {
                    return Ok(Expr::Array(items));
                }
                loop {
                    items.push(self.assignment()?);
                    if self.eat_punct(Punct::Comma) {
                        if self.eat_punct(Punct::RBracket) {
                            return Ok(Expr::Array(items));
                        }
                        continue;
                    }
                    self.expect_punct(Punct::RBracket)?;
                    return Ok(Expr::Array(items));
                }
            }
            TokenKind::Punct(Punct::LBrace) => {
                let mut props = Vec::new();
                if self.eat_punct(Punct::RBrace) {
                    return Ok(Expr::Object(props));
                }
                loop {
                    let key = match self.advance() {
                        TokenKind::Ident(name) => name,
                        TokenKind::Str(s) => s,
                        TokenKind::Number(n) => crate::value::number_to_string(n),
                        TokenKind::Keyword(k) => format!("{k:?}").to_ascii_lowercase(),
                        other => {
                            return Err(
                                self.error(format!("expected property key, found {other:?}"))
                            )
                        }
                    };
                    self.expect_punct(Punct::Colon)?;
                    let value = self.assignment()?;
                    props.push((key, value));
                    if self.eat_punct(Punct::Comma) {
                        if self.eat_punct(Punct::RBrace) {
                            return Ok(Expr::Object(props));
                        }
                        continue;
                    }
                    self.expect_punct(Punct::RBrace)?;
                    return Ok(Expr::Object(props));
                }
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    /// Parses `(params) { body }` for function declarations and expressions.
    fn function_rest(&mut self, name: Option<String>) -> Result<FunctionLiteral, ScriptError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(Punct::Comma) {
                    continue;
                }
                self.expect_punct(Punct::RParen)?;
                break;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(FunctionLiteral { params, body, name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_and_expression() {
        let p = parse_program("var x = 1 + 2 * 3;").unwrap();
        assert_eq!(p.body.len(), 1);
        match &p.body[0] {
            Stmt::VarDecl { name, init } => {
                assert_eq!(name, "x");
                assert!(init.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_declarators() {
        let p = parse_program("var buff = null, body = 1;").unwrap();
        match &p.body[0] {
            Stmt::Block(decls) => assert_eq!(decls.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_declaration_and_expression() {
        let p =
            parse_program("function f(a, b) { return a + b; } var g = function() { };").unwrap();
        assert!(matches!(p.body[0], Stmt::FunctionDecl { .. }));
        match &p.body[1] {
            Stmt::VarDecl {
                init: Some(Expr::Function(f)),
                ..
            } => assert!(f.params.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_while_for() {
        let src = "if (a > 1) { b = 1; } else b = 2; while (x) { x = x - 1; } for (var i = 0; i < 10; i++) { s += i; }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.body.len(), 3);
        assert!(matches!(p.body[0], Stmt::If { .. }));
        assert!(matches!(p.body[1], Stmt::While { .. }));
        assert!(matches!(p.body[2], Stmt::For { .. }));
    }

    #[test]
    fn parses_for_in() {
        let p = parse_program("for (var k in obj) { count++; }").unwrap();
        assert!(matches!(&p.body[0], Stmt::ForIn { var, .. } if var == "k"));
        let p = parse_program("for (k in obj) { }").unwrap();
        assert!(matches!(&p.body[0], Stmt::ForIn { .. }));
    }

    #[test]
    fn parses_member_index_call_chains() {
        let p =
            parse_program("ImageTransformer.transform(body, type, 'jpeg', 176, dim.y/dim.x*208);")
                .unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Call { callee, args }) => {
                assert!(matches!(**callee, Expr::Member { .. }));
                assert_eq!(args.len(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse_program("a.b[c].d(1)(2);").unwrap();
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn parses_new_and_object_literals() {
        let p =
            parse_program("var p = new Policy(); p.url = ['a', 'b']; var o = { x: 1, 'y': 2 };")
                .unwrap();
        match &p.body[0] {
            Stmt::VarDecl {
                init: Some(Expr::New { args, .. }),
                ..
            } => assert!(args.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match &p.body[2] {
            Stmt::VarDecl {
                init: Some(Expr::Object(props)),
                ..
            } => assert_eq!(props.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_assignment_to_member() {
        let p = parse_program("onResponse = function() { Response.write(img); };").unwrap();
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn parses_conditional_and_logical() {
        let p = parse_program("var x = a > b ? a : b; var y = p && q || r;").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::VarDecl {
                init: Some(Expr::Conditional { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parses_try_catch_throw() {
        let p = parse_program(
            "try { risky(); } catch (e) { handle(e); } finally { done(); } throw 'x';",
        )
        .unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Try {
                catch_name: Some(_),
                ..
            }
        ));
        assert!(matches!(&p.body[1], Stmt::Throw(_)));
        assert!(parse_program("try { x(); }").is_err());
    }

    #[test]
    fn parses_update_expressions() {
        let p = parse_program("i++; --j; a.count++;").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Expr(Expr::Update { prefix: false, .. })
        ));
        assert!(matches!(
            &p.body[1],
            Stmt::Expr(Expr::Update { prefix: true, .. })
        ));
        assert!(matches!(&p.body[2], Stmt::Expr(Expr::Update { .. })));
    }

    #[test]
    fn parses_typeof_delete_in() {
        let p = parse_program("typeof x; delete o.k; 'k' in o;").unwrap();
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Typeof(_))));
        assert!(matches!(&p.body[1], Stmt::Expr(Expr::Delete(_))));
        assert!(matches!(
            &p.body[2],
            Stmt::Expr(Expr::Binary {
                op: BinaryOp::In,
                ..
            })
        ));
    }

    #[test]
    fn reports_syntax_errors_with_lines() {
        let err = parse_program("var ok = 1;\nvar x = ;").unwrap_err();
        match err {
            ScriptError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_program("function (a { }").is_err());
        assert!(parse_program("if (x { }").is_err());
        assert!(parse_program("{ unclosed").is_err());
        assert!(parse_program("1 + = 2").is_err());
    }

    #[test]
    fn parses_the_paper_figure_2_script() {
        let src = r#"
            onResponse = function() {
                var buff = null, body = new ByteArray();
                while (buff = Response.read()) {
                    body.append(buff);
                }
                var type = ImageTransformer.type(Response.contentType);
                var dim = ImageTransformer.dimensions(body, type);
                if (dim.x > 176 || dim.y > 208) {
                    var img;
                    if (dim.x/176 > dim.y/208) {
                        img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y/dim.x*208);
                    } else {
                        img = ImageTransformer.transform(body, type, "jpeg", dim.x/dim.y*176, 208);
                    }
                    Response.setHeader("Content-Type", "image/jpeg");
                    Response.setHeader("Content-Length", img.length);
                    Response.write(img);
                }
            }
        "#;
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn parses_the_paper_figure_3_and_5_policies() {
        let fig3 = r#"
            p = new Policy();
            p.url = [ "med.nyu.edu", "medschool.pitt.edu" ];
            p.client = [ "nyu.edu", "pitt.edu" ];
            p.onResponse = function() { return 1; }
            p.register();
        "#;
        assert!(parse_program(fig3).is_ok());
        let fig5 = r#"
            bmj = "bmj.bmjjournals.com/cgi/reprint";
            nejm = "content.nejm.org/cgi/reprint";
            p = new Policy();
            p.url = [ bmj, nejm ];
            p.onRequest = function() {
                if (! System.isLocal(Request.clientIP)) {
                    Request.terminate(401);
                }
            }
            p.register();
        "#;
        assert!(parse_program(fig5).is_ok());
    }
}
