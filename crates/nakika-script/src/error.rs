//! Script engine errors.

use std::fmt;

/// Errors raised while lexing, parsing, or executing NkScript code.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// A lexical error (unterminated string, bad character) at a line number.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A syntax error at a line number.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A runtime type error (e.g. calling a non-function).
    Type(String),
    /// A reference to an undeclared variable.
    Reference(String),
    /// A user-thrown error (`throw` statement) carrying the stringified value.
    Thrown(String),
    /// The script exhausted its CPU fuel budget.
    FuelExhausted,
    /// The script exceeded the sandbox's hard memory cap.
    MemoryExceeded {
        /// The cap, in bytes.
        limit: usize,
    },
    /// The pipeline owning this context was terminated by the resource
    /// manager (congestion control kill).
    Terminated,
    /// A vocabulary (native host function) reported an error.
    Host(String),
    /// Recursion exceeded the interpreter's stack depth limit.
    StackOverflow,
}

impl ScriptError {
    /// Short classification tag, useful for statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            ScriptError::Lex { .. } => "lex",
            ScriptError::Parse { .. } => "parse",
            ScriptError::Type(_) => "type",
            ScriptError::Reference(_) => "reference",
            ScriptError::Thrown(_) => "thrown",
            ScriptError::FuelExhausted => "fuel",
            ScriptError::MemoryExceeded { .. } => "memory",
            ScriptError::Terminated => "terminated",
            ScriptError::Host(_) => "host",
            ScriptError::StackOverflow => "stack",
        }
    }

    /// True if this error was caused by resource-control intervention rather
    /// than a bug in the script.
    pub fn is_resource_kill(&self) -> bool {
        matches!(
            self,
            ScriptError::FuelExhausted
                | ScriptError::MemoryExceeded { .. }
                | ScriptError::Terminated
        )
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            ScriptError::Parse { line, message } => {
                write!(f, "syntax error (line {line}): {message}")
            }
            ScriptError::Type(m) => write!(f, "type error: {m}"),
            ScriptError::Reference(m) => write!(f, "reference error: {m} is not defined"),
            ScriptError::Thrown(m) => write!(f, "uncaught exception: {m}"),
            ScriptError::FuelExhausted => write!(f, "script exceeded its CPU budget"),
            ScriptError::MemoryExceeded { limit } => {
                write!(f, "script exceeded the {limit}-byte memory cap")
            }
            ScriptError::Terminated => write!(f, "script terminated by resource manager"),
            ScriptError::Host(m) => write!(f, "vocabulary error: {m}"),
            ScriptError::StackOverflow => write!(f, "recursion too deep"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display() {
        assert_eq!(ScriptError::FuelExhausted.kind(), "fuel");
        assert_eq!(ScriptError::Type("x".into()).kind(), "type");
        assert!(ScriptError::Reference("foo".into())
            .to_string()
            .contains("foo"));
    }

    #[test]
    fn resource_kill_classification() {
        assert!(ScriptError::Terminated.is_resource_kill());
        assert!(ScriptError::MemoryExceeded { limit: 1 }.is_resource_kill());
        assert!(!ScriptError::Type("t".into()).is_resource_kill());
    }
}
