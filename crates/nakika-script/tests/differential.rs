//! Differential tests: the tree-walking interpreter and the bytecode VM must
//! agree on every observable outcome — values, thrown errors, and the
//! resource-kill error surface (fuel exhaustion, memory limits, the
//! asynchronous kill flag).
//!
//! Two layers:
//!
//! 1. A fixed corpus of semantically tricky programs (scope edge cases,
//!    `finally` flow precedence, double evaluation in compound member
//!    assignment, statement-value propagation) asserted to produce *equal*
//!    `Result<Value, ScriptError>` on both engines.
//! 2. A property test generating random well-formed NkScript programs from a
//!    seed and asserting outcome equality.  Generated programs funnel every
//!    observation into a string accumulator `out` so the compared value is a
//!    deep, order-sensitive trace of execution, not just a final scalar.
//!
//! Fuel *counts* are allowed to differ between the engines (per-AST-node vs
//! per-instruction), so the generated programs use bounded loops under a
//! generous fuel limit; resource-kill parity is asserted by dedicated tests
//! with deterministic workloads.

use nakika_script::context::DEFAULT_MEMORY_LIMIT;
use nakika_script::{compile, parse_program, stdlib, Context, Interpreter, ScriptError, Value, Vm};
use proptest::prelude::*;

fn run_interp(src: &str, fuel: u64, memory: usize) -> Result<Value, ScriptError> {
    let program = parse_program(src)?;
    let ctx = Context::with_limits(fuel, memory);
    stdlib::install(&ctx);
    let mut interp = Interpreter::new(&ctx);
    interp.run(&program)
}

fn run_vm(src: &str, fuel: u64, memory: usize) -> Result<Value, ScriptError> {
    let program = parse_program(src)?;
    let compiled = compile(&program);
    let ctx = Context::with_limits(fuel, memory);
    stdlib::install(&ctx);
    let mut vm = Vm::new(&ctx);
    vm.run(&compiled)
}

const GENEROUS_FUEL: u64 = 50_000_000;

/// Collapses a run outcome to a comparable form: type tag plus display
/// string for values (so `NaN == NaN` and structural equality applies to
/// identical programs rather than `Arc` identity), the error itself
/// otherwise.
fn outcome(r: Result<Value, ScriptError>) -> Result<(String, String), ScriptError> {
    r.map(|v| (v.type_name().to_string(), v.to_display_string()))
}

fn assert_engines_agree(src: &str) {
    let i = outcome(run_interp(src, GENEROUS_FUEL, DEFAULT_MEMORY_LIMIT));
    let v = outcome(run_vm(src, GENEROUS_FUEL, DEFAULT_MEMORY_LIMIT));
    assert_eq!(i, v, "engines disagree on {src:?}");
}

#[test]
fn fixed_corpus_agrees() {
    let corpus: &[&str] = &[
        // Statement values propagate through blocks, if, and try.
        "1; 2; 3",
        "if (true) { 42 }",
        "if (false) { 1 } else { }",
        "try { 'tried' } finally { 'ignored' }",
        "var x = 9;",
        "{ 5; }",
        // Scope discipline: use-before-var goes to the enclosing chain.
        "x = 1; var x; typeof x + ':' + x",
        "function f() { x = 1; var x = 2; return x; } f(); typeof x + ':' + x",
        "function g(a) { var b = a * 2; return b; } g(4); typeof b",
        "var s = ''; if (true) { var inner = 'i'; s += inner; } typeof inner + ':' + s",
        // Loops: break/continue, header scopes, per-iteration bodies.
        "var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) continue; if (i == 6) break; s += i; } s",
        "var s = ''; for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 1) break; s += '' + i + j; } } s",
        "var n = 0; while (n < 5) { n++; } n",
        "var t = ''; var k; for (k in {b: 1, a: 2, c: 3}) { t += k; } t + ':' + k",
        "var a = [10, 20, 30]; var s = 0; for (var i in a) { s += a[i]; } s",
        "var s = ''; for (var c in 'hey') { s += c; } s",
        "var s = ''; var i = 9; for (i = 0; i < 2; i++) { s += i; } s + ':' + i",
        // Functions, closures, hoisting, recursion, this/arguments.
        "var v = f(); function f() { return 9; } v",
        "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(11)",
        "function counter() { var n = 0; return function() { n++; return n; }; } var c = counter(); c(); c(); c()",
        "function f() { return arguments.length + ':' + arguments[1]; } f(7, 8, 9)",
        "var o = { n: 2, double: function() { return this.n * 2; } }; o.double()",
        "var fs = []; for (var i = 0; i < 3; i++) { fs.push(function() { return i; }); } '' + fs[0]() + fs[2]()",
        "function outer() { function inner() { return 'deep'; } return inner(); } outer()",
        // Constructors.
        "function Point(x, y) { this.x = x; this.y = y; } var p = new Point(3, 4); p.x + p.y",
        "function T() { return [1, 2]; } var t = new T(); t.length",
        "function U() { return 5; } var u = new U(); typeof u",
        // Compound/member assignment evaluates the object twice, value first.
        "var n = 0; var o = {v: 5}; function get() { n++; return o; } get().v += 2; '' + o.v + ':' + n",
        "var n = 0; var o = {v: 5}; function get() { n++; return o; } get().v++; '' + o.v + ':' + n",
        "var a = [3]; a[0] += 4; a[0]",
        "var i = 5; '' + i++ + ':' + i + ':' + ++i",
        "u++; typeof u",
        // Delete: non-member targets are not evaluated.
        "var o = {a: 1}; delete o.a; typeof o.a",
        "var o = {a: 1, b: 2}; var r = delete o['a']; '' + r + (('a' in o) ? 'y' : 'n')",
        "var n = 0; function s() { n++; return 1; } var r = delete 4; '' + r + n",
        // try/catch/finally flow precedence.
        "var r = ''; try { throw 'boom'; } catch (e) { r = e; } r",
        "var r = ''; try { undeclaredFn(); } catch (e) { r = 'caught:' + e.length; } r",
        "function f() { try { return 1; } finally { return 2; } } f()",
        "var log = ''; function f() { try { return 'body'; } finally { log += 'fin'; } } f() + ':' + log",
        "var log = ''; for (var i = 0; i < 3; i++) { try { if (i == 1) break; log += i; } finally { log += 'f'; } } log",
        "var log = ''; for (var i = 0; i < 3; i++) { try { if (i == 1) continue; log += i; } finally { log += 'f'; } } log",
        "try { 1 } finally { throw 'late'; }",
        "try { throw 'early'; } finally { throw 'late'; }",
        "var r = ''; try { try { throw 'x'; } finally { r += 'a'; } } catch (e) { r += 'b' + e; } r",
        "var r = ''; try { throw 'o'; } catch (e) { throw 'p'; } finally { r += 'f'; }",
        "throw 'unhandled'",
        "break",
        "function f() { continue; } f()",
        "try { break } catch (e) { 'nope' }",
        // Operators, coercions, short-circuits.
        "'a' + 'b' + 1",
        "1 + 2 + 'x'",
        "'10' * '4' - 2",
        "1 == '1'",
        "1 === '1'",
        "null == undefined",
        "null === undefined",
        "'b' in {a: 1, b: 2}",
        "'1' in [9, 8]",
        "'abc' < 'abd'",
        "0 || 'fallback'",
        "1 && 2",
        "0 && explode()",
        "'x' || explode()",
        "1 > 2 ? 'a' : 'b'",
        "typeof function() {}",
        "typeof neverDeclared",
        "!null",
        "-'3' + +'4'",
        // Errors.
        "missing + 1",
        "5()",
        "var o = {}; o.nothing()",
        "var a = [1]; a.frobnicate()",
        "new 7()",
        "3 = 4",
        "var q = 0; q += 1, 2",
        // Builtin methods through both call paths.
        "var b = new ByteArray(); b.append('abc'); b.length",
        "'hello'.toUpperCase() + '-' + 'WORLD'['toLowerCase']()",
        "[3, 1, 2].join('/')",
        "var a = [1, 2]; a.push(9); a[2] + ':' + a.length",
        // The Figure-2 idiom.
        "var i = 0; var buff; var count = 0; function read() { i++; if (i > 3) return null; return 'chunk'; } while (buff = read()) { count++; } count",
    ];
    for src in corpus {
        assert_engines_agree(src);
    }
}

#[test]
fn fuel_exhaustion_agrees() {
    for src in [
        "while (true) { }",
        "for (var i = 0; ; i++) { i; }",
        "function f() { try { while (true) { } } catch (e) { return 'caught'; } } f()",
    ] {
        let i = run_interp(src, 10_000, DEFAULT_MEMORY_LIMIT);
        let v = run_vm(src, 10_000, DEFAULT_MEMORY_LIMIT);
        assert_eq!(i, Err(ScriptError::FuelExhausted), "interp on {src:?}");
        assert_eq!(v, Err(ScriptError::FuelExhausted), "vm on {src:?}");
    }
}

#[test]
fn memory_limit_agrees() {
    let src = "var s = 'xxxxxxxxxxxxxxxx'; while (true) { s = s + s; }";
    for result in [
        run_interp(src, u64::MAX / 2, 1 << 20),
        run_vm(src, u64::MAX / 2, 1 << 20),
    ] {
        assert!(
            matches!(result, Err(ScriptError::MemoryExceeded { .. })),
            "expected memory kill, got {result:?}"
        );
    }
}

#[test]
fn kill_flag_abort_agrees() {
    let src = "var n = 0; while (true) { n++; }";
    let program = parse_program(src).unwrap();

    let ctx = Context::new();
    stdlib::install(&ctx);
    ctx.meter.kill();
    let mut interp = Interpreter::new(&ctx);
    assert_eq!(interp.run(&program), Err(ScriptError::Terminated));

    let compiled = compile(&program);
    let ctx = Context::new();
    stdlib::install(&ctx);
    ctx.meter.kill();
    let mut vm = Vm::new(&ctx);
    assert_eq!(vm.run(&compiled), Err(ScriptError::Terminated));
}

// ---------------------------------------------------------------------------
// Random program generation.
// ---------------------------------------------------------------------------

/// Splitmix64: deterministic program shapes from a proptest-supplied seed.
struct Gen {
    state: u64,
    /// Top-level variables guaranteed declared before the current point.
    vars: Vec<String>,
    /// Declared function names (arity 2).
    funcs: Vec<String>,
    counter: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            vars: Vec::new(),
            funcs: Vec::new(),
            counter: 0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// A side-effect-free expression over declared variables.
    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.below(3) == 0 {
            return match self.below(5) {
                0 => format!("{}", self.below(100)),
                1 => format!("'s{}'", self.below(10)),
                2 if !self.vars.is_empty() => {
                    let i = self.below(self.vars.len());
                    self.vars[i].clone()
                }
                3 => ["true", "false", "null", "undefined"][self.below(4)].to_string(),
                _ => format!("{}", self.below(10)),
            };
        }
        match self.below(7) {
            0 => {
                let (l, r) = (self.expr(depth - 1), self.expr(depth - 1));
                let op = ["+", "-", "*", "%"][self.below(4)];
                format!("({l} {op} {r})")
            }
            1 => {
                let (l, r) = (self.expr(depth - 1), self.expr(depth - 1));
                let op = ["<", ">", "<=", ">=", "==", "===", "!=", "!=="][self.below(8)];
                format!("({l} {op} {r})")
            }
            2 => {
                let (l, r) = (self.expr(depth - 1), self.expr(depth - 1));
                let op = ["&&", "||"][self.below(2)];
                format!("({l} {op} {r})")
            }
            3 => {
                let (c, t, e) = (
                    self.expr(depth - 1),
                    self.expr(depth - 1),
                    self.expr(depth - 1),
                );
                format!("({c} ? {t} : {e})")
            }
            4 => {
                let inner = self.expr(depth - 1);
                let op = ["-", "+", "!", "typeof "][self.below(4)];
                format!("({op}{inner})")
            }
            5 if !self.funcs.is_empty() => {
                let i = self.below(self.funcs.len());
                let f = self.funcs[i].clone();
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("{f}({a}, {b})")
            }
            _ => {
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("('' + {a} + {b})")
            }
        }
    }

    /// One statement appended to `src`; every observable effect is traced
    /// into `out`.
    fn stmt(&mut self, src: &mut String, depth: usize) {
        match self.below(if depth > 0 { 10 } else { 4 }) {
            0 => {
                let name = self.fresh("v");
                let init = self.expr(2);
                src.push_str(&format!("var {name} = {init};\n"));
                self.vars.push(name);
            }
            1 if !self.vars.is_empty() => {
                let i = self.below(self.vars.len());
                let target = self.vars[i].clone();
                let value = self.expr(2);
                let op = ["=", "+=", "-=", "*="][self.below(4)];
                src.push_str(&format!("{target} {op} {value};\n"));
            }
            2 if !self.vars.is_empty() => {
                let i = self.below(self.vars.len());
                let target = self.vars[i].clone();
                let form = ["++", "--"][self.below(2)];
                if self.below(2) == 0 {
                    src.push_str(&format!("{target}{form};\n"));
                } else {
                    src.push_str(&format!("{form}{target};\n"));
                }
            }
            3 => {
                let e = self.expr(3);
                src.push_str(&format!("out += '|' + {e};\n"));
            }
            4 => {
                let cond = self.expr(2);
                src.push_str(&format!("if ({cond}) {{\n"));
                self.stmt(src, depth - 1);
                if self.below(2) == 0 {
                    src.push_str("} else {\n");
                    self.stmt(src, depth - 1);
                }
                src.push_str("}\n");
            }
            5 => {
                let i = self.fresh("i");
                let bound = 2 + self.below(4);
                src.push_str(&format!(
                    "for (var {i} = 0; {i} < {bound}; {i}++) {{\nout += ':' + {i};\n"
                ));
                if self.below(3) == 0 {
                    src.push_str(&format!("if ({i} == 1) continue;\n"));
                }
                if self.below(3) == 0 {
                    src.push_str(&format!("if ({i} == 2) break;\n"));
                }
                self.stmt(src, depth - 1);
                src.push_str("}\n");
            }
            6 => {
                let w = self.fresh("w");
                let bound = 1 + self.below(4);
                src.push_str(&format!(
                    "var {w} = 0;\nwhile ({w} < {bound}) {{\n{w}++;\nout += '.' + {w};\n"
                ));
                self.stmt(src, depth - 1);
                src.push_str("}\n");
                self.vars.push(w);
            }
            7 => {
                let o = self.fresh("o");
                let (a, b) = (self.expr(2), self.expr(2));
                let k = self.fresh("k");
                src.push_str(&format!(
                    "var {o} = {{a: {a}, b: {b}}};\n\
                     {o}.a = {o}.a + 1;\n\
                     for (var {k} in {o}) {{ out += ';' + {k} + '=' + {o}[{k}]; }}\n"
                ));
            }
            8 => {
                let f = self.fresh("f");
                let ret = self.expr(2);
                let body_obs = self.expr(2);
                src.push_str(&format!(
                    "function {f}(a, b) {{\n\
                     var local = a + b;\n\
                     if (local > 10) {{ return 'big:' + local; }}\n\
                     out += '#' + {body_obs};\n\
                     return local + ({ret} === undefined ? 0 : 0);\n\
                     }}\n"
                ));
                self.funcs.push(f.clone());
                let (x, y) = (self.expr(1), self.expr(1));
                src.push_str(&format!("out += '!' + {f}({x}, {y});\n"));
            }
            _ => {
                let thrown = self.expr(1);
                let guard = self.expr(2);
                src.push_str(&format!(
                    "try {{\nif ({guard}) {{ throw {thrown}; }}\nout += 'T';\n"
                ));
                self.stmt(src, depth.saturating_sub(1));
                src.push_str("} catch (e) {\nout += 'C' + e;\n} finally {\nout += 'F';\n}\n");
            }
        }
    }

    fn program(&mut self, stmts: usize) -> String {
        let mut src = String::from("var out = '';\n");
        self.vars.push("out".to_string());
        for _ in 0..stmts {
            self.stmt(&mut src, 2);
        }
        src.push_str("out");
        src
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn generated_programs_agree(seed in any::<u64>()) {
        let src = Gen::new(seed).program(8);
        let i = outcome(run_interp(&src, GENEROUS_FUEL, DEFAULT_MEMORY_LIMIT));
        let v = outcome(run_vm(&src, GENEROUS_FUEL, DEFAULT_MEMORY_LIMIT));
        prop_assert_eq!(i, v, "engines disagree on generated program:\n{}", src);
    }

    #[test]
    fn generated_programs_agree_under_tight_fuel(seed in any::<u64>()) {
        // Fuel counts legitimately differ between engines; under a tight
        // limit the engines must either agree on the outcome or at least one
        // must die with a resource kill.
        let src = Gen::new(seed).program(6);
        let i = run_interp(&src, 2_000, DEFAULT_MEMORY_LIMIT);
        let v = run_vm(&src, 2_000, DEFAULT_MEMORY_LIMIT);
        let resource_kill = |r: &Result<Value, ScriptError>| {
            matches!(r, Err(e) if e.is_resource_kill())
        };
        if !resource_kill(&i) && !resource_kill(&v) {
            prop_assert_eq!(
                outcome(i),
                outcome(v),
                "engines disagree under tight fuel:\n{}",
                src
            );
        }
    }
}
