//! The transport-independent half of an HTTP/1.1 server connection.
//!
//! Both front-ends — the blocking thread-per-connection server and the
//! readiness [`reactor`](crate::ReactorServer) — speak the same protocol:
//! accumulate bytes, parse complete requests (including pipelined ones),
//! dispatch each through the [`HttpService`] stack with a freshly minted
//! [`RequestCtx`](nakika_core::service::RequestCtx), serialize the
//! responses, and honor keep-alive.  This module holds that logic as a
//! sans-IO state machine: [`HttpConn`] never touches a socket, it just
//! consumes input bytes and produces output bytes, so the two transports
//! differ only in *how* they move bytes — blocking reads on a dedicated
//! thread versus readiness-driven non-blocking reads on a shared reactor
//! thread.
//!
//! # Streaming output
//!
//! Since the v2 streaming redesign, a service may answer with a
//! [`Body::Stream`](nakika_http::Body) whose chunks are pulled from an
//! upstream source as they are relayed.  The engine therefore no longer
//! serializes whole responses: dispatched responses enter a FIFO, and the
//! engine *pumps* the response at the head of the queue — via the
//! incremental [`ResponseWriter`] — into its output buffer only while the
//! buffered backlog stays under a bounded window
//! ([`OUTPUT_WINDOW_BYTES`]).  Each flush of the socket makes room and
//! pulls the next chunk, so an 8 MiB relay holds at most one window of
//! bytes per connection, and on the reactor the pull rate is governed by
//! the client's write-readiness (natural backpressure).  A body stream
//! that fails mid-response cannot be turned into an error status (the head
//! is already on the wire); the engine aborts the connection so the
//! framing tells the client the message was truncated.
//!
//! # Offloading blocking work
//!
//! A blocking transport simply lets the engine run everything inline
//! ([`HttpConn::dispatch`]): a service call or a streamed-body pull that
//! blocks parks only its own thread.  An event-loop transport cannot
//! afford that, so the engine has a second driving mode
//! ([`HttpConn::offloading`]) in which it never performs a
//! potentially-blocking operation itself.  Instead, [`HttpConn::advance`]
//! runs as far as it can without blocking — parsing input, executing
//! service calls the stack classified
//! [`DispatchHint::Inline`](nakika_core::service::DispatchHint), pumping
//! already-available output — and hands back a unit of [`Work`] whenever
//! the next step might block:
//!
//! - [`Work::Call`] — the service call for a parsed request whose
//!   [`dispatch_hint`](HttpService::dispatch_hint) said `MayBlock` (a cold
//!   cache miss heading for the origin).  Until the matching
//!   [`Done::Call`] is fed back through [`HttpConn::complete`], the engine
//!   *parks its input side*: no further requests are parsed
//!   ([`HttpConn::wants_read`] turns false), which both preserves response
//!   order and backpressures a flooding client.
//! - [`Work::Pull`] — the next chunk of the active streamed response must
//!   be pulled from a source that may block (an origin socket,
//!   [`Body::may_block`](nakika_http::Body::may_block)).  The pull runs on
//!   a shared handle of the body; the result comes back as
//!   [`Done::Pull`].
//! - [`Work::Buffer`] — the rare HTTP/1.0 activation path: a response with
//!   an unknown-length streamed body headed for a 1.0 client must be
//!   buffered to learn its `Content-Length`, and that drain would block.
//!   The response waits un-activated until [`Done::Buffer`] arrives.
//!
//! The transport decides where the work runs: the reactor ships it to a
//! worker pool and re-arms the connection when the completion comes back
//! through its wakeup pipe; a test can run it on the spot.  At most one
//! `Call` and one `Pull`/`Buffer` are outstanding per connection — enough
//! to keep an earlier response streaming while a later request's origin
//! fetch is in flight, without reordering anything.

use crate::{CtxFactory, HttpService};
use nakika_core::service::DispatchHint;
use nakika_http::{
    parse_request, Body, HttpError, ParseOutcome, Response, ResponseWriter, StatusCode,
    STREAM_CHUNK_BYTES,
};
use std::collections::VecDeque;
use std::io;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Upper bound on serialized-but-unsent bytes held per connection.  One
/// window must fit at least one head plus one body chunk; the default (256
/// KiB) amortizes syscalls on small pipelined responses while keeping the
/// per-connection memory for large relays bounded.
pub const OUTPUT_WINDOW_BYTES: usize = 256 * 1024;

/// Headroom reserved inside the window for one more part (a body chunk
/// plus its framing, or a response head), so pumping never overshoots
/// [`OUTPUT_WINDOW_BYTES`].
const PART_HEADROOM_BYTES: usize = STREAM_CHUNK_BYTES + 4 * 1024;

/// Parts at or above this size are queued as shared [`bytes::Bytes`] tails
/// — written to the socket with `writev` by the reactor — instead of being
/// copied into the contiguous front buffer.  Small parts (response heads,
/// chunk framing lines) coalesce in the front buffer, where one copy is
/// cheaper than one extra iovec per part.
const TAIL_THRESHOLD_BYTES: usize = 1024;

/// Per-server high-water mark of serialized-but-unsent bytes across that
/// server's connections — the instrumentation behind the large-body
/// bounded-memory tests and `examples/streaming_brigade.rs`.  One gauge is
/// created per server (threaded or reactor) and shared with every
/// connection engine it spawns, so concurrently running servers (parallel
/// tests!) no longer contaminate each other's measurements; read it with
/// `HttpServer::peak_buffered_output` and friends.
#[derive(Debug, Default)]
pub(crate) struct OutputGauge {
    peak: AtomicUsize,
}

impl OutputGauge {
    fn note(&self, bytes: usize) {
        self.peak.fetch_max(bytes, Ordering::Relaxed);
    }

    pub(crate) fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A potentially-blocking unit of work the engine asks its transport to
/// run (see the module docs).  Produced by [`HttpConn::advance`]; the
/// matching [`Done`] goes back through [`HttpConn::complete`].
pub(crate) enum Work {
    /// Run the service call for a request classified `MayBlock`.  The
    /// request is boxed so the enum stays small next to the handle-sized
    /// variants (it crosses a thread hand-off anyway).
    Call {
        request: Box<nakika_http::Request>,
        ctx: nakika_core::service::RequestCtx,
    },
    /// Pull the next chunk of the active streamed response from `body` (a
    /// shared handle; the pull advances the one underlying source).
    Pull { body: Body },
    /// Fully buffer `body` (the HTTP/1.0 unknown-length activation path).
    Buffer { body: Body },
}

/// Runs one service call with panic containment: a panicking service
/// becomes an internal error (mapped to a 500) instead of unwinding the
/// calling thread — which on the reactor would take a whole event loop
/// (and every connection on it) down.
fn contained_call(
    service: &dyn HttpService,
    request: nakika_http::Request,
    ctx: &nakika_core::service::RequestCtx,
) -> Result<Response, nakika_core::service::NakikaError> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    catch_unwind(AssertUnwindSafe(|| service.call(request, ctx))).unwrap_or_else(|_| {
        Err(nakika_core::service::NakikaError::Internal(
            "service call panicked".to_string(),
        ))
    })
}

impl Work {
    /// Executes the work against `service`, producing the completion to
    /// feed back into [`HttpConn::complete`].  Panics in service/source
    /// code are contained: a panicking `Call` completes as an internal
    /// error (mapped to a 500), a panicking `Pull`/`Buffer` as a failure
    /// that aborts its connection, instead of killing the executing
    /// thread's loop.
    pub(crate) fn run(self, service: &dyn HttpService) -> Done {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        match self {
            Work::Call { request, ctx } => Done::Call(contained_call(service, *request, &ctx)),
            Work::Pull { mut body } => match catch_unwind(AssertUnwindSafe(|| body.read_chunk())) {
                Ok(read) => Done::Pull(read),
                Err(_) => Done::Pull(Err(io::Error::other("body source panicked"))),
            },
            Work::Buffer { mut body } => {
                // On a clean run the outcome lives in the stream's shared
                // state (`Buffered`, or `Failed` which the writer surfaces
                // as an abort).  A *panicking* source leaves that state
                // poisoned and unusable, so the panic is reported out of
                // band: the engine must abort without touching the body
                // again.
                let panicked = catch_unwind(AssertUnwindSafe(|| body.buffer())).is_err();
                Done::Buffer { panicked }
            }
        }
    }
}

/// The completion of one unit of [`Work`].
pub(crate) enum Done {
    /// Outcome of a [`Work::Call`].
    Call(Result<Response, nakika_core::service::NakikaError>),
    /// Outcome of a [`Work::Pull`].
    Pull(io::Result<Option<bytes::Bytes>>),
    /// A [`Work::Buffer`] finished.  When `panicked`, the body's shared
    /// state is poisoned and must never be touched again — the connection
    /// aborts instead of building a writer over it.
    Buffer { panicked: bool },
}

/// Sans-IO state machine for one server-side HTTP/1.1 connection.
pub(crate) struct HttpConn {
    peer: IpAddr,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    /// Large body parts queued after `outbuf`, kept as the `Bytes` the
    /// writer produced (zero-copy for `Content-Length` framing).  Wire
    /// order is always `outbuf[written..]` first, then the tail in order.
    tail: VecDeque<bytes::Bytes>,
    /// Total bytes across `tail` (kept in step for O(1) window checks).
    tail_len: usize,
    /// The response currently being emitted incrementally.
    active: Option<ResponseWriter>,
    /// Responses dispatched but not yet started (pipelining).
    queued: VecDeque<Response>,
    /// Protocol liveness: false once a request (`Connection: close`), a
    /// parse error, a stream abort, or exhausted-after-EOF input decided
    /// the connection must close.
    open: bool,
    /// The transport saw EOF: whatever is buffered is the last input.
    eof: bool,
    /// Offloading mode: never run a may-block operation inside the engine.
    offload: bool,
    /// Keep-alive decision of the offloaded in-flight service call, if one
    /// is outstanding (input parsing pauses while it is).
    pending_call: Option<bool>,
    /// A chunk pull for the active writer is running off-engine.
    pending_pull: bool,
    /// Response whose body is being buffered off-engine before activation
    /// (the HTTP/1.0 unknown-length path).
    pending_activation: Option<Response>,
    /// Complete requests parsed over the connection's lifetime.  Transports
    /// re-arm their per-connection deadline when this advances: buffered
    /// bytes that never become a request (slow-loris drip) do not count as
    /// progress, so the connection is evicted at the deadline.
    requests_parsed: u64,
    gauge: Arc<OutputGauge>,
}

impl HttpConn {
    /// A fresh inline-mode connection from `peer`: service calls and body
    /// pulls run inside the engine, blocking the calling thread (the
    /// threaded transport).
    pub fn new(peer: IpAddr, gauge: Arc<OutputGauge>) -> HttpConn {
        HttpConn {
            peer,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            tail: VecDeque::new(),
            tail_len: 0,
            active: None,
            queued: VecDeque::new(),
            open: true,
            eof: false,
            offload: false,
            pending_call: None,
            pending_pull: false,
            pending_activation: None,
            requests_parsed: 0,
            gauge,
        }
    }

    /// A fresh offloading-mode connection from `peer`: may-block
    /// operations are returned as [`Work`] instead of being executed (the
    /// reactor transport).
    pub fn offloading(peer: IpAddr, gauge: Arc<OutputGauge>) -> HttpConn {
        HttpConn {
            offload: true,
            ..HttpConn::new(peer, gauge)
        }
    }

    /// Appends bytes read off the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inbuf.extend_from_slice(bytes);
    }

    /// Inline-mode driver: parses and dispatches every complete request
    /// currently buffered, queueing their responses in order (pipelined
    /// requests are handled in one pass), then pumps response bytes into
    /// the output buffer up to the window.  Returns the connection's
    /// liveness: `false` means close once the pending output is flushed
    /// (the client asked for it, the input was malformed and a 400 was
    /// queued, or a relayed body stream failed mid-response).
    pub fn dispatch(&mut self, service: &dyn HttpService, ctx_factory: &CtxFactory) -> bool {
        debug_assert!(!self.offload, "dispatch() is the inline-mode driver");
        let work = self.advance(service, ctx_factory);
        debug_assert!(work.is_none(), "inline mode never offloads");
        self.open
    }

    /// Advances the engine as far as it can without risking a blocking
    /// operation: parses buffered input, runs inline-classified service
    /// calls, and pumps response bytes into the output window.  In
    /// offloading mode, returns the next unit of [`Work`] that must run
    /// elsewhere (marking it in-flight — call `advance` again to keep
    /// going; it returns `None` once nothing can proceed without a
    /// completion, more input, or a flush).  In inline mode it executes
    /// everything itself and always returns `None`.
    pub fn advance(&mut self, service: &dyn HttpService, ctx_factory: &CtxFactory) -> Option<Work> {
        if self.pending_call.is_none() {
            while self.open {
                let (mut request, consumed) = match parse_request(&self.inbuf) {
                    Ok(ParseOutcome::Complete { message, consumed }) => (message, consumed),
                    Ok(ParseOutcome::Partial) => {
                        if self.eof {
                            // No more bytes are coming; whatever is left
                            // can never become a request.
                            self.open = false;
                        }
                        break;
                    }
                    Err(error) => {
                        // The stream is unrecoverable past a parse error:
                        // answer with the most specific status (431 for
                        // header floods, 413 for oversized payloads, 400
                        // otherwise) and close without looking at later
                        // bytes.
                        let status = match error {
                            HttpError::HeadersTooLarge { .. } => {
                                StatusCode::REQUEST_HEADER_FIELDS_TOO_LARGE
                            }
                            HttpError::BodyTooLarge { .. } => StatusCode::PAYLOAD_TOO_LARGE,
                            _ => StatusCode::BAD_REQUEST,
                        };
                        self.queued.push_back(Response::error(status));
                        self.open = false;
                        break;
                    }
                };
                self.inbuf.drain(..consumed);
                self.requests_parsed += 1;
                request.client_ip = self.peer;
                let keep_alive = request.headers.keep_alive(request.version_11);
                let ctx = ctx_factory.make(self.peer);
                if self.offload
                    && matches!(
                        service.dispatch_hint(&request, &ctx),
                        DispatchHint::MayBlock
                    )
                {
                    // Park the input side until the call completes; the
                    // output side keeps pumping earlier responses.
                    self.pending_call = Some(keep_alive);
                    return Some(Work::Call {
                        request: Box::new(request),
                        ctx,
                    });
                }
                // The wire is where platform errors become status codes —
                // and panics become 500s rather than unwinding the thread
                // driving this engine (on the reactor that thread is an
                // event loop serving every other connection too).
                let response = match contained_call(service, request, &ctx) {
                    Ok(response) => response,
                    Err(error) => error.to_response(),
                };
                self.queued.push_back(response);
                if !keep_alive {
                    self.open = false;
                }
            }
        }
        self.pump()
    }

    /// Feeds the completion of an offloaded unit of [`Work`] back into the
    /// engine.  The caller should [`advance`](HttpConn::advance) (and
    /// flush) afterwards — a completed call unparks input parsing, a
    /// completed pull usually makes the next pull possible.
    pub fn complete(&mut self, done: Done) {
        match done {
            Done::Call(result) => {
                let keep_alive = self
                    .pending_call
                    .take()
                    .expect("call completion without a call in flight");
                let response = match result {
                    Ok(response) => response,
                    Err(error) => error.to_response(),
                };
                self.queued.push_back(response);
                if !keep_alive {
                    self.open = false;
                }
            }
            Done::Pull(read) => {
                debug_assert!(
                    self.pending_pull,
                    "pull completion without a pull in flight"
                );
                self.pending_pull = false;
                let Some(writer) = self.active.as_mut() else {
                    return;
                };
                match writer.accept_chunk(read) {
                    Ok(part) => {
                        let finished = writer.is_done();
                        if let Some(part) = part {
                            self.emit(part);
                        }
                        if finished {
                            self.active = None;
                        }
                    }
                    Err(_) => self.abort(),
                }
            }
            Done::Buffer { panicked } => {
                let response = self
                    .pending_activation
                    .take()
                    .expect("buffer completion without an activation in flight");
                if panicked {
                    // The body's mutex is poisoned; building a writer over
                    // it would re-panic on this thread.  Drop the response
                    // and abort the connection instead.
                    drop(response);
                    self.abort();
                    return;
                }
                // The body's shared state is now Buffered (or Failed, which
                // the writer surfaces as an abort on its first part).
                self.active = Some(ResponseWriter::new(response));
            }
        }
    }

    /// Moves response bytes into the output buffer until the window is full
    /// or there is nothing left to emit (or, in offloading mode, the next
    /// step might block — then that step is returned as [`Work`]).  Called
    /// from [`advance`](HttpConn::advance) and, in inline mode, after every
    /// flush, so a draining socket keeps pulling the next chunk of a
    /// streamed body — and nothing pulls chunks faster than the socket
    /// drains them.
    fn pump(&mut self) -> Option<Work> {
        if self.pending_pull || self.pending_activation.is_some() {
            // The active (or activating) response is waiting on a worker;
            // later responses must not jump the FIFO.
            return None;
        }
        loop {
            if self.pending_len() + PART_HEADROOM_BYTES > OUTPUT_WINDOW_BYTES {
                return None;
            }
            if self.active.is_none() {
                let response = self.queued.pop_front()?;
                // An unknown-length stream bound for a 1.0 client must be
                // buffered to learn its Content-Length — a blocking drain
                // the reactor hands to a worker.
                if self.offload
                    && !response.version_11
                    && response.body.size_hint().is_none()
                    && response.body.may_block()
                {
                    let body = response.body.clone();
                    self.pending_activation = Some(response);
                    return Some(Work::Buffer { body });
                }
                self.active = Some(ResponseWriter::new(response));
            }
            let writer = self.active.as_mut().expect("writer installed above");
            if self.offload && writer.next_pull_may_block() {
                self.pending_pull = true;
                let body = writer.body_handle();
                return Some(Work::Pull { body });
            }
            match writer.next_part() {
                Ok(Some(part)) => self.emit(part),
                Ok(None) => self.active = None,
                Err(_) => {
                    self.abort();
                    return None;
                }
            }
        }
    }

    /// Appends one wire part to the pending output.  Small parts coalesce
    /// into the contiguous front buffer (compacting its flushed prefix
    /// first, so a long-lived keep-alive connection does not accrete every
    /// response it ever sent); large parts keep their `Bytes` identity in
    /// the tail queue, where the reactor's `writev` sends them without
    /// another copy.  A part can only join the front buffer while the tail
    /// is empty — wire order is front-then-tail, always.
    fn emit(&mut self, part: bytes::Bytes) {
        if part.is_empty() {
            return;
        }
        if !self.tail.is_empty() || part.len() >= TAIL_THRESHOLD_BYTES {
            self.tail_len += part.len();
            self.tail.push_back(part);
        } else {
            if self.written > 0 {
                self.outbuf.drain(..self.written);
                self.written = 0;
            }
            self.outbuf.extend_from_slice(&part);
        }
        self.gauge.note(self.pending_len());
    }

    /// Mid-body failure after the head went out: the only honest signal
    /// left is truncation.  Abort the connection (later pipelined
    /// responses die with it).
    fn abort(&mut self) {
        self.active = None;
        self.queued.clear();
        self.open = false;
    }

    /// The first contiguous run of serialized bytes not yet written to the
    /// socket: the front buffer while it has unsent bytes, then each tail
    /// part in turn.  Looping `pending_output`/
    /// [`advance_output`](HttpConn::advance_output) sees every pending byte
    /// exactly once.  Both transports flush with
    /// [`output_slices`](HttpConn::output_slices) (one gathering write per
    /// pass — separate syscalls per run would emit separate TCP segments);
    /// this byte-wise view remains for the engine tests, which assert on
    /// output without a socket.
    #[cfg(test)]
    pub fn pending_output(&self) -> &[u8] {
        let front = &self.outbuf[self.written..];
        if !front.is_empty() {
            return front;
        }
        self.tail.front().map(|part| &part[..]).unwrap_or(&[])
    }

    /// Every pending output run, in wire order, as `writev` iovecs.
    pub fn output_slices(&self) -> Vec<io::IoSlice<'_>> {
        let mut slices = Vec::with_capacity(1 + self.tail.len());
        let front = &self.outbuf[self.written..];
        if !front.is_empty() {
            slices.push(io::IoSlice::new(front));
        }
        slices.extend(self.tail.iter().map(|part| io::IoSlice::new(part)));
        slices
    }

    fn pending_len(&self) -> usize {
        self.outbuf.len() - self.written + self.tail_len
    }

    /// True while serialized-but-unsent bytes are waiting for the socket —
    /// the condition under which a readiness transport registers write
    /// interest (unlike [`wants_write`](HttpConn::wants_write), this is
    /// false while the next bytes are still being produced by a worker).
    pub fn has_unsent_output(&self) -> bool {
        self.pending_len() > 0
    }

    /// Records that `n` bytes of pending output reached the socket.  In
    /// inline mode this also pulls more of the in-flight response into the
    /// freed window; in offloading mode the transport drives refills
    /// through [`advance`](HttpConn::advance) so pulls can be offloaded.
    pub fn advance_output(&mut self, n: usize) {
        let mut n = n;
        let take = n.min(self.outbuf.len() - self.written);
        self.written += take;
        n -= take;
        while n > 0 {
            let front = self
                .tail
                .front_mut()
                .expect("advanced past the pending output");
            if n >= front.len() {
                n -= front.len();
                self.tail_len -= front.len();
                self.tail.pop_front();
            } else {
                self.tail_len -= n;
                *front = front.slice(n..);
                n = 0;
            }
        }
        if !self.offload {
            let work = self.pump();
            debug_assert!(work.is_none(), "inline mode never offloads");
        }
    }

    /// True while this connection still owes the client response bytes:
    /// buffered output, an in-flight response, or queued ones.  In
    /// offloading mode this can be true while
    /// [`has_unsent_output`](HttpConn::has_unsent_output) is false (the
    /// next bytes are on a worker); in inline mode the pump guarantees
    /// this implies non-empty [`pending_output`](HttpConn::pending_output).
    pub fn wants_write(&self) -> bool {
        self.pending_len() > 0 || self.active.is_some() || !self.queued.is_empty()
    }

    /// True while the engine can make use of more input bytes: the
    /// connection is protocol-open, the transport has not seen EOF, and
    /// input parsing is not parked behind an offloaded service call.
    pub fn wants_read(&self) -> bool {
        self.open && !self.eof && self.pending_call.is_none()
    }

    /// Marks end of input from the transport (EOF or socket error).
    /// Requests already buffered are still parsed and answered — a client
    /// may write a complete request and half-close in the same packet —
    /// but once the buffered input no longer holds a complete request the
    /// connection closes after its pending output flushes.
    pub fn close(&mut self) {
        self.eof = true;
    }

    /// True until a request (or a parse error, or exhausted-after-EOF
    /// input) decided the connection must close after the pending output
    /// flushes.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Number of complete requests parsed so far.  Deadline-driven
    /// transports treat an advance of this counter as proof of protocol
    /// progress; see the field doc on `requests_parsed`.
    pub fn requests_parsed(&self) -> u64 {
        self.requests_parsed
    }

    /// True when no response bytes are in flight on the wire: nothing
    /// mid-emission, nothing queued, nothing buffered unsent.  At such a
    /// boundary a transport evicting the connection can still write a
    /// framing-safe courtesy response (408).
    pub fn at_response_boundary(&self) -> bool {
        self.active.is_none() && self.queued.is_empty() && !self.has_unsent_output()
    }

    /// True while an offloaded unit of [`Work`] is outstanding.
    pub fn has_pending_work(&self) -> bool {
        self.pending_call.is_some() || self.pending_pull || self.pending_activation.is_some()
    }

    /// True when the connection is finished: close decided, output fully
    /// flushed, and no offloaded work still in flight.
    pub fn done(&self) -> bool {
        !self.open && !self.wants_write() && !self.has_pending_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WallClock;
    use bytes::Bytes;
    use nakika_core::service::{service_fn, NakikaError, RequestCtx};
    use nakika_http::{Body, Request};
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::Arc;

    fn echo_path_service() -> Arc<dyn HttpService> {
        service_fn(|req: Request, _ctx| Ok(Response::ok("text/plain", req.uri.path.clone())))
    }

    fn factory() -> CtxFactory {
        CtxFactory::new(Arc::new(WallClock))
    }

    fn peer() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    fn gauge() -> Arc<OutputGauge> {
        Arc::new(OutputGauge::default())
    }

    #[test]
    fn pipelined_requests_produce_in_order_responses() {
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        let a = out.find("/a").expect("first response present");
        let b = out.find("/b").expect("second response present");
        assert!(a < b, "responses keep request order");
        assert!(conn.is_open());
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /a HTTP/1.1\r\nHo");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.wants_write());
        conn.feed(b"st: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).contains("/a"));
    }

    #[test]
    fn connection_close_ends_the_session_after_flush() {
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.done(), "output still pending");
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }

    #[test]
    fn malformed_input_queues_400_and_closes() {
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"NOT A VALID REQUEST\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn eof_still_answers_buffered_requests_then_closes() {
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /last HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.close();
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).contains("/last"));
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }

    #[test]
    fn flushed_output_is_compacted() {
        let mut conn = HttpConn::new(peer(), gauge());
        let service = echo_path_service();
        let factory = factory();
        for i in 0..3 {
            conn.feed(format!("GET /r{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes());
            conn.dispatch(&*service, &factory);
            let n = conn.pending_output().len();
            conn.advance_output(n);
        }
        assert!(!conn.wants_write());
        conn.feed(b"GET /last HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory);
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(out.contains("/last"));
        assert!(
            !out.contains("/r0"),
            "earlier responses were compacted away"
        );
    }

    #[test]
    fn vectored_tail_preserves_wire_order_and_byte_accounting() {
        // A response whose body mixes parts below and above the tail
        // threshold: heads and small chunks coalesce in the front buffer,
        // large chunks ride the tail — and the wire sees one ordered
        // stream either way, whether drained byte-wise (pending_output)
        // or gathered (output_slices).
        let big_a = Bytes::from(vec![b'A'; 8 * 1024]);
        let big_b = Bytes::from(vec![b'B'; 8 * 1024]);
        let chunks = vec![
            Bytes::from_static(b"tiny-"),
            big_a,
            Bytes::from_static(b"-mid-"),
            big_b,
        ];
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let service = service_fn(move |_req: Request, _ctx| {
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::stream_from_iter(chunks.clone(), Some(total));
            Ok(resp)
        });
        let expected_body: usize = total as usize;

        // Gather path: every pending byte appears exactly once, in order.
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /v HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        let mut gathered = Vec::new();
        while conn.wants_write() {
            let slices = conn.output_slices();
            assert!(!slices.is_empty());
            let n: usize = slices.iter().map(|s| s.len()).sum();
            for s in &slices {
                gathered.extend_from_slice(s);
            }
            conn.advance_output(n);
        }
        let head_end = gathered
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        let body = &gathered[head_end..];
        assert_eq!(body.len(), expected_body);
        assert!(body.starts_with(b"tiny-"));
        assert!(body[5..].starts_with(&[b'A'; 8 * 1024][..]));

        // Byte-wise path with awkward advances (splitting tail parts).
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /v HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        let mut dribbled = Vec::new();
        while conn.wants_write() {
            let pending = conn.pending_output();
            assert!(!pending.is_empty());
            let take = (pending.len() / 2).clamp(1, 3000);
            dribbled.extend_from_slice(&pending[..take]);
            conn.advance_output(take);
        }
        assert_eq!(dribbled, gathered, "both drain styles see identical bytes");
    }

    #[test]
    fn streamed_responses_emit_in_bounded_windows() {
        const TOTAL: usize = 4 * 1024 * 1024;
        let service = service_fn(|_req: Request, _ctx| {
            let chunks = (0..TOTAL / STREAM_CHUNK_BYTES)
                .map(|i| Bytes::from(vec![(i % 251) as u8; STREAM_CHUNK_BYTES]));
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::stream_from_iter(chunks, Some(TOTAL as u64));
            Ok(resp)
        });
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /big HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        let mut received = Vec::new();
        let mut iterations = 0usize;
        while conn.wants_write() {
            let pending = conn.pending_output();
            assert!(
                pending.len() <= OUTPUT_WINDOW_BYTES,
                "window exceeded: {}",
                pending.len()
            );
            assert!(!pending.is_empty(), "wants_write implies pending bytes");
            // Drain like a slow socket: half the pending bytes at a time.
            let take = (pending.len() / 2).max(1);
            received.extend_from_slice(&pending[..take]);
            conn.advance_output(take);
            iterations += 1;
            assert!(iterations < 1_000_000, "pump makes progress");
        }
        let text_head_end = received
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        assert_eq!(received.len() - text_head_end, TOTAL, "full body relayed");
    }

    #[test]
    fn failed_body_stream_aborts_the_connection() {
        struct Failing(u32);
        impl nakika_http::ChunkSource for Failing {
            fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
                self.0 += 1;
                if self.0 == 1 {
                    Ok(Some(Bytes::from_static(b"partial")))
                } else {
                    Err(std::io::Error::other("upstream died"))
                }
            }
        }
        let service = service_fn(|_req: Request, _ctx| {
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::stream(Failing(0), Some(1_000_000));
            Ok(resp)
        });
        let mut conn = HttpConn::new(peer(), gauge());
        conn.feed(b"GET /dies HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        // The head (and the partial chunk) may be pending; the connection
        // must be marked for close so the client sees the truncation.
        assert!(!conn.is_open());
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }

    /// A service whose hint is `Inline` for `/warm/…` paths and `MayBlock`
    /// otherwise, for driving the offload state machine by hand.
    struct HintedEcho;

    impl HttpService for HintedEcho {
        fn call(&self, req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
            Ok(Response::ok("text/plain", req.uri.path.clone()))
        }

        fn dispatch_hint(&self, req: &Request, _ctx: &RequestCtx) -> DispatchHint {
            if req.uri.path.starts_with("/warm/") {
                DispatchHint::Inline
            } else {
                DispatchHint::MayBlock
            }
        }
    }

    #[test]
    fn offloading_mode_parks_may_block_calls_and_completes_them() {
        let service = HintedEcho;
        let factory = factory();
        let mut conn = HttpConn::offloading(peer(), gauge());
        // A warm request runs inline, no work produced.
        conn.feed(b"GET /warm/a HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(conn.advance(&service, &factory).is_none());
        assert!(String::from_utf8_lossy(conn.pending_output()).contains("/warm/a"));
        let n = conn.pending_output().len();
        conn.advance_output(n);

        // A cold request is handed back as Work::Call; input parsing parks.
        conn.feed(
            b"GET /cold/b HTTP/1.1\r\nHost: x\r\n\r\nGET /warm/c HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        let work = conn
            .advance(&service, &factory)
            .expect("cold call offloads");
        assert!(matches!(work, Work::Call { .. }));
        assert!(conn.has_pending_work());
        assert!(!conn.wants_read(), "input parses only after completion");
        assert!(
            conn.advance(&service, &factory).is_none(),
            "nothing proceeds while the call is in flight"
        );
        assert!(!conn.has_unsent_output());

        // Completing the call queues its response and unparks the input
        // side: the pipelined warm request now runs inline, in order.
        conn.complete(work.run(&service));
        assert!(!conn.has_pending_work());
        assert!(conn.advance(&service, &factory).is_none());
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        let cold = out.find("/cold/b").expect("offloaded response present");
        let warm = out.find("/warm/c").expect("pipelined response present");
        assert!(cold < warm, "responses keep request order across offloads");
    }

    #[test]
    fn panicking_inline_service_becomes_a_500_not_a_dead_thread() {
        struct Panicking;
        impl HttpService for Panicking {
            fn call(&self, _req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
                panic!("service bug");
            }
            fn dispatch_hint(&self, _req: &Request, _ctx: &RequestCtx) -> DispatchHint {
                // The dangerous case: an Inline-classified call runs on the
                // thread driving the engine — on the reactor, an event loop.
                DispatchHint::Inline
            }
        }
        let mut conn = HttpConn::offloading(peer(), gauge());
        conn.feed(b"GET /boom HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(conn.advance(&Panicking, &factory()).is_none());
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(out.starts_with("HTTP/1.1 500"), "out: {out}");
        assert!(out.contains("panicked"), "out: {out}");
        assert!(conn.is_open(), "the connection survives the panic");
    }

    #[test]
    fn offloading_mode_pulls_blocking_streams_through_work() {
        /// An in-memory source that *claims* to block, standing in for an
        /// origin socket.
        struct BlockingIter {
            chunks: VecDeque<Bytes>,
        }
        impl nakika_http::ChunkSource for BlockingIter {
            fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
                Ok(self.chunks.pop_front())
            }
            fn may_block(&self) -> bool {
                true
            }
        }
        struct StreamService;
        impl HttpService for StreamService {
            fn call(&self, _req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
                let mut resp = Response::new(StatusCode::OK);
                resp.body = Body::stream(
                    BlockingIter {
                        chunks: VecDeque::from(vec![
                            Bytes::from_static(b"hello "),
                            Bytes::from_static(b"world"),
                        ]),
                    },
                    Some(11),
                );
                Ok(resp)
            }
            fn dispatch_hint(&self, _req: &Request, _ctx: &RequestCtx) -> DispatchHint {
                DispatchHint::Inline
            }
        }

        let service = StreamService;
        let factory = factory();
        let mut conn = HttpConn::offloading(peer(), gauge());
        conn.feed(b"GET /movie HTTP/1.1\r\nHost: x\r\n\r\n");
        // The head emits inline; each chunk comes back as Work::Pull.
        let mut pulls = 0;
        while let Some(work) = conn.advance(&service, &factory) {
            assert!(matches!(work, Work::Pull { .. }));
            pulls += 1;
            assert!(pulls < 10, "stream terminates");
            conn.complete(work.run(&service));
        }
        assert!(!conn.has_pending_work());
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(out.contains("Content-Length: 11"), "out: {out}");
        assert!(out.ends_with("hello world"));
        assert!(conn.is_open(), "keep-alive survives an offloaded stream");
    }
}
