//! The transport-independent half of an HTTP/1.1 server connection.
//!
//! Both front-ends — the blocking thread-per-connection server and the
//! readiness [`reactor`](crate::ReactorServer) — speak the same protocol:
//! accumulate bytes, parse complete requests (including pipelined ones),
//! dispatch each through the [`HttpService`] stack with a freshly minted
//! [`RequestCtx`], serialize the responses, and honor keep-alive.  This
//! module holds that logic as a sans-IO state machine: [`HttpConn`] never
//! touches a socket, it just consumes input bytes and produces output
//! bytes, so the two transports differ only in *how* they move bytes —
//! blocking reads on a dedicated thread versus readiness-driven
//! non-blocking reads on a shared reactor thread.

use crate::{CtxFactory, HttpService};
use nakika_http::{parse_request, serialize_response, ParseOutcome, Response, StatusCode};
use std::net::IpAddr;

/// Sans-IO state machine for one server-side HTTP/1.1 connection.
pub(crate) struct HttpConn {
    peer: IpAddr,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    open: bool,
}

impl HttpConn {
    /// A fresh connection from `peer`.
    pub fn new(peer: IpAddr) -> HttpConn {
        HttpConn {
            peer,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            open: true,
        }
    }

    /// Appends bytes read off the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inbuf.extend_from_slice(bytes);
    }

    /// Parses and dispatches every complete request currently buffered,
    /// appending serialized responses to the output buffer.  Handles
    /// pipelined requests in one pass.  Returns the connection's liveness:
    /// `false` means close once the pending output is flushed (the client
    /// asked for it, or the input was malformed and a 400 was queued).
    pub fn dispatch(&mut self, service: &dyn HttpService, ctx_factory: &CtxFactory) -> bool {
        while self.open {
            let (mut request, consumed) = match parse_request(&self.inbuf) {
                Ok(ParseOutcome::Complete { message, consumed }) => (message, consumed),
                Ok(ParseOutcome::Partial) => break,
                Err(_) => {
                    // The stream is unrecoverable past a parse error: answer
                    // 400 and close without looking at later bytes.
                    self.queue(&Response::error(StatusCode::BAD_REQUEST));
                    self.open = false;
                    break;
                }
            };
            self.inbuf.drain(..consumed);
            request.client_ip = self.peer;
            let keep_alive = request.headers.keep_alive(request.version_11);
            let ctx = ctx_factory.make(self.peer);
            // The wire is where platform errors become status codes.
            let response = match service.call(request, &ctx) {
                Ok(response) => response,
                Err(error) => error.to_response(),
            };
            self.queue(&response);
            if !keep_alive {
                self.open = false;
            }
        }
        self.open
    }

    fn queue(&mut self, response: &Response) {
        // Compact the flushed prefix before growing, so a long-lived
        // keep-alive connection does not accrete every response it ever sent.
        if self.written > 0 {
            self.outbuf.drain(..self.written);
            self.written = 0;
        }
        self.outbuf.extend_from_slice(&serialize_response(response));
    }

    /// The serialized bytes not yet written to the socket.
    pub fn pending_output(&self) -> &[u8] {
        &self.outbuf[self.written..]
    }

    /// Records that `n` bytes of pending output reached the socket.
    pub fn advance_output(&mut self, n: usize) {
        self.written += n;
        debug_assert!(self.written <= self.outbuf.len());
    }

    /// True while there are response bytes waiting for the socket.
    pub fn wants_write(&self) -> bool {
        self.written < self.outbuf.len()
    }

    /// Marks the connection closed by the transport (EOF or socket error):
    /// no further requests are parsed, pending output may still flush.
    pub fn close(&mut self) {
        self.open = false;
    }

    /// True until a request (or a parse error) decided the connection must
    /// close after the pending output flushes.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// True when the connection is finished: close decided and output fully
    /// flushed.
    pub fn done(&self) -> bool {
        !self.open && !self.wants_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WallClock;
    use nakika_core::service::service_fn;
    use nakika_http::Request;
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::Arc;

    fn echo_path_service() -> Arc<dyn HttpService> {
        service_fn(|req: Request, _ctx| Ok(Response::ok("text/plain", req.uri.path.clone())))
    }

    fn factory() -> CtxFactory {
        CtxFactory::new(Arc::new(WallClock))
    }

    fn peer() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    #[test]
    fn pipelined_requests_produce_in_order_responses() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        let a = out.find("/a").expect("first response present");
        let b = out.find("/b").expect("second response present");
        assert!(a < b, "responses keep request order");
        assert!(conn.is_open());
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHo");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.wants_write());
        conn.feed(b"st: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).contains("/a"));
    }

    #[test]
    fn connection_close_ends_the_session_after_flush() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.done(), "output still pending");
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }

    #[test]
    fn malformed_input_queues_400_and_closes() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"NOT A VALID REQUEST\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn flushed_output_is_compacted() {
        let mut conn = HttpConn::new(peer());
        let service = echo_path_service();
        let factory = factory();
        for i in 0..3 {
            conn.feed(format!("GET /r{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes());
            conn.dispatch(&*service, &factory);
            let n = conn.pending_output().len();
            conn.advance_output(n);
        }
        assert!(!conn.wants_write());
        conn.feed(b"GET /last HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory);
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(out.contains("/last"));
        assert!(
            !out.contains("/r0"),
            "earlier responses were compacted away"
        );
    }
}
