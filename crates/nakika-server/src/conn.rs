//! The transport-independent half of an HTTP/1.1 server connection.
//!
//! Both front-ends — the blocking thread-per-connection server and the
//! readiness [`reactor`](crate::ReactorServer) — speak the same protocol:
//! accumulate bytes, parse complete requests (including pipelined ones),
//! dispatch each through the [`HttpService`] stack with a freshly minted
//! [`RequestCtx`], serialize the responses, and honor keep-alive.  This
//! module holds that logic as a sans-IO state machine: [`HttpConn`] never
//! touches a socket, it just consumes input bytes and produces output
//! bytes, so the two transports differ only in *how* they move bytes —
//! blocking reads on a dedicated thread versus readiness-driven
//! non-blocking reads on a shared reactor thread.
//!
//! # Streaming output
//!
//! Since the v2 streaming redesign, a service may answer with a
//! [`Body::Stream`](nakika_http::Body) whose chunks are pulled from an
//! upstream source as they are relayed.  The engine therefore no longer
//! serializes whole responses: dispatched responses enter a FIFO, and the
//! engine *pumps* the response at the head of the queue — via the
//! incremental [`ResponseWriter`] — into its output buffer only while the
//! buffered backlog stays under a bounded window
//! ([`OUTPUT_WINDOW_BYTES`]).  Each flush of the socket makes room and
//! pulls the next chunk, so an 8 MiB relay holds at most one window of
//! bytes per connection, and on the reactor the pull rate is governed by
//! the client's write-readiness (natural backpressure).  A body stream
//! that fails mid-response cannot be turned into an error status (the head
//! is already on the wire); the engine aborts the connection so the
//! framing tells the client the message was truncated.

use crate::{CtxFactory, HttpService};
use nakika_http::{
    parse_request, ParseOutcome, Response, ResponseWriter, StatusCode, STREAM_CHUNK_BYTES,
};
use std::collections::VecDeque;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on serialized-but-unsent bytes held per connection.  One
/// window must fit at least one head plus one body chunk; the default (256
/// KiB) amortizes syscalls on small pipelined responses while keeping the
/// per-connection memory for large relays bounded.
pub const OUTPUT_WINDOW_BYTES: usize = 256 * 1024;

/// Headroom reserved inside the window for one more part (a body chunk
/// plus its framing, or a response head), so pumping never overshoots
/// [`OUTPUT_WINDOW_BYTES`].
const PART_HEADROOM_BYTES: usize = STREAM_CHUNK_BYTES + 4 * 1024;

/// Process-wide high-water mark of per-connection buffered output, across
/// both transports — the instrumentation behind the large-body bounded-
/// memory tests and `examples/streaming_brigade.rs`.
static PEAK_OUTPUT_BYTES: AtomicUsize = AtomicUsize::new(0);

fn note_buffered(bytes: usize) {
    PEAK_OUTPUT_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

/// Highest number of serialized-but-unsent bytes any connection has held
/// since the last [`reset_peak_buffered_output`] — across every server in
/// the process, on both transports.
pub fn peak_buffered_output() -> usize {
    PEAK_OUTPUT_BYTES.load(Ordering::Relaxed)
}

/// Resets the [`peak_buffered_output`] high-water mark (tests bracket a
/// workload with this to assert the bounded-buffering invariant).
pub fn reset_peak_buffered_output() {
    PEAK_OUTPUT_BYTES.store(0, Ordering::Relaxed);
}

/// Sans-IO state machine for one server-side HTTP/1.1 connection.
pub(crate) struct HttpConn {
    peer: IpAddr,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    /// The response currently being emitted incrementally.
    active: Option<ResponseWriter>,
    /// Responses dispatched but not yet started (pipelining).
    queued: VecDeque<Response>,
    open: bool,
}

impl HttpConn {
    /// A fresh connection from `peer`.
    pub fn new(peer: IpAddr) -> HttpConn {
        HttpConn {
            peer,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            active: None,
            queued: VecDeque::new(),
            open: true,
        }
    }

    /// Appends bytes read off the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inbuf.extend_from_slice(bytes);
    }

    /// Parses and dispatches every complete request currently buffered,
    /// queueing their responses in order (pipelined requests are handled in
    /// one pass), then pumps response bytes into the output buffer up to
    /// the window.  Returns the connection's liveness: `false` means close
    /// once the pending output is flushed (the client asked for it, the
    /// input was malformed and a 400 was queued, or a relayed body stream
    /// failed mid-response).
    pub fn dispatch(&mut self, service: &dyn HttpService, ctx_factory: &CtxFactory) -> bool {
        while self.open {
            let (mut request, consumed) = match parse_request(&self.inbuf) {
                Ok(ParseOutcome::Complete { message, consumed }) => (message, consumed),
                Ok(ParseOutcome::Partial) => break,
                Err(_) => {
                    // The stream is unrecoverable past a parse error: answer
                    // 400 and close without looking at later bytes.
                    self.queued
                        .push_back(Response::error(StatusCode::BAD_REQUEST));
                    self.open = false;
                    break;
                }
            };
            self.inbuf.drain(..consumed);
            request.client_ip = self.peer;
            let keep_alive = request.headers.keep_alive(request.version_11);
            let ctx = ctx_factory.make(self.peer);
            // The wire is where platform errors become status codes.
            let response = match service.call(request, &ctx) {
                Ok(response) => response,
                Err(error) => error.to_response(),
            };
            self.queued.push_back(response);
            if !keep_alive {
                self.open = false;
            }
        }
        self.pump();
        self.open
    }

    /// Moves response bytes into the output buffer until the window is full
    /// or there is nothing left to emit.  Called after dispatch and after
    /// every flush, so a draining socket keeps pulling the next chunk of a
    /// streamed body — and nothing pulls chunks faster than the socket
    /// drains them.
    fn pump(&mut self) {
        loop {
            if self.pending_len() + PART_HEADROOM_BYTES > OUTPUT_WINDOW_BYTES {
                break;
            }
            if self.active.is_none() {
                match self.queued.pop_front() {
                    Some(response) => self.active = Some(ResponseWriter::new(response)),
                    None => break,
                }
            }
            let writer = self.active.as_mut().expect("writer installed above");
            match writer.next_part() {
                Ok(Some(part)) => {
                    // Compact the flushed prefix before growing, so a
                    // long-lived keep-alive connection does not accrete
                    // every response it ever sent.
                    if self.written > 0 {
                        self.outbuf.drain(..self.written);
                        self.written = 0;
                    }
                    self.outbuf.extend_from_slice(&part);
                    note_buffered(self.pending_len());
                }
                Ok(None) => self.active = None,
                Err(_) => {
                    // Mid-body failure after the head went out: the only
                    // honest signal left is truncation.  Abort the
                    // connection (later pipelined responses die with it).
                    self.active = None;
                    self.queued.clear();
                    self.open = false;
                    break;
                }
            }
        }
    }

    /// The serialized bytes not yet written to the socket.
    pub fn pending_output(&self) -> &[u8] {
        &self.outbuf[self.written..]
    }

    fn pending_len(&self) -> usize {
        self.outbuf.len() - self.written
    }

    /// Records that `n` bytes of pending output reached the socket, and
    /// pulls more of the in-flight response into the freed window.
    pub fn advance_output(&mut self, n: usize) {
        self.written += n;
        debug_assert!(self.written <= self.outbuf.len());
        self.pump();
    }

    /// True while there are response bytes waiting for the socket.  After
    /// every [`dispatch`](HttpConn::dispatch)/
    /// [`advance_output`](HttpConn::advance_output) the pump guarantees
    /// this implies non-empty [`pending_output`](HttpConn::pending_output).
    pub fn wants_write(&self) -> bool {
        self.pending_len() > 0 || self.active.is_some() || !self.queued.is_empty()
    }

    /// Marks the connection closed by the transport (EOF or socket error):
    /// no further requests are parsed, pending output may still flush.
    pub fn close(&mut self) {
        self.open = false;
    }

    /// True until a request (or a parse error) decided the connection must
    /// close after the pending output flushes.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// True when the connection is finished: close decided and output fully
    /// flushed.
    pub fn done(&self) -> bool {
        !self.open && !self.wants_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WallClock;
    use bytes::Bytes;
    use nakika_core::service::service_fn;
    use nakika_http::{Body, Request};
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::Arc;

    fn echo_path_service() -> Arc<dyn HttpService> {
        service_fn(|req: Request, _ctx| Ok(Response::ok("text/plain", req.uri.path.clone())))
    }

    fn factory() -> CtxFactory {
        CtxFactory::new(Arc::new(WallClock))
    }

    fn peer() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    #[test]
    fn pipelined_requests_produce_in_order_responses() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        let a = out.find("/a").expect("first response present");
        let b = out.find("/b").expect("second response present");
        assert!(a < b, "responses keep request order");
        assert!(conn.is_open());
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHo");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.wants_write());
        conn.feed(b"st: x\r\n\r\n");
        assert!(conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).contains("/a"));
    }

    #[test]
    fn connection_close_ends_the_session_after_flush() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /a HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(!conn.done(), "output still pending");
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }

    #[test]
    fn malformed_input_queues_400_and_closes() {
        let mut conn = HttpConn::new(peer());
        conn.feed(b"NOT A VALID REQUEST\r\n\r\n");
        assert!(!conn.dispatch(&*echo_path_service(), &factory()));
        assert!(String::from_utf8_lossy(conn.pending_output()).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn flushed_output_is_compacted() {
        let mut conn = HttpConn::new(peer());
        let service = echo_path_service();
        let factory = factory();
        for i in 0..3 {
            conn.feed(format!("GET /r{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes());
            conn.dispatch(&*service, &factory);
            let n = conn.pending_output().len();
            conn.advance_output(n);
        }
        assert!(!conn.wants_write());
        conn.feed(b"GET /last HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory);
        let out = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(out.contains("/last"));
        assert!(
            !out.contains("/r0"),
            "earlier responses were compacted away"
        );
    }

    #[test]
    fn streamed_responses_emit_in_bounded_windows() {
        const TOTAL: usize = 4 * 1024 * 1024;
        let service = service_fn(|_req: Request, _ctx| {
            let chunks = (0..TOTAL / STREAM_CHUNK_BYTES)
                .map(|i| Bytes::from(vec![(i % 251) as u8; STREAM_CHUNK_BYTES]));
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::stream_from_iter(chunks, Some(TOTAL as u64));
            Ok(resp)
        });
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /big HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        let mut received = Vec::new();
        let mut iterations = 0usize;
        while conn.wants_write() {
            let pending = conn.pending_output();
            assert!(
                pending.len() <= OUTPUT_WINDOW_BYTES,
                "window exceeded: {}",
                pending.len()
            );
            assert!(!pending.is_empty(), "wants_write implies pending bytes");
            // Drain like a slow socket: half the pending bytes at a time.
            let take = (pending.len() / 2).max(1);
            received.extend_from_slice(&pending[..take]);
            conn.advance_output(take);
            iterations += 1;
            assert!(iterations < 1_000_000, "pump makes progress");
        }
        let text_head_end = received
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        assert_eq!(received.len() - text_head_end, TOTAL, "full body relayed");
    }

    #[test]
    fn failed_body_stream_aborts_the_connection() {
        struct Failing(u32);
        impl nakika_http::ChunkSource for Failing {
            fn next_chunk(&mut self) -> std::io::Result<Option<Bytes>> {
                self.0 += 1;
                if self.0 == 1 {
                    Ok(Some(Bytes::from_static(b"partial")))
                } else {
                    Err(std::io::Error::other("upstream died"))
                }
            }
        }
        let service = service_fn(|_req: Request, _ctx| {
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::stream(Failing(0), Some(1_000_000));
            Ok(resp)
        });
        let mut conn = HttpConn::new(peer());
        conn.feed(b"GET /dies HTTP/1.1\r\nHost: x\r\n\r\n");
        conn.dispatch(&*service, &factory());
        // The head (and the partial chunk) may be pending; the connection
        // must be marked for close so the client sees the truncation.
        assert!(!conn.is_open());
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.done());
    }
}
