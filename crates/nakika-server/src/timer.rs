//! A hashed timer wheel for per-connection deadlines on the reactor.
//!
//! The reactor's poll loop used to sleep forever (`timeout_ms = -1`):
//! with no I/O and no self-pipe wakeup, nothing ever ran, which meant a
//! slow-loris client that dripped one header byte per second pinned its
//! slab slot for the lifetime of the process.  The wheel fixes the
//! *mechanism* half of that problem: it tracks one deadline per
//! connection and tells the poll loop how long it may sleep
//! ([`TimerWheel::next_deadline_ms`]), so deadlines fire from the poll
//! timeout itself — no self-pipe write, no reliance on the peer sending
//! more bytes.  The *policy* half (when to re-arm a deadline) lives in
//! the reactor: a deadline is re-armed only on protocol progress
//! (complete request parsed, output drained), never on raw bytes.
//!
//! Design: a classic hashed wheel — `slots` buckets of `tick_ms`
//! granularity, entries hashed by `deadline / tick_ms % slots`.  Entries
//! are `(slab index, generation)` pairs; the wheel is deliberately
//! *lazy*: it never removes or updates entries in place.  Re-arming
//! inserts a fresh entry and bumps nothing; when an old entry surfaces,
//! [`TimerWheel::expire`] hands it to the caller's validation closure,
//! which checks it against the connection's authoritative deadline (and
//! generation) and either evicts or tells the wheel to re-file it.  This
//! keeps insert O(1) with no per-connection back-pointers into the wheel.
//!
//! Time is a plain `u64` of milliseconds supplied by the caller, so unit
//! tests drive the wheel with a [`ManualClock`](nakika_core::service::ManualClock)
//! instead of the wall.

/// One armed deadline: the connection's slab index and generation at the
/// time it was filed (the generation defends against slab-slot reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    pub idx: usize,
    pub gen: u64,
    pub deadline_ms: u64,
}

/// Verdict of the caller's validation closure for a surfaced entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerVerdict {
    /// The deadline really has passed: evict the connection.
    Fire,
    /// The connection made progress since this entry was filed; its
    /// authoritative deadline is now the given time — re-file it.
    Refile(u64),
    /// The connection is gone (closed, or the slot was reused under a
    /// newer generation): drop the entry.
    Drop,
}

pub(crate) struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick_ms: u64,
    /// Wheel time already swept, in ticks since time zero.
    swept_tick: u64,
    len: usize,
}

impl TimerWheel {
    pub fn new(tick_ms: u64, slots: usize, now_ms: u64) -> TimerWheel {
        assert!(tick_ms > 0 && slots > 1);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick_ms,
            swept_tick: now_ms / tick_ms,
            len: 0,
        }
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Files a deadline.  Deadlines already in the past land in the next
    /// sweepable tick rather than being lost.
    pub fn insert(&mut self, idx: usize, gen: u64, deadline_ms: u64) {
        let tick = (deadline_ms / self.tick_ms).max(self.swept_tick + 1);
        let slot = (tick as usize) % self.slots.len();
        self.slots[slot].push(TimerEntry {
            idx,
            gen,
            deadline_ms,
        });
        self.len += 1;
    }

    /// Milliseconds the poll loop may sleep before the next entry *could*
    /// be due, or `None` when the wheel is empty (sleep forever).  This is
    /// a lower bound: an entry hashed into a near slot by a far-future
    /// deadline may cause an early wakeup (the sweep just re-files it),
    /// but a due deadline is never reported later than one tick.
    pub fn next_deadline_ms(&self, now_ms: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len() as u64;
        (1..=n)
            .map(|ahead| self.swept_tick + ahead)
            .find(|tick| !self.slots[(*tick as usize) % self.slots.len()].is_empty())
            .map(|tick| (tick * self.tick_ms).saturating_sub(now_ms).max(1))
    }

    /// Sweeps every tick up to `now_ms`, surfacing each filed entry to
    /// `judge`.  `Fire` entries are returned (the caller evicts),
    /// `Refile` entries are re-filed at their new deadline, `Drop`
    /// entries vanish.
    pub fn expire(
        &mut self,
        now_ms: u64,
        mut judge: impl FnMut(&TimerEntry) -> TimerVerdict,
    ) -> Vec<TimerEntry> {
        let now_tick = now_ms / self.tick_ms;
        if now_tick <= self.swept_tick || self.len == 0 {
            self.swept_tick = self.swept_tick.max(now_tick);
            return Vec::new();
        }
        let mut fired = Vec::new();
        let mut refile = Vec::new();
        // A jump farther than one rotation visits every slot exactly once.
        let span = (now_tick - self.swept_tick).min(self.slots.len() as u64);
        for tick in self.swept_tick + 1..=self.swept_tick + span {
            let slot = (tick as usize) % self.slots.len();
            for entry in self.slots[slot].drain(..) {
                self.len -= 1;
                if entry.deadline_ms > now_ms {
                    // Far-future deadline that hashed into this rotation:
                    // not due yet, file it for the next pass.
                    refile.push(entry);
                    continue;
                }
                match judge(&entry) {
                    TimerVerdict::Fire => fired.push(entry),
                    TimerVerdict::Refile(deadline_ms) => refile.push(TimerEntry {
                        deadline_ms,
                        ..entry
                    }),
                    TimerVerdict::Drop => {}
                }
            }
        }
        self.swept_tick = now_tick;
        for entry in refile {
            self.insert(entry.idx, entry.gen, entry.deadline_ms);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::service::{Clock, ManualClock};

    /// Millisecond view over the seconds-granularity [`ManualClock`], so
    /// these tests are driven by the same clock abstraction as the
    /// service layer.
    fn ms(clock: &ManualClock) -> u64 {
        clock.now_secs() * 1000
    }

    #[test]
    fn deadline_fires_from_poll_timeout_without_a_wakeup() {
        // The downgrade-resilience scenario: nothing ever writes to the
        // self-pipe and the peer sends no further bytes.  The only thing
        // the poll loop has is the wheel's suggested sleep — after
        // sleeping it, the deadline must fire.
        let clock = ManualClock::new(100);
        let mut wheel = TimerWheel::new(25, 256, ms(&clock));
        wheel.insert(7, 1, ms(&clock) + 5_000);

        // The wheel bounds the sleep: never past the deadline.
        let sleep = wheel.next_deadline_ms(ms(&clock)).expect("armed");
        assert!(sleep <= 5_000, "sleep {sleep} must not overshoot");

        // Simulate the loop sleeping exactly as told, repeatedly, with no
        // events delivered.  Within the deadline (+ one tick of slack) the
        // entry surfaces.
        let mut fired = Vec::new();
        let mut slept_ms = 0;
        while fired.is_empty() {
            let sleep = wheel.next_deadline_ms(ms(&clock)).expect("still armed");
            slept_ms += sleep;
            assert!(slept_ms <= 5_000 + 25, "deadline overshot: {slept_ms}");
            clock.advance(sleep.div_ceil(1000).max(1));
            fired = wheel.expire(ms(&clock), |_| TimerVerdict::Fire);
        }
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].idx, fired[0].gen), (7, 1));
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_deadline_ms(ms(&clock)), None);
    }

    #[test]
    fn progress_refiles_instead_of_firing() {
        let clock = ManualClock::new(0);
        let mut wheel = TimerWheel::new(25, 64, ms(&clock));
        wheel.insert(3, 9, 2_000);
        clock.advance(3); // 3000 ms: past the filed deadline.
        let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Refile(6_000));
        assert!(fired.is_empty(), "progressed connection must not fire");
        assert!(!wheel.is_empty());
        clock.advance(4); // 7000 ms: past the re-filed deadline.
        let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Fire);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].deadline_ms, 6_000);
    }

    #[test]
    fn dropped_entries_vanish_and_empty_wheel_sleeps_forever() {
        let clock = ManualClock::new(0);
        let mut wheel = TimerWheel::new(25, 64, ms(&clock));
        wheel.insert(1, 1, 500);
        clock.advance(1);
        let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Drop);
        assert!(fired.is_empty());
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_deadline_ms(ms(&clock)), None);
    }

    #[test]
    fn far_future_deadline_does_not_fire_early() {
        let clock = ManualClock::new(0);
        // 8 slots * 10 ms tick = one rotation is only 80 ms, so a 10 s
        // deadline wraps the wheel many times over.
        let mut wheel = TimerWheel::new(10, 8, ms(&clock));
        wheel.insert(2, 4, 10_000);
        for _ in 0..9 {
            clock.advance(1);
            let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Fire);
            assert!(fired.is_empty(), "fired {} ms early", 10_000 - ms(&clock));
        }
        clock.advance(1); // 10_000 ms.
        let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Fire);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn past_deadlines_are_not_lost() {
        let clock = ManualClock::new(10);
        let mut wheel = TimerWheel::new(25, 64, ms(&clock));
        // Deadline already in the past at insert time.
        wheel.insert(5, 2, 1_000);
        clock.advance(1);
        let fired = wheel.expire(ms(&clock), |_| TimerVerdict::Fire);
        assert_eq!(fired.len(), 1);
    }
}
