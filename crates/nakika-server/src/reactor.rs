//! The non-blocking reactor transport: readiness-driven HTTP/1.1 service
//! over a handful of event-loop threads, with blocking origin I/O offloaded
//! to a worker pool.
//!
//! # Architecture
//!
//! A [`ReactorServer`] runs one blocking *acceptor* thread (the same
//! accept/shutdown discipline as the threaded server), `N` *reactor*
//! threads, and one shared pool of `W` *offload workers* (both counts set
//! by [`ReactorConfig`]).  Each reactor owns a [`Poller`] (epoll on Linux,
//! poll elsewhere — see [`crate::sys`]) and the set of connections assigned
//! to it; accepted sockets are handed out round-robin, made non-blocking,
//! and from then on all their *client-side* I/O happens on that reactor's
//! thread, driven by readiness events.
//!
//! Per connection the reactor keeps a sans-IO [`HttpConn`] state machine
//! (shared verbatim with the blocking transport): readable events feed
//! bytes in, and the engine's `advance` parses complete requests,
//! dispatches the ones the service stack classifies
//! [`DispatchHint::Inline`](nakika_core::service::DispatchHint) — warm
//! cache hits — right there on the reactor thread, and pumps serialized
//! output, which drains through non-blocking writes with `EPOLLOUT`
//! interest registered only while output is actually pending.  Keep-alive
//! connections therefore cost one slab slot and one epoll registration
//! while idle — not a parked thread — which is what lets one node hold
//! hundreds of simultaneous keep-alive clients.
//!
//! # The event-loop discipline, and parking
//!
//! The one rule of this module: **nothing on a reactor thread may block.**
//! Two operations in the request path can — a service call that misses the
//! cache and fetches from the origin, and pulling the next chunk of a
//! streamed response whose source is an origin socket.  For those, the
//! engine hands back a unit of [`Work`](crate::conn) instead of executing
//! it, and the reactor *parks* the connection: the in-flight side of the
//! engine stops (input parsing for a call, output pumping for a pull), the
//! fd is deregistered from readiness tracking once neither direction has
//! anything to do, and the slab slot is retained.  The work runs on the
//! worker pool; its completion lands in the reactor's completion queue and
//! the loopback self-pipe wakes the poller — the same wakeup path used for
//! newly accepted sockets — after which the completion is fed back into
//! the engine and the connection is re-armed with whatever interest it now
//! has.  A cold origin fetch thus costs its own connection a round trip
//! through the pool while every other connection on the reactor keeps
//! being served; see `docs/ARCHITECTURE.md`, "Life of a cache miss".
//!
//! A slot being parked is also why completions carry a generation counter:
//! a connection can die (write error, shutdown) while its work is still
//! running, and the slot may be reused by a new connection before the
//! stale completion arrives.  The generation check drops such orphans.
//!
//! Reactors are woken for new work through a loopback socket pair (the
//! self-pipe trick): the acceptor (or a worker) pushes onto the reactor's
//! injection/completion queue and writes one byte to the wake socket,
//! which the poller reports like any other readable fd.  Shutdown reuses
//! the same path, so dropping a [`ReactorServer`] joins every thread
//! deterministically — reactors first, then the worker pool.

use crate::conn::{Done, HttpConn, OutputGauge, Work, OUTPUT_WINDOW_BYTES};
use crate::relay::{RelayEvent, ResponseRelay};
use crate::sys::{connect_nonblocking_v4, Interest, PollEvent, Poller};
use crate::timer::{TimerVerdict, TimerWheel};
use crate::{
    CtxFactory, HttpService, ServerOptions, ServerStats, WallClock, WorkerPool, OVER_CAP_RESPONSE,
    TIMEOUT_RESPONSE,
};
use bytes::Bytes;
use nakika_core::service::RelayPlan;
use nakika_http::{Body, ChunkSource, Response};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Token reserved for the wake socket; connections use their slab index.
const WAKE_TOKEN: u64 = u64::MAX;

/// Token-space offset for upstream (origin-side) connections: poll tokens
/// and timer-wheel indices at or above this address the `upstreams` slab,
/// below it the client slab.  Client indices stay far under 2^32 — each
/// one holds an open fd.
const UPSTREAM_BASE: u64 = 1 << 32;
const UPSTREAM_BASE_IDX: usize = 1 << 32;

/// Splice backpressure, origin→client direction: once this many relayed
/// body bytes are queued and the client has not pulled them, the upstream
/// socket is deregistered — TCP receive-window pressure then reaches the
/// origin.  Sized to the client output window: together they bound a
/// stalled relay to ~half a megabyte, never the full body.
const SPLICE_HIGH_WATER_BYTES: usize = OUTPUT_WINDOW_BYTES;

/// Reads resume once the client drains the splice queue below this.
const SPLICE_LOW_WATER_BYTES: usize = 64 * 1024;

/// Timer-wheel granularity.  Deadlines fire within one tick of their due
/// time; 10 ms is far below any sane idle timeout.
const WHEEL_TICK_MS: u64 = 10;

/// Timer-wheel slot count: one rotation covers ~5 s, and longer deadlines
/// are lazily re-filed as the sweep reaches them.
const WHEEL_SLOTS: usize = 512;

/// Sizing knobs for the reactor transport
/// ([`Transport::Reactor`](crate::Transport)).
///
/// ```
/// use nakika_server::ReactorConfig;
///
/// // Derive both counts from the machine (the default):
/// let auto = ReactorConfig::default();
/// // Pin them — e.g. one event loop and a deep pool for an
/// // origin-latency-bound deployment:
/// let pinned = ReactorConfig { reactors: 1, workers: 16, ..ReactorConfig::default() };
/// # let _ = (auto, pinned);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Number of event-loop threads.  `0` (the default) derives
    /// `min(available cores, 4)`: event loops are CPU-bound and a handful
    /// multiplexes hundreds of connections.
    pub reactors: usize,
    /// Number of offload-worker threads executing may-block service calls
    /// (cold origin fetches) and origin-socket chunk pulls for *all*
    /// reactors of the server.  `0` (the default) derives
    /// `min(max(available cores, 4), 16)`.  This bounds how many origin
    /// fetches proceed concurrently: size it toward the expected number of
    /// simultaneous cache misses times the origin latency you are willing
    /// to overlap, not toward client concurrency — warm hits never enter
    /// the pool.
    pub workers: usize,
    /// Survival knobs shared with the threaded transport: the
    /// per-connection progress deadline (enforced here by the reactor's
    /// timer wheel) and the server-wide connection cap (enforced at the
    /// acceptor).
    pub options: ServerOptions,
    /// Serve relayable cache misses as an event-loop *splice* (`true`, the
    /// default): when the service stack publishes a
    /// [`RelayPlan`](nakika_core::service::RelayPlan) for a miss, the
    /// reactor opens the origin connection itself — non-blocking, in the
    /// same slab and poller as the client sockets — and relays the
    /// response with zero worker hand-offs.  `false` routes every miss
    /// through the worker pool (the pre-splice behaviour; the benchmark
    /// suite uses this to keep a comparable baseline).
    pub splice_origin: bool,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            reactors: 0,
            workers: 0,
            options: ServerOptions::default(),
            splice_origin: true,
        }
    }
}

impl ReactorConfig {
    fn resolved_reactors(&self) -> usize {
        if self.reactors > 0 {
            return self.reactors;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(4, 16)
    }
}

/// A finished unit of offloaded work, addressed back to its connection.
struct Completion {
    idx: usize,
    /// Generation of the slab slot when the work was submitted; a mismatch
    /// means the connection died (and the slot was possibly reused) while
    /// the work was in flight, and the completion is dropped.
    gen: u64,
    done: Done,
}

/// Work handed to a reactor from outside its thread: new connections,
/// completions of offloaded work, and the shutdown signal, with a loopback
/// wake socket to interrupt the poller.
struct Injector {
    queue: Mutex<Vec<(TcpStream, IpAddr)>>,
    completions: Mutex<Vec<Completion>>,
    shutdown: AtomicBool,
    wake_tx: TcpStream,
}

impl Injector {
    fn wake(&self) {
        // One byte is enough; the reactor drains the socket on wake.  A full
        // buffer means a wake is already pending, so failure is harmless.
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn push(&self, stream: TcpStream, peer: IpAddr) {
        self.queue.lock().push((stream, peer));
        self.wake();
    }

    fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
        self.wake();
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake();
    }
}

/// A connected loopback pair: the write end stays with injectors, the read
/// end is registered in the reactor's poller.  Std-only stand-in for
/// `pipe(2)` so the FFI surface stays minimal.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    // The write side must be non-blocking too: if a reactor stalls and its
    // buffers fill, a blocking wake() would park the *acceptor* thread (and
    // Drop).  With O_NONBLOCK a full buffer just means a wake is already
    // pending, which is exactly what the callers assume.
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// Body bytes relayed from an upstream socket to one client, queued
/// between the reactor's upstream read loop and the client engine's body
/// pulls.  Both ends run on the same reactor thread; the mutex exists
/// because the handle is embedded in a [`Body`] (which must stay `Send`
/// for the non-splice paths) and is never contended.
#[derive(Default)]
struct SpliceShared {
    inner: Mutex<SpliceState>,
}

#[derive(Default)]
struct SpliceState {
    chunks: VecDeque<Bytes>,
    /// Total bytes across `chunks`, for O(1) backpressure checks.
    queued: usize,
    eof: bool,
    /// Poisons the stream: the upstream died after the head was delivered,
    /// so the client's framing cannot be repaired and its next pull must
    /// abort the connection.
    error: Option<String>,
}

impl SpliceShared {
    fn push(&self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        let mut state = self.inner.lock();
        state.queued += data.len();
        state.chunks.push_back(data);
    }

    fn set_eof(&self) {
        self.inner.lock().eof = true;
    }

    fn set_error(&self, reason: String) {
        let mut state = self.inner.lock();
        if state.error.is_none() {
            state.error = Some(reason);
        }
    }

    fn queued(&self) -> usize {
        self.inner.lock().queued
    }

    /// Whether a parked body pull could complete right now.
    fn pull_ready(&self) -> bool {
        let state = self.inner.lock();
        !state.chunks.is_empty() || state.eof || state.error.is_some()
    }

    /// Whether the upstream is finished producing (everything it will ever
    /// deliver is already queued).
    fn input_finished(&self) -> bool {
        let state = self.inner.lock();
        state.eof || state.error.is_some()
    }
}

/// The body source of a spliced response: pops what `drive_upstream`
/// queued.  `may_block` is true so the engine always routes pulls through
/// the transport — the reactor parks them until the queue has data, which
/// is the non-blocking analogue of a blocking socket read.
struct SpliceSource {
    shared: Arc<SpliceShared>,
}

impl ChunkSource for SpliceSource {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        let mut state = self.shared.inner.lock();
        if let Some(chunk) = state.chunks.pop_front() {
            state.queued -= chunk.len();
            return Ok(Some(chunk));
        }
        if let Some(reason) = state.error.clone() {
            return Err(io::Error::other(reason));
        }
        if state.eof {
            return Ok(None);
        }
        // Unreachable by construction: the reactor fulfills a parked pull
        // only after `pull_ready()`, and a buffer only after
        // `input_finished()`.
        Err(io::Error::other(
            "splice body polled before its data arrived",
        ))
    }

    fn may_block(&self) -> bool {
        true
    }
}

/// Client-side record of an in-flight splice: which upstream slot serves
/// it, the queue its body drains from, and the parked body work waiting on
/// that queue.
struct ClientSplice {
    shared: Arc<SpliceShared>,
    upstream: usize,
    upstream_gen: u64,
    /// The delivered response's body handle (after cache-capture teeing).
    /// A `Work::Pull`/`Work::Buffer` belongs to this splice only if its
    /// body is this one — pulls for *earlier* pipelined responses still go
    /// to the worker pool.
    body: Option<Body>,
    /// A `Work::Pull` or `Work::Buffer` waiting for the queue.
    parked: Option<Work>,
}

/// Where an upstream connection is in its single exchange.
enum UpstreamState {
    /// `connect(2)` returned `EINPROGRESS`; waiting for writability.
    Connecting,
    /// Writing the serialized upstream request.
    Sending,
    /// Relaying the response through a [`ResponseRelay`].
    Reading,
}

/// One origin-side connection being spliced to a client: same slab, poller
/// and timer-wheel treatment as a client [`Conn`], addressed by
/// [`UPSTREAM_BASE`]-offset tokens.
struct UpstreamConn {
    stream: TcpStream,
    gen: u64,
    client: usize,
    client_gen: u64,
    state: UpstreamState,
    plan: RelayPlan,
    /// Index into `plan.attempts` currently being tried.
    attempt: usize,
    wire_written: usize,
    relay: ResponseRelay,
    shared: Arc<SpliceShared>,
    interest: Interest,
    registered: bool,
    /// True while reading is suspended because the client is not draining
    /// the queue (high-water mark).  A paused upstream is deregistered and
    /// its deadline is excused — the client is the slow side.
    paused: bool,
    /// The head reached the client: failures from here on are stream
    /// aborts (poisoned queue), not attempt fallbacks.
    head_delivered: bool,
    deadline_ms: u64,
}

/// One registered connection: its socket, protocol state machine, the
/// interest currently installed in the poller (meaningful only while
/// `registered`), and the generation guarding stale completions.
struct Conn {
    stream: TcpStream,
    engine: HttpConn,
    interest: Interest,
    /// False while the connection is parked: origin I/O is in flight and
    /// neither direction of the socket has anything to do, so the fd is
    /// removed from the poller entirely (level-triggered readiness on an
    /// ignored direction would spin the loop).
    registered: bool,
    gen: u64,
    /// Authoritative progress deadline, in reactor-epoch milliseconds.
    /// Re-armed on protocol progress only (request parsed, output
    /// drained) — never on raw bytes, so slow-loris drips do not extend
    /// it.  The wheel holds one lazy entry per connection and re-files it
    /// against this field.
    deadline_ms: u64,
    /// `engine.requests_parsed()` as of the last progress check.
    parsed: u64,
    /// The event-loop relay currently answering this connection's cache
    /// miss, if any.  At most one per connection: misses are dispatched
    /// one at a time by the engine.
    splice: Option<ClientSplice>,
}

/// The per-thread reactor: poller, connection slab, service stack, and a
/// handle on the server-wide offload pool.
struct Reactor {
    poller: Poller,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Origin-side connections for in-flight splices, addressed by
    /// [`UPSTREAM_BASE`]-offset tokens.
    upstreams: Vec<Option<UpstreamConn>>,
    upstream_free: Vec<usize>,
    /// [`ReactorConfig::splice_origin`]: false sends every miss through
    /// the worker pool.
    splice_origin: bool,
    service: Arc<dyn HttpService>,
    ctx_factory: Arc<CtxFactory>,
    injector: Arc<Injector>,
    wake_rx: TcpStream,
    pool: Arc<WorkerPool>,
    gauge: Arc<OutputGauge>,
    stats: Arc<ServerStats>,
    next_gen: u64,
    /// Per-connection progress deadlines; also the source of the poll
    /// timeout, so deadlines fire even when no event and no wakeup ever
    /// arrives (the whole point — see `timer.rs`).
    wheel: TimerWheel,
    idle_ms: u64,
    /// Zero point for this reactor's millisecond clock.
    epoch: Instant,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn run(mut self) {
        use std::os::unix::io::AsRawFd;
        if self
            .poller
            .add(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            // Sleep until I/O, a wakeup, or the earliest possible deadline
            // — never forever while a deadline is armed.
            let timeout_ms = self
                .wheel
                .next_deadline_ms(self.now_ms())
                .map(|ms| ms.min(i32::MAX as u64) as i32)
                .unwrap_or(-1);
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                return;
            }
            for &event in &events {
                if event.token == WAKE_TOKEN {
                    self.drain_wake();
                    if self.injector.shutdown.load(Ordering::Acquire) {
                        return; // dropping the reactor closes every socket
                    }
                    self.register_injected();
                    self.run_completions();
                } else if event.token >= UPSTREAM_BASE {
                    self.drive_upstream(
                        (event.token - UPSTREAM_BASE) as usize,
                        event.readable,
                        event.writable,
                    );
                } else {
                    self.drive(event.token as usize, event.readable, event.writable);
                }
            }
            self.sweep_deadlines();
        }
    }

    /// Sweeps the timer wheel, evicting every connection whose
    /// authoritative deadline has passed.  Entries for connections that
    /// made progress since they were filed (or that are waiting on
    /// offloaded origin work — the server's own slowness must not evict
    /// the client) are re-filed instead.
    fn sweep_deadlines(&mut self) {
        let now = self.now_ms();
        let idle = self.idle_ms;
        let slab = &self.slab;
        let upstreams = &self.upstreams;
        let fired = self.wheel.expire(now, |entry| {
            if entry.idx >= UPSTREAM_BASE_IDX {
                let i = entry.idx - UPSTREAM_BASE_IDX;
                let Some(up) = upstreams.get(i).and_then(Option::as_ref) else {
                    return TimerVerdict::Drop;
                };
                if up.gen != entry.gen {
                    return TimerVerdict::Drop;
                }
                if up.paused {
                    // The client is the slow side; the origin owes nothing
                    // while reads are suspended.
                    return TimerVerdict::Refile(now + idle);
                }
                return if up.deadline_ms <= now {
                    TimerVerdict::Fire
                } else {
                    TimerVerdict::Refile(up.deadline_ms)
                };
            }
            let Some(conn) = slab.get(entry.idx).and_then(Option::as_ref) else {
                return TimerVerdict::Drop;
            };
            if conn.gen != entry.gen {
                return TimerVerdict::Drop;
            }
            if conn.engine.has_pending_work() {
                return TimerVerdict::Refile(now + idle);
            }
            if conn.deadline_ms <= now {
                TimerVerdict::Fire
            } else {
                TimerVerdict::Refile(conn.deadline_ms)
            }
        });
        for entry in fired {
            if entry.idx >= UPSTREAM_BASE_IDX {
                let i = entry.idx - UPSTREAM_BASE_IDX;
                let live = self
                    .upstreams
                    .get(i)
                    .and_then(Option::as_ref)
                    .is_some_and(|up| up.gen == entry.gen);
                if live {
                    self.stats.note_timeout();
                    self.fail_attempt(i, "stalled past the progress deadline".to_string());
                }
                continue;
            }
            let boundary = self
                .slab
                .get_mut(entry.idx)
                .and_then(Option::as_mut)
                .filter(|conn| conn.gen == entry.gen)
                .map(|conn| {
                    let at_boundary = conn.engine.at_response_boundary();
                    if at_boundary {
                        // Best-effort courtesy 408; framing-safe because
                        // nothing of a response is in flight.
                        let _ = conn.stream.write(TIMEOUT_RESPONSE);
                    }
                    at_boundary
                });
            if boundary.is_some() {
                self.stats.note_timeout();
                self.close(entry.idx);
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn register_injected(&mut self) {
        use std::os::unix::io::AsRawFd;
        let injected: Vec<_> = std::mem::take(&mut *self.injector.queue.lock());
        for (stream, peer) in injected {
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slab.push(None);
                    self.slab.len() - 1
                }
            };
            if self
                .poller
                .add(stream.as_raw_fd(), idx as u64, Interest::READ)
                .is_err()
            {
                self.free.push(idx);
                self.stats.close_connection();
                continue; // dropping the stream closes it
            }
            self.next_gen += 1;
            let deadline_ms = self.now_ms() + self.idle_ms;
            self.slab[idx] = Some(Conn {
                stream,
                engine: HttpConn::offloading(peer, self.gauge.clone()),
                interest: Interest::READ,
                registered: true,
                gen: self.next_gen,
                deadline_ms,
                parsed: 0,
                splice: None,
            });
            // One wheel entry per connection for its whole lifetime; the
            // sweep re-files it against `deadline_ms` as progress happens.
            self.wheel.insert(idx, self.next_gen, deadline_ms);
        }
    }

    /// Feeds finished offloaded work back into its connection's engine and
    /// re-arms the connection.  Stale completions — the slot died or was
    /// reused while the work ran — are identified by generation and
    /// dropped.
    fn run_completions(&mut self) {
        let completions: Vec<Completion> = std::mem::take(&mut *self.injector.completions.lock());
        for completion in completions {
            let Some(conn) = self.slab.get_mut(completion.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue;
            }
            conn.engine.complete(completion.done);
            self.progress(completion.idx);
        }
    }

    /// Ships one unit of may-block work to the pool; the completion comes
    /// back through the injector and the wake pipe.
    fn submit(&self, idx: usize, gen: u64, work: Work) {
        self.stats.note_worker_submission();
        let service = self.service.clone();
        let injector = self.injector.clone();
        self.pool.execute(Box::new(move || {
            let done = work.run(&*service);
            injector.complete(Completion { idx, gen, done });
        }));
    }

    /// Handles one readiness event: pull bytes and feed the engine while
    /// readable, then make whatever progress the engine allows.
    fn drive(&mut self, idx: usize, readable: bool, writable: bool) {
        // Progress flushes opportunistically whenever output exists, so the
        // write-readiness direction needs no handling of its own.
        let _ = writable;
        // A stale event can name a slot freed — or parked — earlier in
        // this batch.
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if !conn.registered {
            return;
        }
        if readable && conn.engine.wants_read() {
            let mut chunk = [0u8; 8192];
            let mut eof = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.engine.feed(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            if eof {
                // The engine still answers requests already buffered — a
                // client may write a complete request and half-close in
                // the same packet — then closes once input is exhausted.
                conn.engine.close();
            }
        }
        self.progress(idx);
    }

    /// Advances one connection as far as non-blocking operations allow:
    /// lets the engine parse/dispatch/pump (shipping offloaded work to the
    /// pool), flushes pending output, and reconciles the poller interest —
    /// including parking (full deregistration) when origin I/O is the only
    /// thing the connection is waiting on.
    fn progress(&mut self, idx: usize) {
        use std::os::unix::io::AsRawFd;
        let had_output = self
            .slab
            .get(idx)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.engine.has_unsent_output());
        loop {
            // Generate: parse, inline-dispatch, pump; ship may-block work.
            loop {
                let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                let gen = conn.gen;
                let Some(work) = conn
                    .engine
                    .advance(&*self.service, self.ctx_factory.as_ref())
                else {
                    break;
                };
                self.route_work(idx, gen, work);
            }
            // Flush opportunistically; a drained window lets the next
            // generate pass pull more of a streamed response.
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let mut wrote = false;
            let mut would_block = false;
            while conn.engine.has_unsent_output() {
                // Gather-write the whole pending window (compacted head
                // buffer plus queued body parts) in one syscall.
                let result = {
                    let slices = conn.engine.output_slices();
                    conn.stream.write_vectored(&slices)
                };
                match result {
                    Ok(0) => {
                        self.close(idx);
                        return;
                    }
                    Ok(n) => {
                        conn.engine.advance_output(n);
                        wrote = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        would_block = true;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            if would_block || !wrote {
                break;
            }
        }
        let now = self.now_ms();
        let idle = self.idle_ms;
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.engine.done() {
            self.close(idx);
            return;
        }
        // Progress check: a newly parsed request or a fully drained output
        // re-arms the deadline.  Raw bytes deliberately do not.
        let parsed_now = conn.engine.requests_parsed();
        let drained = had_output && !conn.engine.has_unsent_output();
        if parsed_now != conn.parsed || drained {
            conn.parsed = parsed_now;
            conn.deadline_ms = now + idle;
        }
        let wanted = Interest {
            readable: conn.engine.wants_read(),
            writable: conn.engine.has_unsent_output(),
        };
        let fd = conn.stream.as_raw_fd();
        if !wanted.readable && !wanted.writable {
            // Parked: the connection is waiting only on offloaded origin
            // I/O (or, transiently, on nothing — impossible while open).
            // Deregister entirely; the completion re-arms it.
            if conn.registered {
                let _ = self.poller.remove(fd);
                conn.registered = false;
            }
        } else if !conn.registered {
            if self.poller.add(fd, idx as u64, wanted).is_err() {
                self.close(idx);
                return;
            }
            conn.registered = true;
            conn.interest = wanted;
        } else if wanted != conn.interest {
            if self.poller.modify(fd, idx as u64, wanted).is_err() {
                self.close(idx);
                return;
            }
            conn.interest = wanted;
        }
    }

    fn close(&mut self, idx: usize) {
        use std::os::unix::io::AsRawFd;
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            if conn.registered {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
            }
            if let Some(splice) = conn.splice {
                // A dying client takes its origin-side half with it; the
                // generation check skips upstreams already replaced.
                let paired = self
                    .upstreams
                    .get(splice.upstream)
                    .and_then(Option::as_ref)
                    .is_some_and(|up| up.gen == splice.upstream_gen);
                if paired {
                    self.teardown_upstream(splice.upstream);
                }
            }
            self.stats.close_connection();
            self.free.push(idx);
            // conn drops here, closing the socket.  Any work still in
            // flight for it completes harmlessly: the generation check in
            // run_completions drops the orphaned completion.
        }
    }

    /// Routes one unit of may-block work: spliceable service calls become
    /// event-loop relays, body pulls for an active splice park on its
    /// queue, and everything else ships to the worker pool.
    fn route_work(&mut self, idx: usize, gen: u64, work: Work) {
        match work {
            Work::Call { request, ctx } => {
                let spliceable = self.splice_origin
                    && self
                        .slab
                        .get(idx)
                        .and_then(Option::as_ref)
                        .is_some_and(|conn| conn.splice.is_none());
                if spliceable {
                    if let Some(plan) = self.service.relay_plan(&request, &ctx) {
                        if self.start_splice(idx, gen, plan) {
                            return;
                        }
                    }
                }
                self.submit(idx, gen, Work::Call { request, ctx });
            }
            Work::Pull { body } => {
                if self.splice_owns(idx, &body) {
                    self.park_splice_work(idx, Work::Pull { body });
                } else {
                    self.submit(idx, gen, Work::Pull { body });
                }
            }
            Work::Buffer { body } => {
                if self.splice_owns(idx, &body) {
                    self.park_splice_work(idx, Work::Buffer { body });
                } else {
                    self.submit(idx, gen, Work::Buffer { body });
                }
            }
        }
    }

    /// Whether `body` is the delivered response body of `idx`'s splice.
    /// Pulls for earlier pipelined responses (identity mismatch) keep
    /// their worker-pool path.
    fn splice_owns(&self, idx: usize, body: &Body) -> bool {
        self.slab
            .get(idx)
            .and_then(Option::as_ref)
            .and_then(|conn| conn.splice.as_ref())
            .is_some_and(|splice| splice.body.as_ref() == Some(body))
    }

    /// Parks a body pull/buffer on the splice queue and fulfills it right
    /// away if the queue already has what it needs.  A parked `Buffer`
    /// needs the whole body, so the upstream must never pause for it.
    fn park_splice_work(&mut self, idx: usize, work: Work) {
        let unbounded = matches!(work, Work::Buffer { .. });
        let Some(splice) = self
            .slab
            .get_mut(idx)
            .and_then(Option::as_mut)
            .and_then(|conn| conn.splice.as_mut())
        else {
            return;
        };
        splice.parked = Some(work);
        let upstream = splice.upstream;
        let upstream_gen = splice.upstream_gen;
        if unbounded {
            self.resume_upstream(upstream, upstream_gen);
        }
        self.try_fulfill(idx);
    }

    /// Completes the parked body work of `idx`'s splice if its queue is
    /// ready.  Returns true when the engine consumed a completion — the
    /// caller outside `progress` should then drive `progress` itself.
    fn try_fulfill(&mut self, idx: usize) -> bool {
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        let Some(splice) = conn.splice.as_mut() else {
            return false;
        };
        let Some(work) = splice.parked.take() else {
            return false;
        };
        let shared = splice.shared.clone();
        let upstream = splice.upstream;
        let upstream_gen = splice.upstream_gen;
        match work {
            Work::Pull { mut body } => {
                if !shared.pull_ready() {
                    splice.parked = Some(Work::Pull { body });
                    return false;
                }
                // Pulling through the body handle (not the queue directly)
                // keeps the cache-capture tee on the path.
                let read = body.read_chunk();
                let finished = matches!(read, Ok(None) | Err(_));
                if finished {
                    conn.splice = None;
                }
                conn.engine.complete(Done::Pull(read));
                if !finished {
                    self.maybe_resume_upstream(upstream, upstream_gen);
                }
                true
            }
            Work::Buffer { body } => {
                if !shared.input_finished() {
                    splice.parked = Some(Work::Buffer { body });
                    return false;
                }
                conn.splice = None;
                // The whole body is queued, so buffering cannot block.
                let service = self.service.clone();
                let done = Work::Buffer { body }.run(&*service);
                conn.engine.complete(done);
                true
            }
            Work::Call { .. } => {
                // Calls are never parked (see park_splice_work).
                debug_assert!(false, "a service call cannot park on a splice");
                false
            }
        }
    }

    /// Adopts a relay plan for the client at `idx`: opens the first viable
    /// upstream non-blocking and registers it with the poller.  Returns
    /// false — before any side effect — when the plan cannot be spliced
    /// (non-literal host), sending the call to the worker pool instead.
    fn start_splice(&mut self, idx: usize, gen: u64, plan: RelayPlan) -> bool {
        use std::os::unix::io::AsRawFd;
        if plan.attempts.is_empty() {
            return false;
        }
        // The event loop cannot afford blocking DNS: every attempt must
        // name a literal IPv4 host or the whole plan falls back.
        let mut addrs = Vec::with_capacity(plan.attempts.len());
        for attempt in &plan.attempts {
            match attempt.host.parse::<Ipv4Addr>() {
                Ok(ip) => addrs.push(SocketAddrV4::new(ip, attempt.port)),
                Err(_) => return false,
            }
        }
        (plan.on_start)();
        let mut attempt = 0;
        let mut last_error = String::from("no viable upstream");
        let opened = loop {
            if attempt >= plan.attempts.len() {
                break None;
            }
            match connect_nonblocking_v4(addrs[attempt]) {
                Ok((stream, ready)) => {
                    let _ = stream.set_nodelay(true);
                    break Some((stream, ready));
                }
                Err(e) => {
                    last_error = format!("{}: connect failed: {e}", plan.attempts[attempt].label);
                    if let Some(on_fail) = &plan.attempts[attempt].on_fail {
                        on_fail();
                    }
                    attempt += 1;
                }
            }
        };
        let Some((stream, ready)) = opened else {
            self.deliver_response(idx, gen, (plan.fail)(&last_error));
            return true;
        };
        let i = match self.upstream_free.pop() {
            Some(i) => i,
            None => {
                self.upstreams.push(None);
                self.upstreams.len() - 1
            }
        };
        self.next_gen += 1;
        let ugen = self.next_gen;
        let interest = Interest {
            readable: false,
            writable: true,
        };
        if self
            .poller
            .add(stream.as_raw_fd(), UPSTREAM_BASE + i as u64, interest)
            .is_err()
        {
            self.upstream_free.push(i);
            self.deliver_response(idx, gen, (plan.fail)("upstream registration failed"));
            return true;
        }
        let deadline_ms = self.now_ms() + self.idle_ms;
        let shared = Arc::new(SpliceShared::default());
        self.upstreams[i] = Some(UpstreamConn {
            stream,
            gen: ugen,
            client: idx,
            client_gen: gen,
            state: if ready {
                UpstreamState::Sending
            } else {
                UpstreamState::Connecting
            },
            plan,
            attempt,
            wire_written: 0,
            relay: ResponseRelay::new(),
            shared: shared.clone(),
            interest,
            registered: true,
            paused: false,
            head_delivered: false,
            deadline_ms,
        });
        self.wheel.insert(UPSTREAM_BASE_IDX + i, ugen, deadline_ms);
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) {
            if conn.gen == gen {
                conn.splice = Some(ClientSplice {
                    shared,
                    upstream: i,
                    upstream_gen: ugen,
                    body: None,
                    parked: None,
                });
            }
        }
        true
    }

    /// Feeds a ready response into the client engine, generation-guarded.
    /// The caller drives `progress` (or is inside it already).
    fn deliver_response(&mut self, idx: usize, gen: u64, response: Response) {
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) {
            if conn.gen == gen {
                conn.engine.complete(Done::Call(Ok(response)));
            }
        }
    }

    /// Handles one readiness event for an upstream connection: finish the
    /// non-blocking connect, write the request, read and relay the
    /// response.
    fn drive_upstream(&mut self, i: usize, readable: bool, writable: bool) {
        use std::os::unix::io::AsRawFd;
        let now = self.now_ms();
        let idle = self.idle_ms;
        let Some(up) = self.upstreams.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        if !up.registered {
            return;
        }
        if matches!(up.state, UpstreamState::Connecting) {
            if !writable {
                return;
            }
            match up.stream.take_error() {
                Ok(None) => {
                    if up.stream.peer_addr().is_err() {
                        return; // spurious wakeup; not connected yet
                    }
                    up.state = UpstreamState::Sending;
                    up.deadline_ms = now + idle;
                }
                Ok(Some(e)) | Err(e) => {
                    let label = up.plan.attempts[up.attempt].label.clone();
                    return self.fail_attempt(i, format!("{label}: connect failed: {e}"));
                }
            }
        }
        if matches!(up.state, UpstreamState::Sending) {
            loop {
                let wire = &up.plan.attempts[up.attempt].wire;
                if up.wire_written >= wire.len() {
                    break;
                }
                match up.stream.write(&wire[up.wire_written..]) {
                    Ok(0) => {
                        let label = up.plan.attempts[up.attempt].label.clone();
                        return self.fail_attempt(i, format!("{label}: closed during request"));
                    }
                    Ok(n) => {
                        up.wire_written += n;
                        up.deadline_ms = now + idle;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let label = up.plan.attempts[up.attempt].label.clone();
                        return self.fail_attempt(i, format!("{label}: write failed: {e}"));
                    }
                }
            }
            up.state = UpstreamState::Reading;
            up.interest = Interest::READ;
            let fd = up.stream.as_raw_fd();
            if self
                .poller
                .modify(fd, UPSTREAM_BASE + i as u64, Interest::READ)
                .is_err()
            {
                let label = up.plan.attempts[up.attempt].label.clone();
                return self.fail_attempt(i, format!("{label}: poller failure"));
            }
        }
        if !matches!(up.state, UpstreamState::Reading) || !readable {
            return;
        }
        // Backpressure check before reading: a client that stopped pulling
        // (its own socket is stalled) must not let the queue grow without
        // bound — unless the client decided to buffer the whole body.
        let client_buffering = self
            .slab
            .get(up.client)
            .and_then(Option::as_ref)
            .and_then(|conn| conn.splice.as_ref())
            .is_some_and(|splice| matches!(splice.parked, Some(Work::Buffer { .. })));
        if up.shared.queued() >= SPLICE_HIGH_WATER_BYTES && !client_buffering {
            self.pause_upstream(i);
            return;
        }
        let mut events = Vec::new();
        // Ok(false) = keep reading later; Ok(true) = response complete.
        let mut outcome: Result<bool, String> = Ok(false);
        let mut read_bytes = 0usize;
        loop {
            let mut chunk = [0u8; 16384];
            match up.stream.read(&mut chunk) {
                Ok(0) => {
                    outcome = up.relay.close().map(|()| true);
                    break;
                }
                Ok(n) => {
                    read_bytes += n;
                    if let Err(e) = up.relay.feed(&chunk[..n], &mut events) {
                        outcome = Err(e);
                        break;
                    }
                    if up.relay.is_done() {
                        outcome = Ok(true);
                        break;
                    }
                    if read_bytes >= SPLICE_HIGH_WATER_BYTES {
                        break; // level-triggered: the rest re-fires
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    outcome = Err(format!("read failed: {e}"));
                    break;
                }
            }
        }
        if read_bytes > 0 {
            up.deadline_ms = now + idle;
        }
        self.handle_upstream_events(i, events, outcome);
    }

    /// Applies what an upstream read produced: delivers the head to the
    /// client, queues body data, finishes the exchange or fails the
    /// attempt/stream.
    fn handle_upstream_events(
        &mut self,
        i: usize,
        events: Vec<RelayEvent>,
        outcome: Result<bool, String>,
    ) {
        let mut touched_client = None;
        for event in events {
            let Some(up) = self.upstreams.get_mut(i).and_then(Option::as_mut) else {
                return; // torn down mid-batch
            };
            match event {
                RelayEvent::Head {
                    response,
                    declared,
                    has_body,
                } => {
                    let attempt = &up.plan.attempts[up.attempt];
                    if attempt.fallback_on_error_status && !response.status.is_success() {
                        let reason = format!("{}: answered {}", attempt.label, response.status);
                        // Remaining events belong to the rejected attempt.
                        return self.fail_attempt(i, reason);
                    }
                    let client = up.client;
                    let client_gen = up.client_gen;
                    let winning = up.attempt;
                    let shared = up.shared.clone();
                    let mut response = *response;
                    response.body = if has_body {
                        Body::stream(SpliceSource { shared }, declared)
                    } else {
                        Body::empty()
                    };
                    up.head_delivered = true;
                    let response = (up.plan.finish)(response, winning);
                    // Record the final (cache-capture-teed) body so later
                    // pulls can be matched back to this splice.
                    let body_handle = response.body.clone();
                    let delivered = self
                        .slab
                        .get_mut(client)
                        .and_then(Option::as_mut)
                        .filter(|conn| conn.gen == client_gen)
                        .map(|conn| {
                            if let Some(splice) = conn.splice.as_mut() {
                                splice.body = Some(body_handle);
                            }
                            conn.engine.complete(Done::Call(Ok(response)));
                        })
                        .is_some();
                    if !delivered {
                        // The client died while we connected; nobody is
                        // left to relay to.
                        return self.teardown_upstream(i);
                    }
                    self.stats.note_spliced_relay();
                    touched_client = Some(client);
                }
                RelayEvent::Data(data) => {
                    up.shared.push(data);
                    touched_client = Some(up.client);
                }
                RelayEvent::BodyDone => {
                    up.shared.set_eof();
                    touched_client = Some(up.client);
                    self.teardown_upstream(i);
                }
            }
        }
        match outcome {
            Ok(false) => {}
            Ok(true) => {
                // Clean end of the exchange; a no-op when BodyDone already
                // tore the slot down.
                if let Some(up) = self.upstreams.get(i).and_then(Option::as_ref) {
                    touched_client = Some(up.client);
                    self.teardown_upstream(i);
                }
            }
            Err(reason) => {
                if let Some(up) = self.upstreams.get(i).and_then(Option::as_ref) {
                    let label = up.plan.attempts[up.attempt].label.clone();
                    touched_client = Some(up.client);
                    self.fail_attempt(i, format!("{label}: {reason}"));
                }
            }
        }
        if let Some(client) = touched_client {
            // Unconditional: a delivered head (no parked work yet) must
            // still pump the response toward the client socket.
            self.try_fulfill(client);
            self.progress(client);
        }
    }

    /// The current attempt is unusable before its head was accepted: run
    /// its failure side effects and move to the next attempt, or deliver
    /// the plan's failure response when none remain.  After a head was
    /// delivered the failure belongs to `fail_stream` instead.
    fn fail_attempt(&mut self, i: usize, reason: String) {
        use std::os::unix::io::AsRawFd;
        let head_delivered = match self.upstreams.get(i).and_then(Option::as_ref) {
            Some(up) => up.head_delivered,
            None => return,
        };
        if head_delivered {
            return self.fail_stream(i, reason);
        }
        let now = self.now_ms();
        let idle = self.idle_ms;
        let Some(up) = self.upstreams.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        if let Some(on_fail) = &up.plan.attempts[up.attempt].on_fail {
            on_fail();
        }
        if up.registered {
            let _ = self.poller.remove(up.stream.as_raw_fd());
            up.registered = false;
        }
        up.attempt += 1;
        let mut last_error = reason;
        while up.attempt < up.plan.attempts.len() {
            let attempt = &up.plan.attempts[up.attempt];
            let addr = match attempt.host.parse::<Ipv4Addr>() {
                Ok(ip) => SocketAddrV4::new(ip, attempt.port),
                Err(_) => {
                    // Cannot happen — start_splice vetted every host — but
                    // treated as an attempt failure all the same.
                    last_error = format!("{}: non-literal host", attempt.label);
                    if let Some(on_fail) = &attempt.on_fail {
                        on_fail();
                    }
                    up.attempt += 1;
                    continue;
                }
            };
            match connect_nonblocking_v4(addr) {
                Ok((stream, ready)) => {
                    let _ = stream.set_nodelay(true);
                    // Fresh generation: the previous attempt's wheel entry
                    // (possibly already fired) must not evict this one.
                    self.next_gen += 1;
                    let ugen = self.next_gen;
                    let interest = Interest {
                        readable: false,
                        writable: true,
                    };
                    if self
                        .poller
                        .add(stream.as_raw_fd(), UPSTREAM_BASE + i as u64, interest)
                        .is_err()
                    {
                        last_error = format!("{}: poller failure", attempt.label);
                        if let Some(on_fail) = &attempt.on_fail {
                            on_fail();
                        }
                        up.attempt += 1;
                        continue;
                    }
                    up.stream = stream;
                    up.gen = ugen;
                    up.state = if ready {
                        UpstreamState::Sending
                    } else {
                        UpstreamState::Connecting
                    };
                    up.wire_written = 0;
                    up.relay = ResponseRelay::new();
                    up.interest = interest;
                    up.registered = true;
                    up.paused = false;
                    up.deadline_ms = now + idle;
                    let client = up.client;
                    let client_gen = up.client_gen;
                    self.wheel.insert(UPSTREAM_BASE_IDX + i, ugen, now + idle);
                    if let Some(splice) = self
                        .slab
                        .get_mut(client)
                        .and_then(Option::as_mut)
                        .filter(|conn| conn.gen == client_gen)
                        .and_then(|conn| conn.splice.as_mut())
                    {
                        splice.upstream_gen = ugen;
                    }
                    return;
                }
                Err(e) => {
                    last_error = format!("{}: connect failed: {e}", attempt.label);
                    if let Some(on_fail) = &attempt.on_fail {
                        on_fail();
                    }
                    up.attempt += 1;
                }
            }
        }
        // Every attempt failed before delivering a head: the client gets
        // the plan's failure response (a 502, not a dropped connection).
        let client = up.client;
        let client_gen = up.client_gen;
        let response = (up.plan.fail)(&last_error);
        self.teardown_upstream(i);
        if let Some(conn) = self
            .slab
            .get_mut(client)
            .and_then(Option::as_mut)
            .filter(|conn| conn.gen == client_gen)
        {
            conn.splice = None;
            conn.engine.complete(Done::Call(Ok(response)));
        }
        self.progress(client);
    }

    /// The response head was already relayed when the upstream died: the
    /// client's framing cannot be repaired, so poison the queue — the next
    /// body pull aborts the connection, a truncation the client detects.
    fn fail_stream(&mut self, i: usize, reason: String) {
        let Some(up) = self.upstreams.get(i).and_then(Option::as_ref) else {
            return;
        };
        let client = up.client;
        up.shared.set_error(reason);
        self.stats.note_relay_abort();
        self.teardown_upstream(i);
        self.try_fulfill(client);
        self.progress(client);
    }

    fn teardown_upstream(&mut self, i: usize) {
        use std::os::unix::io::AsRawFd;
        if let Some(up) = self.upstreams.get_mut(i).and_then(Option::take) {
            if up.registered {
                let _ = self.poller.remove(up.stream.as_raw_fd());
            }
            self.upstream_free.push(i);
            // The slot's wheel entry drops at its next sweep: the slot is
            // now empty or regenerated, both judged `Drop`.
        }
    }

    /// Suspends upstream reads while the client's splice queue is over the
    /// high-water mark.
    fn pause_upstream(&mut self, i: usize) {
        use std::os::unix::io::AsRawFd;
        if let Some(up) = self.upstreams.get_mut(i).and_then(Option::as_mut) {
            if up.registered {
                let _ = self.poller.remove(up.stream.as_raw_fd());
                up.registered = false;
            }
            up.paused = true;
        }
    }

    /// Resumes a paused upstream once the client drained the queue below
    /// the low-water mark.
    fn maybe_resume_upstream(&mut self, i: usize, gen: u64) {
        let drained = self
            .upstreams
            .get(i)
            .and_then(Option::as_ref)
            .is_some_and(|up| {
                up.gen == gen && up.paused && up.shared.queued() < SPLICE_LOW_WATER_BYTES
            });
        if drained {
            self.resume_upstream(i, gen);
        }
    }

    /// Unconditionally resumes a paused upstream (the client committed to
    /// buffering the whole body).
    fn resume_upstream(&mut self, i: usize, gen: u64) {
        use std::os::unix::io::AsRawFd;
        let Some(up) = self.upstreams.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        if up.gen != gen || !up.paused {
            return;
        }
        up.paused = false;
        if !up.registered
            && self
                .poller
                .add(up.stream.as_raw_fd(), UPSTREAM_BASE + i as u64, up.interest)
                .is_ok()
        {
            up.registered = true;
        }
        // On a registration failure the deadline sweep evicts the stream.
    }
}

/// A non-blocking HTTP/1.1 server fronting any [`HttpService`] with a small
/// set of reactor threads plus an offload worker pool for blocking origin
/// I/O (the design notes live at the top of `nakika-server/src/reactor.rs`;
/// the narrative version is `docs/ARCHITECTURE.md`).
///
/// The public surface mirrors the threaded server — [`start`], [`addr`],
/// [`base_url`] — plus [`start_with_config`] for pinning the thread counts
/// ([`ReactorConfig`]); the usual way to get one is
/// [`HttpServer::start_with`](crate::HttpServer::start_with) with
/// [`Transport::Reactor`](crate::Transport).
///
/// [`start`]: ReactorServer::start
/// [`start_with_config`]: ReactorServer::start_with_config
/// [`addr`]: ReactorServer::addr
/// [`base_url`]: ReactorServer::base_url
pub struct ReactorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<(Arc<Injector>, Option<JoinHandle<()>>)>,
    gauge: Arc<OutputGauge>,
    stats: Arc<ServerStats>,
    // Held only for its Drop: declared after the reactor handles, so the
    // offload workers are joined only once every reactor thread — which
    // shares the pool — has been joined by Drop above.
    _pool: Arc<WorkerPool>,
}

impl ReactorServer {
    /// Starts a reactor server on `127.0.0.1:port` (port 0 picks a free
    /// port) serving `service` until the value is dropped, with derived
    /// thread counts ([`ReactorConfig::default`]).
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> io::Result<ReactorServer> {
        ReactorServer::start_with_config(port, service, ReactorConfig::default())
    }

    /// Starts a reactor server with explicit sizing knobs.
    pub fn start_with_config(
        port: u16,
        service: Arc<dyn HttpService>,
        config: ReactorConfig,
    ) -> io::Result<ReactorServer> {
        let reactor_count = config.resolved_reactors();
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));
        let gauge = Arc::new(OutputGauge::default());
        let stats = Arc::new(ServerStats::default());
        let pool = Arc::new(WorkerPool::new(config.resolved_workers()));
        let idle_ms = config.options.resolved_idle_timeout_ms();
        let max_connections = config.options.max_connections;

        // Create every fallible resource (wake pairs, epoll fds) before
        // spawning any thread: a mid-loop failure (fd exhaustion) must not
        // leave earlier reactors running un-joinable forever.
        let mut reactors = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            let (wake_tx, wake_rx) = wake_pair()?;
            let injector = Arc::new(Injector {
                queue: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                wake_tx,
            });
            let epoch = Instant::now();
            reactors.push(Reactor {
                poller: Poller::new()?,
                slab: Vec::new(),
                free: Vec::new(),
                upstreams: Vec::new(),
                upstream_free: Vec::new(),
                splice_origin: config.splice_origin,
                service: service.clone(),
                ctx_factory: ctx_factory.clone(),
                injector,
                wake_rx,
                pool: pool.clone(),
                gauge: gauge.clone(),
                stats: stats.clone(),
                next_gen: 0,
                wheel: TimerWheel::new(WHEEL_TICK_MS, WHEEL_SLOTS, 0),
                idle_ms,
                epoch,
            });
        }
        let mut workers = Vec::with_capacity(reactor_count);
        let mut injectors = Vec::with_capacity(reactor_count);
        for reactor in reactors {
            let injector = reactor.injector.clone();
            let handle = std::thread::spawn(move || reactor.run());
            injectors.push(injector.clone());
            workers.push((injector, Some(handle)));
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        // Same accept discipline as the threaded server: block in accept,
        // let Drop wake it with a bare connect so the flag check runs.
        let accept_stats = stats.clone();
        let acceptor = std::thread::spawn(move || {
            let mut next = 0usize;
            while let Ok((mut stream, peer)) = listener.accept() {
                if shutdown_flag.load(Ordering::Relaxed) {
                    break;
                }
                if !accept_stats.try_open(max_connections) {
                    // Over the cap: canned 503, immediate close, no slab
                    // slot spent on the peer.
                    let _ = stream.write_all(OVER_CAP_RESPONSE);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    accept_stats.close_connection();
                    continue;
                }
                let _ = stream.set_nodelay(true);
                injectors[next % injectors.len()].push(stream, peer.ip());
                next += 1;
            }
        });

        Ok(ReactorServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            gauge,
            stats,
            _pool: pool,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Highest number of serialized-but-unsent bytes any of this server's
    /// connections has held — see
    /// [`HttpServer::peak_buffered_output`](crate::HttpServer::peak_buffered_output).
    pub fn peak_buffered_output(&self) -> usize {
        self.gauge.peak()
    }

    /// This server's survival counters (deadline evictions, over-cap
    /// rejections, open connections).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept so the loop observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for (injector, handle) in &mut self.workers {
            injector.shutdown();
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
        // self.pool drops after this, joining the offload workers; any job
        // still queued is discarded (its completion has no audience).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http_get;
    use nakika_core::service::RelayAttempt;
    use nakika_core::service::{service_fn, DispatchHint, NakikaError, RequestCtx};
    use nakika_http::{serialize_request, ParseOutcome, Request, Response, StatusCode};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx| {
            Ok(
                Response::ok("text/html", format!("reactor origin: {}", request.uri.path))
                    .with_header("Cache-Control", "max-age=60"),
            )
        })
    }

    #[test]
    fn reactor_round_trip() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn reactor_keep_alive_serves_many_requests_on_one_connection() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..5 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed a keep-alive connection");
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn reactor_answers_pipelined_requests_in_order() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut batch = Vec::new();
        for i in 0..3 {
            batch.extend_from_slice(&serialize_request(&Request::get(&format!(
                "http://{}/p{i}",
                server.addr()
            ))));
        }
        stream.write_all(&batch).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut bodies = Vec::new();
        while bodies.len() < 3 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            buffer.extend_from_slice(&chunk[..n]);
            while let Ok(ParseOutcome::Complete { message, consumed }) =
                nakika_http::parse_response(&buffer)
            {
                buffer.drain(..consumed);
                bodies.push(message.body.to_text());
            }
        }
        for (i, body) in bodies.iter().enumerate() {
            assert!(body.contains(&format!("/p{i}")), "order preserved: {body}");
        }
    }

    #[test]
    fn request_with_immediate_half_close_still_gets_a_response() {
        // One-shot clients often write the request and shutdown(SHUT_WR) in
        // one go, so the reactor can see the bytes and the FIN in a single
        // readiness event.  The buffered request must still be answered —
        // including when its service call is offloaded to a worker.
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = Request::get(&format!("http://{}/half-close", server.addr()));
        stream.write_all(&serialize_request(&req)).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read failed: {e}"),
            }
        }
        match nakika_http::parse_response(&buffer) {
            Ok(ParseOutcome::Complete { message, .. }) => {
                assert!(message.body.to_text().contains("/half-close"))
            }
            other => panic!("expected a complete response, got {other:?}"),
        }
    }

    #[test]
    fn reactor_rejects_malformed_requests_with_400() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_reactor_stops_accepting_deterministically() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        // Drop joins the acceptor, every reactor thread, and the offload
        // pool, so by the time it returns nothing serves the port — no
        // sleep needed.
        drop(server);
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }

    /// A service whose `/slow/…` calls block for `delay` (always classified
    /// `MayBlock`) while everything else answers instantly inline.
    struct SlowColdService {
        delay: Duration,
    }

    impl HttpService for SlowColdService {
        fn call(&self, req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
            if req.uri.path.starts_with("/slow/") {
                std::thread::sleep(self.delay);
            }
            Ok(Response::ok("text/plain", req.uri.path.clone()))
        }

        fn dispatch_hint(&self, req: &Request, _ctx: &RequestCtx) -> DispatchHint {
            if req.uri.path.starts_with("/slow/") {
                DispatchHint::MayBlock
            } else {
                DispatchHint::Inline
            }
        }
    }

    #[test]
    fn offloaded_slow_call_does_not_stall_other_connections() {
        // One reactor thread, so without offloading the slow call would
        // freeze every connection on the server.
        let server = ReactorServer::start_with_config(
            0,
            Arc::new(SlowColdService {
                delay: Duration::from_millis(150),
            }),
            ReactorConfig {
                reactors: 1,
                workers: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let slow_url = format!("{base}/slow/origin.html");
        let slow = std::thread::spawn(move || {
            let start = Instant::now();
            let response = http_get(&slow_url).unwrap();
            assert_eq!(response.body.to_text(), "/slow/origin.html");
            start.elapsed()
        });
        // Give the slow request a head start so it is parked when the fast
        // ones arrive.
        std::thread::sleep(Duration::from_millis(30));
        let fast_start = Instant::now();
        for i in 0..5 {
            let response = http_get(&format!("{base}/fast/{i}")).unwrap();
            assert_eq!(response.body.to_text(), format!("/fast/{i}"));
        }
        let fast_elapsed = fast_start.elapsed();
        let slow_elapsed = slow.join().unwrap();
        assert!(
            slow_elapsed >= Duration::from_millis(140),
            "the slow call really blocked its worker: {slow_elapsed:?}"
        );
        assert!(
            fast_elapsed < slow_elapsed,
            "fast requests finished while the slow call was parked \
             (fast {fast_elapsed:?} vs slow {slow_elapsed:?})"
        );
    }

    /// A service whose relay plan the test scripts directly: each attempt
    /// names a loopback port and the wire to write there.  `call` is the
    /// threaded fallback the splice exists to avoid — its marker body must
    /// never reach a client while the reactor adopts the plan.
    struct ScriptedPlan {
        attempts: Vec<(u16, Vec<u8>)>,
        attempt_failures: Arc<AtomicU64>,
        /// Winning attempt index + 1 as seen by `finish`; 0 = never ran.
        winning_attempt: Arc<AtomicU64>,
    }

    impl HttpService for ScriptedPlan {
        fn call(&self, _req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
            Ok(Response::ok("text/plain", "threaded fallback"))
        }

        fn dispatch_hint(&self, _req: &Request, _ctx: &RequestCtx) -> DispatchHint {
            DispatchHint::MayBlock
        }

        fn relay_plan(&self, _req: &Request, _ctx: &RequestCtx) -> Option<RelayPlan> {
            let winning = self.winning_attempt.clone();
            Some(RelayPlan {
                attempts: self
                    .attempts
                    .iter()
                    .map(|(port, wire)| {
                        let failures = self.attempt_failures.clone();
                        RelayAttempt {
                            host: "127.0.0.1".to_string(),
                            port: *port,
                            wire: wire.clone(),
                            label: format!("upstream :{port}"),
                            fallback_on_error_status: false,
                            on_fail: Some(Arc::new(move || {
                                failures.fetch_add(1, Ordering::Relaxed);
                            })),
                        }
                    })
                    .collect(),
                on_start: Arc::new(|| {}),
                finish: Arc::new(move |response, index| {
                    winning.store(index as u64 + 1, Ordering::Relaxed);
                    response
                }),
                fail: Arc::new(|reason| {
                    let mut response =
                        Response::ok("text/plain", format!("relay failed: {reason}"));
                    response.status = StatusCode::BAD_GATEWAY;
                    response
                }),
            })
        }
    }

    /// A raw single-exchange origin: accepts one connection, reads exactly
    /// `expect` request bytes, writes `reply`, and closes.  Never parses —
    /// tests that hand it a giant wire only care about the byte count.
    fn raw_origin(expect: usize, reply: Vec<u8>) -> u16 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let mut seen = 0usize;
                let mut chunk = [0u8; 65536];
                while seen < expect {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => seen += n,
                    }
                }
                let _ = stream.write_all(&reply);
            }
        });
        port
    }

    /// A port with nothing listening behind it: bound, then released.
    fn refused_port() -> u16 {
        TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port()
    }

    fn one_loop_splice_server(service: Arc<dyn HttpService>) -> ReactorServer {
        ReactorServer::start_with_config(
            0,
            service,
            ReactorConfig {
                reactors: 1,
                workers: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn refused_connect_falls_back_to_the_next_attempt() {
        // The first upstream refuses the connection — either immediately or
        // via the Connecting state's SO_ERROR check after EINPROGRESS — and
        // the splice must move on to the second attempt, still with zero
        // worker hand-offs.
        let dead = refused_port();
        let wire = serialize_request(
            &Request::get(&format!("http://127.0.0.1:{dead}/f")).with_header("Connection", "close"),
        );
        let reply = b"HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\nfallback".to_vec();
        let live = raw_origin(wire.len(), reply);
        let failures = Arc::new(AtomicU64::new(0));
        let winning = Arc::new(AtomicU64::new(0));
        let service: Arc<dyn HttpService> = Arc::new(ScriptedPlan {
            attempts: vec![(dead, wire.clone()), (live, wire)],
            attempt_failures: failures.clone(),
            winning_attempt: winning.clone(),
        });
        let server = one_loop_splice_server(service);
        let response = http_get(&format!("{}/f", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert_eq!(response.body.to_text(), "fallback");
        assert_eq!(failures.load(Ordering::Relaxed), 1);
        assert_eq!(
            winning.load(Ordering::Relaxed),
            2,
            "finish saw attempt 1 win"
        );
        assert_eq!(server.stats().worker_submissions(), 0);
        assert_eq!(server.stats().spliced_relays(), 1);
    }

    #[test]
    fn connect_refused_on_every_attempt_renders_the_plan_failure() {
        let a = refused_port();
        let b = refused_port();
        let wire = serialize_request(
            &Request::get(&format!("http://127.0.0.1:{a}/dead")).with_header("Connection", "close"),
        );
        let failures = Arc::new(AtomicU64::new(0));
        let winning = Arc::new(AtomicU64::new(0));
        let service: Arc<dyn HttpService> = Arc::new(ScriptedPlan {
            attempts: vec![(a, wire.clone()), (b, wire)],
            attempt_failures: failures.clone(),
            winning_attempt: winning.clone(),
        });
        let server = one_loop_splice_server(service);
        let response = http_get(&format!("{}/dead", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::BAD_GATEWAY);
        assert!(
            response.body.to_text().contains("connect failed"),
            "failure response names the cause: {}",
            response.body.to_text()
        );
        assert_eq!(
            failures.load(Ordering::Relaxed),
            2,
            "every attempt ran its on_fail"
        );
        assert_eq!(winning.load(Ordering::Relaxed), 0, "finish never ran");
        assert_eq!(server.stats().worker_submissions(), 0);
        assert_eq!(server.stats().spliced_relays(), 0);
        assert_eq!(
            server.stats().relay_aborts(),
            0,
            "pre-head failures are not aborts"
        );
    }

    #[test]
    fn giant_upstream_request_survives_partial_writes() {
        // An 8 MiB upstream wire cannot fit any loopback send buffer, so
        // the Sending state must hit WouldBlock and resume across many
        // writability events before the exchange can complete.
        let mut wire = b"GET /big HTTP/1.1\r\nHost: pad\r\nConnection: close\r\nX-Pad: ".to_vec();
        wire.extend_from_slice(&vec![b'a'; 8 * 1024 * 1024]);
        wire.extend_from_slice(b"\r\n\r\n");
        let reply = b"HTTP/1.1 200 OK\r\nContent-Length: 13\r\n\r\npartial write".to_vec();
        let origin = raw_origin(wire.len(), reply);
        let failures = Arc::new(AtomicU64::new(0));
        let winning = Arc::new(AtomicU64::new(0));
        let service: Arc<dyn HttpService> = Arc::new(ScriptedPlan {
            attempts: vec![(origin, wire)],
            attempt_failures: failures.clone(),
            winning_attempt: winning.clone(),
        });
        let server = one_loop_splice_server(service);
        let response = http_get(&format!("{}/big", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert_eq!(response.body.to_text(), "partial write");
        assert_eq!(failures.load(Ordering::Relaxed), 0);
        assert_eq!(server.stats().worker_submissions(), 0);
        assert_eq!(server.stats().spliced_relays(), 1);
    }
}
