//! The non-blocking reactor transport: readiness-driven HTTP/1.1 service
//! over a handful of event-loop threads, with blocking origin I/O offloaded
//! to a worker pool.
//!
//! # Architecture
//!
//! A [`ReactorServer`] runs one blocking *acceptor* thread (the same
//! accept/shutdown discipline as the threaded server), `N` *reactor*
//! threads, and one shared pool of `W` *offload workers* (both counts set
//! by [`ReactorConfig`]).  Each reactor owns a [`Poller`] (epoll on Linux,
//! poll elsewhere — see [`crate::sys`]) and the set of connections assigned
//! to it; accepted sockets are handed out round-robin, made non-blocking,
//! and from then on all their *client-side* I/O happens on that reactor's
//! thread, driven by readiness events.
//!
//! Per connection the reactor keeps a sans-IO [`HttpConn`] state machine
//! (shared verbatim with the blocking transport): readable events feed
//! bytes in, and the engine's `advance` parses complete requests,
//! dispatches the ones the service stack classifies
//! [`DispatchHint::Inline`](nakika_core::service::DispatchHint) — warm
//! cache hits — right there on the reactor thread, and pumps serialized
//! output, which drains through non-blocking writes with `EPOLLOUT`
//! interest registered only while output is actually pending.  Keep-alive
//! connections therefore cost one slab slot and one epoll registration
//! while idle — not a parked thread — which is what lets one node hold
//! hundreds of simultaneous keep-alive clients.
//!
//! # The event-loop discipline, and parking
//!
//! The one rule of this module: **nothing on a reactor thread may block.**
//! Two operations in the request path can — a service call that misses the
//! cache and fetches from the origin, and pulling the next chunk of a
//! streamed response whose source is an origin socket.  For those, the
//! engine hands back a unit of [`Work`](crate::conn) instead of executing
//! it, and the reactor *parks* the connection: the in-flight side of the
//! engine stops (input parsing for a call, output pumping for a pull), the
//! fd is deregistered from readiness tracking once neither direction has
//! anything to do, and the slab slot is retained.  The work runs on the
//! worker pool; its completion lands in the reactor's completion queue and
//! the loopback self-pipe wakes the poller — the same wakeup path used for
//! newly accepted sockets — after which the completion is fed back into
//! the engine and the connection is re-armed with whatever interest it now
//! has.  A cold origin fetch thus costs its own connection a round trip
//! through the pool while every other connection on the reactor keeps
//! being served; see `docs/ARCHITECTURE.md`, "Life of a cache miss".
//!
//! A slot being parked is also why completions carry a generation counter:
//! a connection can die (write error, shutdown) while its work is still
//! running, and the slot may be reused by a new connection before the
//! stale completion arrives.  The generation check drops such orphans.
//!
//! Reactors are woken for new work through a loopback socket pair (the
//! self-pipe trick): the acceptor (or a worker) pushes onto the reactor's
//! injection/completion queue and writes one byte to the wake socket,
//! which the poller reports like any other readable fd.  Shutdown reuses
//! the same path, so dropping a [`ReactorServer`] joins every thread
//! deterministically — reactors first, then the worker pool.

use crate::conn::{Done, HttpConn, OutputGauge, Work};
use crate::sys::{Interest, PollEvent, Poller};
use crate::timer::{TimerVerdict, TimerWheel};
use crate::{
    CtxFactory, HttpService, ServerOptions, ServerStats, WallClock, WorkerPool, OVER_CAP_RESPONSE,
    TIMEOUT_RESPONSE,
};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Token reserved for the wake socket; connections use their slab index.
const WAKE_TOKEN: u64 = u64::MAX;

/// Timer-wheel granularity.  Deadlines fire within one tick of their due
/// time; 10 ms is far below any sane idle timeout.
const WHEEL_TICK_MS: u64 = 10;

/// Timer-wheel slot count: one rotation covers ~5 s, and longer deadlines
/// are lazily re-filed as the sweep reaches them.
const WHEEL_SLOTS: usize = 512;

/// Sizing knobs for the reactor transport
/// ([`Transport::Reactor`](crate::Transport)).
///
/// ```
/// use nakika_server::ReactorConfig;
///
/// // Derive both counts from the machine (the default):
/// let auto = ReactorConfig::default();
/// // Pin them — e.g. one event loop and a deep pool for an
/// // origin-latency-bound deployment:
/// let pinned = ReactorConfig { reactors: 1, workers: 16, ..ReactorConfig::default() };
/// # let _ = (auto, pinned);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Number of event-loop threads.  `0` (the default) derives
    /// `min(available cores, 4)`: event loops are CPU-bound and a handful
    /// multiplexes hundreds of connections.
    pub reactors: usize,
    /// Number of offload-worker threads executing may-block service calls
    /// (cold origin fetches) and origin-socket chunk pulls for *all*
    /// reactors of the server.  `0` (the default) derives
    /// `min(max(available cores, 4), 16)`.  This bounds how many origin
    /// fetches proceed concurrently: size it toward the expected number of
    /// simultaneous cache misses times the origin latency you are willing
    /// to overlap, not toward client concurrency — warm hits never enter
    /// the pool.
    pub workers: usize,
    /// Survival knobs shared with the threaded transport: the
    /// per-connection progress deadline (enforced here by the reactor's
    /// timer wheel) and the server-wide connection cap (enforced at the
    /// acceptor).
    pub options: ServerOptions,
}

impl ReactorConfig {
    fn resolved_reactors(&self) -> usize {
        if self.reactors > 0 {
            return self.reactors;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(4, 16)
    }
}

/// A finished unit of offloaded work, addressed back to its connection.
struct Completion {
    idx: usize,
    /// Generation of the slab slot when the work was submitted; a mismatch
    /// means the connection died (and the slot was possibly reused) while
    /// the work was in flight, and the completion is dropped.
    gen: u64,
    done: Done,
}

/// Work handed to a reactor from outside its thread: new connections,
/// completions of offloaded work, and the shutdown signal, with a loopback
/// wake socket to interrupt the poller.
struct Injector {
    queue: Mutex<Vec<(TcpStream, IpAddr)>>,
    completions: Mutex<Vec<Completion>>,
    shutdown: AtomicBool,
    wake_tx: TcpStream,
}

impl Injector {
    fn wake(&self) {
        // One byte is enough; the reactor drains the socket on wake.  A full
        // buffer means a wake is already pending, so failure is harmless.
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn push(&self, stream: TcpStream, peer: IpAddr) {
        self.queue.lock().push((stream, peer));
        self.wake();
    }

    fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
        self.wake();
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake();
    }
}

/// A connected loopback pair: the write end stays with injectors, the read
/// end is registered in the reactor's poller.  Std-only stand-in for
/// `pipe(2)` so the FFI surface stays minimal.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    // The write side must be non-blocking too: if a reactor stalls and its
    // buffers fill, a blocking wake() would park the *acceptor* thread (and
    // Drop).  With O_NONBLOCK a full buffer just means a wake is already
    // pending, which is exactly what the callers assume.
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// One registered connection: its socket, protocol state machine, the
/// interest currently installed in the poller (meaningful only while
/// `registered`), and the generation guarding stale completions.
struct Conn {
    stream: TcpStream,
    engine: HttpConn,
    interest: Interest,
    /// False while the connection is parked: origin I/O is in flight and
    /// neither direction of the socket has anything to do, so the fd is
    /// removed from the poller entirely (level-triggered readiness on an
    /// ignored direction would spin the loop).
    registered: bool,
    gen: u64,
    /// Authoritative progress deadline, in reactor-epoch milliseconds.
    /// Re-armed on protocol progress only (request parsed, output
    /// drained) — never on raw bytes, so slow-loris drips do not extend
    /// it.  The wheel holds one lazy entry per connection and re-files it
    /// against this field.
    deadline_ms: u64,
    /// `engine.requests_parsed()` as of the last progress check.
    parsed: u64,
}

/// The per-thread reactor: poller, connection slab, service stack, and a
/// handle on the server-wide offload pool.
struct Reactor {
    poller: Poller,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    service: Arc<dyn HttpService>,
    ctx_factory: Arc<CtxFactory>,
    injector: Arc<Injector>,
    wake_rx: TcpStream,
    pool: Arc<WorkerPool>,
    gauge: Arc<OutputGauge>,
    stats: Arc<ServerStats>,
    next_gen: u64,
    /// Per-connection progress deadlines; also the source of the poll
    /// timeout, so deadlines fire even when no event and no wakeup ever
    /// arrives (the whole point — see `timer.rs`).
    wheel: TimerWheel,
    idle_ms: u64,
    /// Zero point for this reactor's millisecond clock.
    epoch: Instant,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn run(mut self) {
        use std::os::unix::io::AsRawFd;
        if self
            .poller
            .add(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            // Sleep until I/O, a wakeup, or the earliest possible deadline
            // — never forever while a deadline is armed.
            let timeout_ms = self
                .wheel
                .next_deadline_ms(self.now_ms())
                .map(|ms| ms.min(i32::MAX as u64) as i32)
                .unwrap_or(-1);
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                return;
            }
            for &event in &events {
                if event.token == WAKE_TOKEN {
                    self.drain_wake();
                    if self.injector.shutdown.load(Ordering::Acquire) {
                        return; // dropping the reactor closes every socket
                    }
                    self.register_injected();
                    self.run_completions();
                } else {
                    self.drive(event.token as usize, event.readable, event.writable);
                }
            }
            self.sweep_deadlines();
        }
    }

    /// Sweeps the timer wheel, evicting every connection whose
    /// authoritative deadline has passed.  Entries for connections that
    /// made progress since they were filed (or that are waiting on
    /// offloaded origin work — the server's own slowness must not evict
    /// the client) are re-filed instead.
    fn sweep_deadlines(&mut self) {
        let now = self.now_ms();
        let idle = self.idle_ms;
        let slab = &self.slab;
        let fired = self.wheel.expire(now, |entry| {
            let Some(conn) = slab.get(entry.idx).and_then(Option::as_ref) else {
                return TimerVerdict::Drop;
            };
            if conn.gen != entry.gen {
                return TimerVerdict::Drop;
            }
            if conn.engine.has_pending_work() {
                return TimerVerdict::Refile(now + idle);
            }
            if conn.deadline_ms <= now {
                TimerVerdict::Fire
            } else {
                TimerVerdict::Refile(conn.deadline_ms)
            }
        });
        for entry in fired {
            let boundary = self
                .slab
                .get_mut(entry.idx)
                .and_then(Option::as_mut)
                .filter(|conn| conn.gen == entry.gen)
                .map(|conn| {
                    let at_boundary = conn.engine.at_response_boundary();
                    if at_boundary {
                        // Best-effort courtesy 408; framing-safe because
                        // nothing of a response is in flight.
                        let _ = conn.stream.write(TIMEOUT_RESPONSE);
                    }
                    at_boundary
                });
            if boundary.is_some() {
                self.stats.note_timeout();
                self.close(entry.idx);
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn register_injected(&mut self) {
        use std::os::unix::io::AsRawFd;
        let injected: Vec<_> = std::mem::take(&mut *self.injector.queue.lock());
        for (stream, peer) in injected {
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slab.push(None);
                    self.slab.len() - 1
                }
            };
            if self
                .poller
                .add(stream.as_raw_fd(), idx as u64, Interest::READ)
                .is_err()
            {
                self.free.push(idx);
                self.stats.close_connection();
                continue; // dropping the stream closes it
            }
            self.next_gen += 1;
            let deadline_ms = self.now_ms() + self.idle_ms;
            self.slab[idx] = Some(Conn {
                stream,
                engine: HttpConn::offloading(peer, self.gauge.clone()),
                interest: Interest::READ,
                registered: true,
                gen: self.next_gen,
                deadline_ms,
                parsed: 0,
            });
            // One wheel entry per connection for its whole lifetime; the
            // sweep re-files it against `deadline_ms` as progress happens.
            self.wheel.insert(idx, self.next_gen, deadline_ms);
        }
    }

    /// Feeds finished offloaded work back into its connection's engine and
    /// re-arms the connection.  Stale completions — the slot died or was
    /// reused while the work ran — are identified by generation and
    /// dropped.
    fn run_completions(&mut self) {
        let completions: Vec<Completion> = std::mem::take(&mut *self.injector.completions.lock());
        for completion in completions {
            let Some(conn) = self.slab.get_mut(completion.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue;
            }
            conn.engine.complete(completion.done);
            self.progress(completion.idx);
        }
    }

    /// Ships one unit of may-block work to the pool; the completion comes
    /// back through the injector and the wake pipe.
    fn submit(&self, idx: usize, gen: u64, work: Work) {
        let service = self.service.clone();
        let injector = self.injector.clone();
        self.pool.execute(Box::new(move || {
            let done = work.run(&*service);
            injector.complete(Completion { idx, gen, done });
        }));
    }

    /// Handles one readiness event: pull bytes and feed the engine while
    /// readable, then make whatever progress the engine allows.
    fn drive(&mut self, idx: usize, readable: bool, writable: bool) {
        // Progress flushes opportunistically whenever output exists, so the
        // write-readiness direction needs no handling of its own.
        let _ = writable;
        // A stale event can name a slot freed — or parked — earlier in
        // this batch.
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if !conn.registered {
            return;
        }
        if readable && conn.engine.wants_read() {
            let mut chunk = [0u8; 8192];
            let mut eof = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.engine.feed(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            if eof {
                // The engine still answers requests already buffered — a
                // client may write a complete request and half-close in
                // the same packet — then closes once input is exhausted.
                conn.engine.close();
            }
        }
        self.progress(idx);
    }

    /// Advances one connection as far as non-blocking operations allow:
    /// lets the engine parse/dispatch/pump (shipping offloaded work to the
    /// pool), flushes pending output, and reconciles the poller interest —
    /// including parking (full deregistration) when origin I/O is the only
    /// thing the connection is waiting on.
    fn progress(&mut self, idx: usize) {
        use std::os::unix::io::AsRawFd;
        let had_output = self
            .slab
            .get(idx)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.engine.has_unsent_output());
        loop {
            // Generate: parse, inline-dispatch, pump; ship may-block work.
            loop {
                let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                let gen = conn.gen;
                let Some(work) = conn
                    .engine
                    .advance(&*self.service, self.ctx_factory.as_ref())
                else {
                    break;
                };
                self.submit(idx, gen, work);
            }
            // Flush opportunistically; a drained window lets the next
            // generate pass pull more of a streamed response.
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let mut wrote = false;
            let mut would_block = false;
            while conn.engine.has_unsent_output() {
                match conn.stream.write(conn.engine.pending_output()) {
                    Ok(0) => {
                        self.close(idx);
                        return;
                    }
                    Ok(n) => {
                        conn.engine.advance_output(n);
                        wrote = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        would_block = true;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            if would_block || !wrote {
                break;
            }
        }
        let now = self.now_ms();
        let idle = self.idle_ms;
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.engine.done() {
            self.close(idx);
            return;
        }
        // Progress check: a newly parsed request or a fully drained output
        // re-arms the deadline.  Raw bytes deliberately do not.
        let parsed_now = conn.engine.requests_parsed();
        let drained = had_output && !conn.engine.has_unsent_output();
        if parsed_now != conn.parsed || drained {
            conn.parsed = parsed_now;
            conn.deadline_ms = now + idle;
        }
        let wanted = Interest {
            readable: conn.engine.wants_read(),
            writable: conn.engine.has_unsent_output(),
        };
        let fd = conn.stream.as_raw_fd();
        if !wanted.readable && !wanted.writable {
            // Parked: the connection is waiting only on offloaded origin
            // I/O (or, transiently, on nothing — impossible while open).
            // Deregister entirely; the completion re-arms it.
            if conn.registered {
                let _ = self.poller.remove(fd);
                conn.registered = false;
            }
        } else if !conn.registered {
            if self.poller.add(fd, idx as u64, wanted).is_err() {
                self.close(idx);
                return;
            }
            conn.registered = true;
            conn.interest = wanted;
        } else if wanted != conn.interest {
            if self.poller.modify(fd, idx as u64, wanted).is_err() {
                self.close(idx);
                return;
            }
            conn.interest = wanted;
        }
    }

    fn close(&mut self, idx: usize) {
        use std::os::unix::io::AsRawFd;
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            if conn.registered {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
            }
            self.stats.close_connection();
            self.free.push(idx);
            // conn drops here, closing the socket.  Any work still in
            // flight for it completes harmlessly: the generation check in
            // run_completions drops the orphaned completion.
        }
    }
}

/// A non-blocking HTTP/1.1 server fronting any [`HttpService`] with a small
/// set of reactor threads plus an offload worker pool for blocking origin
/// I/O (the design notes live at the top of `nakika-server/src/reactor.rs`;
/// the narrative version is `docs/ARCHITECTURE.md`).
///
/// The public surface mirrors the threaded server — [`start`], [`addr`],
/// [`base_url`] — plus [`start_with_config`] for pinning the thread counts
/// ([`ReactorConfig`]); the usual way to get one is
/// [`HttpServer::start_with`](crate::HttpServer::start_with) with
/// [`Transport::Reactor`](crate::Transport).
///
/// [`start`]: ReactorServer::start
/// [`start_with_config`]: ReactorServer::start_with_config
/// [`addr`]: ReactorServer::addr
/// [`base_url`]: ReactorServer::base_url
pub struct ReactorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<(Arc<Injector>, Option<JoinHandle<()>>)>,
    gauge: Arc<OutputGauge>,
    stats: Arc<ServerStats>,
    // Held only for its Drop: declared after the reactor handles, so the
    // offload workers are joined only once every reactor thread — which
    // shares the pool — has been joined by Drop above.
    _pool: Arc<WorkerPool>,
}

impl ReactorServer {
    /// Starts a reactor server on `127.0.0.1:port` (port 0 picks a free
    /// port) serving `service` until the value is dropped, with derived
    /// thread counts ([`ReactorConfig::default`]).
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> io::Result<ReactorServer> {
        ReactorServer::start_with_config(port, service, ReactorConfig::default())
    }

    /// Starts a reactor server with explicit sizing knobs.
    pub fn start_with_config(
        port: u16,
        service: Arc<dyn HttpService>,
        config: ReactorConfig,
    ) -> io::Result<ReactorServer> {
        let reactor_count = config.resolved_reactors();
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));
        let gauge = Arc::new(OutputGauge::default());
        let stats = Arc::new(ServerStats::default());
        let pool = Arc::new(WorkerPool::new(config.resolved_workers()));
        let idle_ms = config.options.resolved_idle_timeout_ms();
        let max_connections = config.options.max_connections;

        // Create every fallible resource (wake pairs, epoll fds) before
        // spawning any thread: a mid-loop failure (fd exhaustion) must not
        // leave earlier reactors running un-joinable forever.
        let mut reactors = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            let (wake_tx, wake_rx) = wake_pair()?;
            let injector = Arc::new(Injector {
                queue: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                wake_tx,
            });
            let epoch = Instant::now();
            reactors.push(Reactor {
                poller: Poller::new()?,
                slab: Vec::new(),
                free: Vec::new(),
                service: service.clone(),
                ctx_factory: ctx_factory.clone(),
                injector,
                wake_rx,
                pool: pool.clone(),
                gauge: gauge.clone(),
                stats: stats.clone(),
                next_gen: 0,
                wheel: TimerWheel::new(WHEEL_TICK_MS, WHEEL_SLOTS, 0),
                idle_ms,
                epoch,
            });
        }
        let mut workers = Vec::with_capacity(reactor_count);
        let mut injectors = Vec::with_capacity(reactor_count);
        for reactor in reactors {
            let injector = reactor.injector.clone();
            let handle = std::thread::spawn(move || reactor.run());
            injectors.push(injector.clone());
            workers.push((injector, Some(handle)));
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        // Same accept discipline as the threaded server: block in accept,
        // let Drop wake it with a bare connect so the flag check runs.
        let accept_stats = stats.clone();
        let acceptor = std::thread::spawn(move || {
            let mut next = 0usize;
            while let Ok((mut stream, peer)) = listener.accept() {
                if shutdown_flag.load(Ordering::Relaxed) {
                    break;
                }
                if !accept_stats.try_open(max_connections) {
                    // Over the cap: canned 503, immediate close, no slab
                    // slot spent on the peer.
                    let _ = stream.write_all(OVER_CAP_RESPONSE);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    accept_stats.close_connection();
                    continue;
                }
                let _ = stream.set_nodelay(true);
                injectors[next % injectors.len()].push(stream, peer.ip());
                next += 1;
            }
        });

        Ok(ReactorServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            gauge,
            stats,
            _pool: pool,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Highest number of serialized-but-unsent bytes any of this server's
    /// connections has held — see
    /// [`HttpServer::peak_buffered_output`](crate::HttpServer::peak_buffered_output).
    pub fn peak_buffered_output(&self) -> usize {
        self.gauge.peak()
    }

    /// This server's survival counters (deadline evictions, over-cap
    /// rejections, open connections).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept so the loop observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for (injector, handle) in &mut self.workers {
            injector.shutdown();
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
        // self.pool drops after this, joining the offload workers; any job
        // still queued is discarded (its completion has no audience).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http_get;
    use nakika_core::service::{service_fn, DispatchHint, NakikaError, RequestCtx};
    use nakika_http::{serialize_request, ParseOutcome, Request, Response, StatusCode};
    use std::time::{Duration, Instant};

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx| {
            Ok(
                Response::ok("text/html", format!("reactor origin: {}", request.uri.path))
                    .with_header("Cache-Control", "max-age=60"),
            )
        })
    }

    #[test]
    fn reactor_round_trip() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn reactor_keep_alive_serves_many_requests_on_one_connection() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..5 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed a keep-alive connection");
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn reactor_answers_pipelined_requests_in_order() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut batch = Vec::new();
        for i in 0..3 {
            batch.extend_from_slice(&serialize_request(&Request::get(&format!(
                "http://{}/p{i}",
                server.addr()
            ))));
        }
        stream.write_all(&batch).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut bodies = Vec::new();
        while bodies.len() < 3 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            buffer.extend_from_slice(&chunk[..n]);
            while let Ok(ParseOutcome::Complete { message, consumed }) =
                nakika_http::parse_response(&buffer)
            {
                buffer.drain(..consumed);
                bodies.push(message.body.to_text());
            }
        }
        for (i, body) in bodies.iter().enumerate() {
            assert!(body.contains(&format!("/p{i}")), "order preserved: {body}");
        }
    }

    #[test]
    fn request_with_immediate_half_close_still_gets_a_response() {
        // One-shot clients often write the request and shutdown(SHUT_WR) in
        // one go, so the reactor can see the bytes and the FIN in a single
        // readiness event.  The buffered request must still be answered —
        // including when its service call is offloaded to a worker.
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = Request::get(&format!("http://{}/half-close", server.addr()));
        stream.write_all(&serialize_request(&req)).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read failed: {e}"),
            }
        }
        match nakika_http::parse_response(&buffer) {
            Ok(ParseOutcome::Complete { message, .. }) => {
                assert!(message.body.to_text().contains("/half-close"))
            }
            other => panic!("expected a complete response, got {other:?}"),
        }
    }

    #[test]
    fn reactor_rejects_malformed_requests_with_400() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_reactor_stops_accepting_deterministically() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        // Drop joins the acceptor, every reactor thread, and the offload
        // pool, so by the time it returns nothing serves the port — no
        // sleep needed.
        drop(server);
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }

    /// A service whose `/slow/…` calls block for `delay` (always classified
    /// `MayBlock`) while everything else answers instantly inline.
    struct SlowColdService {
        delay: Duration,
    }

    impl HttpService for SlowColdService {
        fn call(&self, req: Request, _ctx: &RequestCtx) -> Result<Response, NakikaError> {
            if req.uri.path.starts_with("/slow/") {
                std::thread::sleep(self.delay);
            }
            Ok(Response::ok("text/plain", req.uri.path.clone()))
        }

        fn dispatch_hint(&self, req: &Request, _ctx: &RequestCtx) -> DispatchHint {
            if req.uri.path.starts_with("/slow/") {
                DispatchHint::MayBlock
            } else {
                DispatchHint::Inline
            }
        }
    }

    #[test]
    fn offloaded_slow_call_does_not_stall_other_connections() {
        // One reactor thread, so without offloading the slow call would
        // freeze every connection on the server.
        let server = ReactorServer::start_with_config(
            0,
            Arc::new(SlowColdService {
                delay: Duration::from_millis(150),
            }),
            ReactorConfig {
                reactors: 1,
                workers: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let slow_url = format!("{base}/slow/origin.html");
        let slow = std::thread::spawn(move || {
            let start = Instant::now();
            let response = http_get(&slow_url).unwrap();
            assert_eq!(response.body.to_text(), "/slow/origin.html");
            start.elapsed()
        });
        // Give the slow request a head start so it is parked when the fast
        // ones arrive.
        std::thread::sleep(Duration::from_millis(30));
        let fast_start = Instant::now();
        for i in 0..5 {
            let response = http_get(&format!("{base}/fast/{i}")).unwrap();
            assert_eq!(response.body.to_text(), format!("/fast/{i}"));
        }
        let fast_elapsed = fast_start.elapsed();
        let slow_elapsed = slow.join().unwrap();
        assert!(
            slow_elapsed >= Duration::from_millis(140),
            "the slow call really blocked its worker: {slow_elapsed:?}"
        );
        assert!(
            fast_elapsed < slow_elapsed,
            "fast requests finished while the slow call was parked \
             (fast {fast_elapsed:?} vs slow {slow_elapsed:?})"
        );
    }
}
