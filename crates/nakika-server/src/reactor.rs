//! The non-blocking reactor transport: readiness-driven HTTP/1.1 service
//! over a handful of event-loop threads instead of a thread per connection.
//!
//! # Architecture
//!
//! A [`ReactorServer`] runs one blocking *acceptor* thread (the same
//! accept/shutdown discipline as the threaded server) plus `N` *reactor*
//! threads, `N` = `min(available cores, 4)`.  Each reactor owns a
//! [`Poller`] (epoll on Linux, poll elsewhere — see [`crate::sys`]) and the
//! set of connections assigned to it; accepted sockets are handed out
//! round-robin, made non-blocking, and from then on all their I/O happens on
//! that reactor's thread, driven by readiness events.
//!
//! Per connection the reactor keeps a sans-IO [`HttpConn`] state machine
//! (shared verbatim with the blocking transport): readable events feed bytes
//! in and dispatch every complete request through the [`HttpService`] stack;
//! serialized responses drain out through non-blocking writes, with `EPOLLOUT`
//! interest registered only while output is actually pending.  Keep-alive
//! connections therefore cost one slab slot and one epoll registration while
//! idle — not a parked thread — which is what lets one node hold hundreds of
//! simultaneous keep-alive clients.
//!
//! Service dispatch runs inline on the reactor thread.  That is the classic
//! reactor trade: a cache-hit response costs no hand-off, but a service call
//! that blocks (a cold origin fetch over [`crate::TcpOrigin`]) stalls the
//! other connections of that reactor until it returns.  The sharded proxy
//! cache keeps the common path short; workloads dominated by slow origin
//! fetches should prefer [`Transport::Threaded`](crate::Transport).
//!
//! Reactors are woken for new work through a loopback socket pair (the
//! self-pipe trick): the acceptor pushes the socket onto the reactor's
//! injection queue and writes one byte to the wake socket, which the poller
//! reports like any other readable fd.  Shutdown reuses the same path, so
//! dropping a [`ReactorServer`] joins every thread deterministically.

use crate::conn::HttpConn;
use crate::sys::{Interest, PollEvent, Poller};
use crate::{CtxFactory, HttpService, WallClock};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Token reserved for the wake socket; connections use their slab index.
const WAKE_TOKEN: u64 = u64::MAX;

/// Work handed to a reactor from outside its thread: new connections plus
/// the shutdown signal, with a loopback wake socket to interrupt the poller.
struct Injector {
    queue: Mutex<Vec<(TcpStream, IpAddr)>>,
    shutdown: AtomicBool,
    wake_tx: TcpStream,
}

impl Injector {
    fn wake(&self) {
        // One byte is enough; the reactor drains the socket on wake.  A full
        // buffer means a wake is already pending, so failure is harmless.
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn push(&self, stream: TcpStream, peer: IpAddr) {
        self.queue.lock().push((stream, peer));
        self.wake();
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake();
    }
}

/// A connected loopback pair: the write end stays with injectors, the read
/// end is registered in the reactor's poller.  Std-only stand-in for
/// `pipe(2)` so the FFI surface stays minimal.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    // The write side must be non-blocking too: if a reactor stalls and its
    // buffers fill, a blocking wake() would park the *acceptor* thread (and
    // Drop).  With O_NONBLOCK a full buffer just means a wake is already
    // pending, which is exactly what the callers assume.
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// One registered connection: its socket, protocol state machine, and the
/// interest set currently installed in the poller.
struct Conn {
    stream: TcpStream,
    engine: HttpConn,
    interest: Interest,
}

/// The per-thread reactor: poller, connection slab, and service stack.
struct Reactor {
    poller: Poller,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    service: Arc<dyn HttpService>,
    ctx_factory: Arc<CtxFactory>,
    injector: Arc<Injector>,
    wake_rx: TcpStream,
}

impl Reactor {
    fn run(mut self) {
        use std::os::unix::io::AsRawFd;
        if self
            .poller
            .add(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                return;
            }
            for &event in &events {
                if event.token == WAKE_TOKEN {
                    self.drain_wake();
                    if self.injector.shutdown.load(Ordering::Acquire) {
                        return; // dropping the reactor closes every socket
                    }
                    self.register_injected();
                } else {
                    self.drive(event.token as usize, event.readable, event.writable);
                }
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn register_injected(&mut self) {
        use std::os::unix::io::AsRawFd;
        let injected: Vec<_> = std::mem::take(&mut *self.injector.queue.lock());
        for (stream, peer) in injected {
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slab.push(None);
                    self.slab.len() - 1
                }
            };
            if self
                .poller
                .add(stream.as_raw_fd(), idx as u64, Interest::READ)
                .is_err()
            {
                self.free.push(idx);
                continue; // dropping the stream closes it
            }
            self.slab[idx] = Some(Conn {
                stream,
                engine: HttpConn::new(peer),
                interest: Interest::READ,
            });
        }
    }

    /// Advances one connection after a readiness event: pull bytes and
    /// dispatch requests while readable, push pending responses while
    /// writable, then reconcile the poller interest with what is left.
    fn drive(&mut self, idx: usize, readable: bool, writable: bool) {
        // A stale event can name a slot freed earlier in this batch.
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if readable && conn.engine.is_open() {
            let mut chunk = [0u8; 8192];
            let mut eof = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.engine.feed(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            // Dispatch before honoring EOF: a client may write a complete
            // request and half-close in the same packet, still expecting its
            // response — the threaded transport serves that case too.
            conn.engine
                .dispatch(&*self.service, self.ctx_factory.as_ref());
            if eof {
                conn.engine.close();
            }
        }
        // Dispatch may have queued output regardless of which direction
        // fired, so always try to flush opportunistically.
        let _ = writable;
        while conn.engine.wants_write() {
            match conn.stream.write(conn.engine.pending_output()) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => conn.engine.advance_output(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        if conn.engine.done() {
            self.close(idx);
            return;
        }
        let wanted = Interest {
            readable: conn.engine.is_open(),
            writable: conn.engine.wants_write(),
        };
        if wanted != conn.interest {
            use std::os::unix::io::AsRawFd;
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, idx as u64, wanted).is_err() {
                self.close(idx);
                return;
            }
            conn.interest = wanted;
        }
    }

    fn close(&mut self, idx: usize) {
        use std::os::unix::io::AsRawFd;
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.free.push(idx);
            // conn drops here, closing the socket.
        }
    }
}

/// A non-blocking HTTP/1.1 server fronting any [`HttpService`] with a small
/// set of reactor threads (the design notes live at the top of
/// `nakika-server/src/reactor.rs`).
///
/// The public surface mirrors the threaded server — `start`, [`addr`],
/// [`base_url`] — and the usual way to get one is
/// [`HttpServer::start_with`](crate::HttpServer::start_with) with
/// [`Transport::Reactor`](crate::Transport).
///
/// [`addr`]: ReactorServer::addr
/// [`base_url`]: ReactorServer::base_url
pub struct ReactorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<(Arc<Injector>, Option<JoinHandle<()>>)>,
}

impl ReactorServer {
    /// Starts a reactor server on `127.0.0.1:port` (port 0 picks a free
    /// port) serving `service` until the value is dropped.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> io::Result<ReactorServer> {
        let reactor_count = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));

        // Create every fallible resource (wake pairs, epoll fds) before
        // spawning any thread: a mid-loop failure (fd exhaustion) must not
        // leave earlier reactors running un-joinable forever.
        let mut reactors = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            let (wake_tx, wake_rx) = wake_pair()?;
            let injector = Arc::new(Injector {
                queue: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                wake_tx,
            });
            reactors.push(Reactor {
                poller: Poller::new()?,
                slab: Vec::new(),
                free: Vec::new(),
                service: service.clone(),
                ctx_factory: ctx_factory.clone(),
                injector,
                wake_rx,
            });
        }
        let mut workers = Vec::with_capacity(reactor_count);
        let mut injectors = Vec::with_capacity(reactor_count);
        for reactor in reactors {
            let injector = reactor.injector.clone();
            let handle = std::thread::spawn(move || reactor.run());
            injectors.push(injector.clone());
            workers.push((injector, Some(handle)));
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        // Same accept discipline as the threaded server: block in accept,
        // let Drop wake it with a bare connect so the flag check runs.
        let acceptor = std::thread::spawn(move || {
            let mut next = 0usize;
            while let Ok((stream, peer)) = listener.accept() {
                if shutdown_flag.load(Ordering::Relaxed) {
                    break;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                injectors[next % injectors.len()].push(stream, peer.ip());
                next += 1;
            }
        });

        Ok(ReactorServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept so the loop observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for (injector, handle) in &mut self.workers {
            injector.shutdown();
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http_get;
    use nakika_core::service::service_fn;
    use nakika_http::{serialize_request, ParseOutcome, Request, Response, StatusCode};

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx| {
            Ok(
                Response::ok("text/html", format!("reactor origin: {}", request.uri.path))
                    .with_header("Cache-Control", "max-age=60"),
            )
        })
    }

    #[test]
    fn reactor_round_trip() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn reactor_keep_alive_serves_many_requests_on_one_connection() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..5 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed a keep-alive connection");
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn reactor_answers_pipelined_requests_in_order() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut batch = Vec::new();
        for i in 0..3 {
            batch.extend_from_slice(&serialize_request(&Request::get(&format!(
                "http://{}/p{i}",
                server.addr()
            ))));
        }
        stream.write_all(&batch).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut bodies = Vec::new();
        while bodies.len() < 3 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0);
            buffer.extend_from_slice(&chunk[..n]);
            while let Ok(ParseOutcome::Complete { message, consumed }) =
                nakika_http::parse_response(&buffer)
            {
                buffer.drain(..consumed);
                bodies.push(message.body.to_text());
            }
        }
        for (i, body) in bodies.iter().enumerate() {
            assert!(body.contains(&format!("/p{i}")), "order preserved: {body}");
        }
    }

    #[test]
    fn request_with_immediate_half_close_still_gets_a_response() {
        // One-shot clients often write the request and shutdown(SHUT_WR) in
        // one go, so the reactor can see the bytes and the FIN in a single
        // readiness event.  The buffered request must still be answered.
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = Request::get(&format!("http://{}/half-close", server.addr()));
        stream.write_all(&serialize_request(&req)).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read failed: {e}"),
            }
        }
        match nakika_http::parse_response(&buffer) {
            Ok(ParseOutcome::Complete { message, .. }) => {
                assert!(message.body.to_text().contains("/half-close"))
            }
            other => panic!("expected a complete response, got {other:?}"),
        }
    }

    #[test]
    fn reactor_rejects_malformed_requests_with_400() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_reactor_stops_accepting_deterministically() {
        let server = ReactorServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        // Drop joins the acceptor and every reactor thread, so by the time
        // it returns nothing serves the port — no sleep needed.
        drop(server);
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }
}
