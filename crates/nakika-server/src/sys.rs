//! Readiness notification for the reactor transport, over a thin
//! `extern "C"` FFI onto the platform's polling facility.
//!
//! This build environment has no route to a crate registry, so instead of
//! `mio`/`libc` the reactor talks to the kernel directly: `epoll(7)` on
//! Linux, portable `poll(2)` on other Unixes.  The surface is deliberately
//! tiny — a [`Poller`] owns one kernel readiness object and exposes
//! add/modify/remove/wait over `(fd, token, interest)` triples — and it is
//! the only module in the crate allowed to use `unsafe` (the crate is
//! `#![deny(unsafe_code)]`; this module opts back in locally).
//!
//! Level-triggered semantics on both backends: a ready fd keeps being
//! reported until the reactor drains it, which keeps the connection state
//! machine simple (no starvation bookkeeping for edge-triggered wakeups).

#![allow(unsafe_code)]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// One readiness report: the registered token plus which directions fired.
/// Errors and hang-ups are folded into `readable` so the state machine
/// discovers them from the subsequent `read` returning 0 or an error.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or in an error/hang-up state).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// The interest set for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of a keep-alive connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`.  On x86-64 the kernel
    /// ABI packs it to 12 bytes; other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// An `epoll(7)` instance.
    pub struct Poller {
        epfd: RawFd,
    }

    fn check(rc: c_int) -> io::Result<c_int> {
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc)
        }
    }

    fn event_for(interest: Interest, token: u64) -> EpollEvent {
        let mut events = 0;
        if interest.readable {
            // RDHUP rides along with read interest only: once a connection
            // stops reading (write-only drain), a peer's SHUT_WR must not
            // keep waking the reactor — its level-triggered condition never
            // clears and would busy-spin the whole event loop.
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        EpollEvent {
            events,
            data: token,
        }
    }

    impl Poller {
        /// Creates the epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = event_for(interest, token);
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        /// Changes the interest set of a registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = event_for(interest, token);
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        /// Deregisters `fd`.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = event_for(Interest::READ, 0);
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        /// Blocks until at least one registered fd is ready (`timeout_ms < 0`
        /// waits forever), filling `out` with the ready set.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                match check(unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms as c_int,
                    )
                }) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &events[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::os::raw::c_short;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// A `poll(2)`-backed poller for non-Linux Unixes: the registration
    /// table lives in userspace and is replayed on every wait.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        /// Creates the poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
            })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().insert(fd, (token, interest));
            Ok(())
        }

        /// Changes the interest set of a registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.add(fd, token, interest)
        }

        /// Deregisters `fd`.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().remove(&fd);
            Ok(())
        }

        /// Blocks until at least one registered fd is ready.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let (mut fds, tokens): (Vec<PollFd>, Vec<u64>) = {
                let registered = self.registered.lock();
                registered
                    .iter()
                    .map(|(fd, (token, interest))| {
                        let mut events = 0;
                        if interest.readable {
                            events |= POLLIN;
                        }
                        if interest.writable {
                            events |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd: *fd,
                                events,
                                revents: 0,
                            },
                            *token,
                        )
                    })
                    .unzip()
            };
            let n = loop {
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms as c_int) };
                if rc >= 0 {
                    break rc;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, token) in fds.iter().zip(tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                });
            }
            Ok(())
        }
    }
}

pub use backend::Poller;

/// Starts a TCP connect without blocking the event loop.  Returns the
/// non-blocking stream plus whether the connect already completed: `false`
/// means it is in progress and the caller must wait for *writability* (then
/// check `take_error`) before using the socket — the reactor registers it
/// with write interest and finishes the handshake from the poller.
#[cfg(target_os = "linux")]
pub(crate) fn connect_nonblocking_v4(
    addr: std::net::SocketAddrV4,
) -> io::Result<(std::net::TcpStream, bool)> {
    use std::os::unix::io::FromRawFd;

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const EINPROGRESS: i32 = 115;

    /// Mirror of the kernel's `struct sockaddr_in` (port and address in
    /// network byte order, padded to 16 bytes).
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
    }

    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // From here the fd is owned by the TcpStream: error paths close it.
    let stream = unsafe { std::net::TcpStream::from_raw_fd(fd) };
    let sockaddr = SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: addr.port().to_be(),
        sin_addr: u32::from_ne_bytes(addr.ip().octets()),
        sin_zero: [0; 8],
    };
    let rc = unsafe { connect(fd, &sockaddr, std::mem::size_of::<SockaddrIn>() as u32) };
    if rc == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok((stream, false));
    }
    Err(err)
}

/// Portable fallback: a bounded blocking connect, switched to non-blocking
/// afterwards.  Reports the connect as already complete, so the reactor's
/// state machine skips its `Connecting` state on these platforms.
#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) fn connect_nonblocking_v4(
    addr: std::net::SocketAddrV4,
) -> io::Result<(std::net::TcpStream, bool)> {
    let stream = std::net::TcpStream::connect_timeout(
        &std::net::SocketAddr::V4(addr),
        std::time::Duration::from_secs(10),
    )?;
    stream.set_nonblocking(true)?;
    Ok((stream, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: a zero-timeout wait reports no events.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        server.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 7)
            .expect("readable event");
        assert!(ev.readable);

        // Switching interest to writable fires immediately on an idle socket.
        poller
            .modify(
                client.as_raw_fd(),
                7,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        let mut buf = [0u8; 8];
        let mut c = &client;
        assert_eq!(c.read(&mut buf).unwrap(), 4);
        poller.remove(client.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_connect_completes_under_the_poller() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = match listener.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            other => panic!("unexpected addr {other}"),
        };
        let (stream, connected) = connect_nonblocking_v4(addr).unwrap();
        if !connected {
            // In-progress: writability signals completion, take_error the
            // verdict — exactly the sequence the reactor runs.
            let poller = Poller::new().unwrap();
            poller
                .add(
                    stream.as_raw_fd(),
                    1,
                    Interest {
                        readable: false,
                        writable: true,
                    },
                )
                .unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, 2000).unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.writable));
        }
        assert!(stream.take_error().unwrap().is_none());
        // The socket really is connected: the listener sees the peer.
        let (mut server, _) = listener.accept().unwrap();
        server.write_all(b"ok").unwrap();
        drop(server);
        stream.set_nonblocking(false).unwrap();
        let mut buf = Vec::new();
        let mut s = &stream;
        s.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"ok");
    }

    #[test]
    fn nonblocking_connect_to_refused_port_reports_the_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            match l.local_addr().unwrap() {
                std::net::SocketAddr::V4(v4) => v4,
                other => panic!("unexpected addr {other}"),
            }
        };
        match connect_nonblocking_v4(addr) {
            Err(_) => {} // refused synchronously (portable fallback)
            Ok((stream, connected)) => {
                assert!(!connected, "connect to a dead port cannot complete");
                let poller = Poller::new().unwrap();
                poller
                    .add(
                        stream.as_raw_fd(),
                        1,
                        Interest {
                            readable: false,
                            writable: true,
                        },
                    )
                    .unwrap();
                let mut events = Vec::new();
                poller.wait(&mut events, 2000).unwrap();
                assert!(
                    stream.take_error().unwrap().is_some() || stream.peer_addr().is_err(),
                    "failed connect must surface through take_error/peer_addr"
                );
            }
        }
    }

    #[test]
    fn closed_peer_reports_readable_for_eof_discovery() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(server);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.readable),
            "hang-up surfaces as readability so read() can observe EOF"
        );
    }
}
