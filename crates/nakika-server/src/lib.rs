//! Real-socket front-ends for Na Kika: two interchangeable HTTP/1.1
//! transports over localhost TCP, selected by [`Transport`].
//!
//! - [`Transport::Threaded`] — the classic blocking, thread-per-connection
//!   server (the paper's prototype embeds the same logic in Apache's prefork
//!   worker processes).  Simple, and a blocking origin fetch only ever stalls
//!   its own connection; concurrency is capped by thread count.
//! - [`Transport::Reactor`] — a readiness-driven non-blocking server
//!   ([`ReactorServer`]): a few event-loop threads multiplex every
//!   connection through `epoll`/`poll`, so hundreds of simultaneous
//!   keep-alive clients cost slab slots instead of parked threads.
//!
//! Both transports drive the exact same sans-IO connection state machine and
//! the exact same [`HttpService`] stack: an [`HttpServer`] fronts any service
//! (an origin built with [`service_fn`](nakika_core::service_fn), or a full
//! node stack from [`NodeBuilder`](nakika_core::NodeBuilder)), mints a
//! [`RequestCtx`](nakika_core::service::RequestCtx) per exchange from the
//! [`WallClock`], and maps typed [`NakikaError`]s to status codes at the
//! wire.  See `docs/ARCHITECTURE.md` for when to pick which transport.
//!
//! ```no_run
//! use nakika_core::service::service_fn;
//! use nakika_server::{http_get, HttpServer, Transport};
//! use nakika_http::Response;
//!
//! let service = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "hi")));
//! let server = HttpServer::start_with(0, service, Transport::Reactor)?;
//! let resp = http_get(&format!("{}/x", server.base_url()))?;
//! assert!(resp.status.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `unsafe` is confined to the readiness FFI in `sys`, which opts back in.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod reactor;
mod sys;

pub use reactor::ReactorServer;

use conn::HttpConn;
use nakika_core::service::{Clock, CtxFactory, HttpService, NakikaError};
use nakika_core::OriginFetch;
use nakika_http::{serialize_request, ParseOutcome};
use nakika_http::{Request, Response};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The real transports' [`Clock`]: seconds since the Unix epoch.
pub struct WallClock;

impl Clock for WallClock {
    fn now_secs(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// Which connection-handling strategy a front-end server uses.
///
/// Both transports serve the identical [`HttpService`] stack and speak the
/// same HTTP/1.1 (keep-alive, pipelining, error mapping); they differ only
/// in how connections map onto threads.  See the crate docs and
/// `docs/ARCHITECTURE.md` for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One blocking thread per connection (the default).
    #[default]
    Threaded,
    /// A few readiness-driven event-loop threads multiplexing every
    /// connection ([`ReactorServer`]).
    Reactor,
}

/// The transport machinery behind a running [`HttpServer`].
enum ServerImpl {
    Threaded {
        shutdown: Arc<AtomicBool>,
        acceptor: Option<JoinHandle<()>>,
    },
    // Held only for its Drop, which joins the reactor threads.
    Reactor {
        _server: ReactorServer,
    },
}

/// A minimal HTTP/1.1 server fronting any [`HttpService`], over either
/// [`Transport`].
pub struct HttpServer {
    addr: SocketAddr,
    transport: Transport,
    imp: ServerImpl,
}

impl HttpServer {
    /// Starts a thread-per-connection server on `127.0.0.1:port` (port 0
    /// picks a free port) and serves `service` until the value is dropped.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<HttpServer> {
        HttpServer::start_with(port, service, Transport::Threaded)
    }

    /// Starts a server using the given [`Transport`].
    pub fn start_with(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
    ) -> std::io::Result<HttpServer> {
        match transport {
            Transport::Threaded => {
                let listener = TcpListener::bind(("127.0.0.1", port))?;
                let addr = listener.local_addr()?;
                let shutdown = Arc::new(AtomicBool::new(false));
                let shutdown_flag = shutdown.clone();
                let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));
                // The accept loop blocks — no polling.  Drop wakes it with a
                // bare connect so the flag check below runs one last time.
                let acceptor = std::thread::spawn(move || {
                    while let Ok((stream, peer)) = listener.accept() {
                        if shutdown_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        let service = service.clone();
                        let ctx_factory = ctx_factory.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, peer.ip(), &*service, &ctx_factory);
                        });
                    }
                });
                Ok(HttpServer {
                    addr,
                    transport,
                    imp: ServerImpl::Threaded {
                        shutdown,
                        acceptor: Some(acceptor),
                    },
                })
            }
            Transport::Reactor => {
                let server = ReactorServer::start(port, service)?;
                Ok(HttpServer {
                    addr: server.addr(),
                    transport,
                    imp: ServerImpl::Reactor { _server: server },
                })
            }
        }
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Which [`Transport`] this server runs on.
    pub fn transport(&self) -> Transport {
        self.transport
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // Joining the accept loop makes shutdown deterministic: once drop
        // returns, nothing accepts on the port.  (The reactor variant joins
        // its own threads in ReactorServer::drop.)
        if let ServerImpl::Threaded { shutdown, acceptor } = &mut self.imp {
            shutdown.store(true, Ordering::Relaxed);
            // Wake the blocking accept so the loop observes the flag and exits.
            let _ = TcpStream::connect(self.addr);
            if let Some(handle) = acceptor.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A Na Kika proxy listening on a real socket: every accepted request is
/// handed to the wrapped service stack — typically a
/// [`NodeBuilder`](nakika_core::NodeBuilder) product whose origin is a
/// [`TcpOrigin`], so the node fetches whatever it needs over outbound TCP.
pub struct ProxyServer {
    inner: HttpServer,
}

impl ProxyServer {
    /// Starts the proxy on `127.0.0.1:port` in front of `service`, thread
    /// per connection.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<ProxyServer> {
        ProxyServer::start_with(port, service, Transport::Threaded)
    }

    /// Starts the proxy using the given [`Transport`].
    pub fn start_with(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
    ) -> std::io::Result<ProxyServer> {
        Ok(ProxyServer {
            inner: HttpServer::start_with(port, service, transport)?,
        })
    }

    /// The address the proxy listens on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Which [`Transport`] this proxy runs on.
    pub fn transport(&self) -> Transport {
        self.inner.transport()
    }
}

/// An [`OriginFetch`] that performs real outbound HTTP/1.1 requests over
/// TCP, reusing keep-alive connections through a small per-host pool.
pub struct TcpOrigin {
    pool: Mutex<HashMap<(String, u16), Vec<TcpStream>>>,
    max_idle_per_host: usize,
}

impl TcpOrigin {
    /// An origin fetcher keeping up to 4 idle connections per host.
    pub fn new() -> TcpOrigin {
        TcpOrigin {
            pool: Mutex::new(HashMap::new()),
            max_idle_per_host: 4,
        }
    }

    /// Number of idle pooled connections to `host:port` (for tests).
    pub fn idle_connections(&self, host: &str, port: u16) -> usize {
        self.pool
            .lock()
            .get(&(host.to_string(), port))
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Fetches `request` from its origin, reusing a pooled connection when
    /// one is available and returning the connection to the pool when the
    /// origin keeps it alive.
    pub fn fetch(&self, request: &Request) -> Result<Response, NakikaError> {
        let uri = request.uri.to_origin();
        let url = uri.to_string();
        let key = (uri.host.clone(), uri.port);
        let mut outbound = request.clone();
        outbound.uri = uri;
        // Connection management is this hop's business: forwarding a
        // client's hop-by-hop `Connection: close` would defeat the pool.
        outbound.headers.remove("Connection");

        // A pooled connection may have been closed by the origin since it
        // was parked; one failure there falls back to a fresh connection.
        // Only idempotent requests take that path — a replayed POST could
        // execute its side effect twice if the origin processed the first
        // attempt before closing.
        // (The guard must drop before `exchange` — `park` re-locks the pool.)
        if request.method.is_idempotent() {
            let pooled = { self.pool.lock().get_mut(&key).and_then(Vec::pop) };
            if let Some(mut stream) = pooled {
                if let Ok(response) = exchange(&mut stream, &outbound, &url) {
                    self.park(&key, stream, &response);
                    return Ok(response);
                }
            }
        }
        let mut stream =
            TcpStream::connect((key.0.as_str(), key.1)).map_err(|e| NakikaError::Upstream {
                url: url.clone(),
                reason: format!("connect failed: {e}"),
            })?;
        let response = exchange(&mut stream, &outbound, &url)?;
        self.park(&key, stream, &response);
        Ok(response)
    }

    fn park(&self, key: &(String, u16), stream: TcpStream, response: &Response) {
        if !response.headers.keep_alive(response.version_11) {
            return;
        }
        let mut pool = self.pool.lock();
        let idle = pool.entry(key.clone()).or_default();
        if idle.len() < self.max_idle_per_host {
            idle.push(stream);
        }
    }
}

impl Default for TcpOrigin {
    fn default() -> TcpOrigin {
        TcpOrigin::new()
    }
}

impl OriginFetch for TcpOrigin {
    fn fetch_origin(&self, request: &Request) -> Response {
        match self.fetch(request) {
            Ok(response) => response,
            Err(error) => error.to_response(),
        }
    }
}

/// Writes `outbound` to `stream` and reads one complete response, surfacing
/// I/O failures and truncation as [`NakikaError::Upstream`].
fn exchange(
    stream: &mut TcpStream,
    outbound: &Request,
    url: &str,
) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| upstream(format!("socket setup failed: {e}")))?;
    stream
        .write_all(&serialize_request(outbound))
        .map_err(|e| upstream(format!("write failed: {e}")))?;
    read_response(stream, url)
}

/// Reads one complete HTTP response off `stream`.
fn read_response(stream: &mut TcpStream, url: &str) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { .. }) = nakika_http::parse_response(&buffer) {
                    break;
                }
            }
            Err(e) => {
                return Err(upstream(format!(
                    "read failed after {} bytes: {e}",
                    buffer.len()
                )))
            }
        }
    }
    match nakika_http::parse_response(&buffer) {
        Ok(ParseOutcome::Complete { message, .. }) => Ok(message),
        _ => Err(upstream(format!(
            "truncated or malformed response ({} bytes)",
            buffer.len()
        ))),
    }
}

/// Performs a one-shot blocking HTTP request (`Connection: close`) to the
/// host named in `request`'s URI.
pub fn http_fetch(request: &Request) -> Result<Response, NakikaError> {
    let uri = request.uri.to_origin();
    let url = uri.to_string();
    let mut outbound = request.clone();
    outbound.uri = uri.clone();
    outbound.headers.set("Connection", "close");
    let mut stream =
        TcpStream::connect((uri.host.as_str(), uri.port)).map_err(|e| NakikaError::Upstream {
            url: url.clone(),
            reason: format!("connect failed: {e}"),
        })?;
    exchange(&mut stream, &outbound, &url)
}

/// Issues a plain GET to `url` (used by examples and tests as a tiny client).
pub fn http_get(url: &str) -> Result<Response, NakikaError> {
    http_fetch(&Request::get(url))
}

/// A minimal keep-alive HTTP/1.1 client for talking to a proxy: one TCP
/// connection, absolute-form request lines, as many sequential exchanges as
/// the caller wants.  This is what the benchmark suite and the concurrency
/// soak test use to hold many simultaneous keep-alive sessions open.
pub struct ProxyClient {
    stream: TcpStream,
}

impl ProxyClient {
    /// Connects to the proxy at `proxy`.
    pub fn connect(proxy: SocketAddr) -> Result<ProxyClient, NakikaError> {
        let stream = TcpStream::connect(proxy).map_err(|e| NakikaError::Upstream {
            url: format!("http://{proxy}"),
            reason: format!("connect failed: {e}"),
        })?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| NakikaError::Upstream {
                url: format!("http://{proxy}"),
                reason: format!("socket setup failed: {e}"),
            })?;
        Ok(ProxyClient { stream })
    }

    /// Issues one GET for `url` on the kept-alive connection and reads the
    /// complete response.
    pub fn get(&mut self, url: &str) -> Result<Response, NakikaError> {
        self.send(&Request::get(url))
    }

    /// Writes one absolute-form request and reads its response.
    fn send(&mut self, request: &Request) -> Result<Response, NakikaError> {
        let url = request.uri.to_string();
        self.stream
            .write_all(&nakika_http::serialize::serialize_request_absolute(request))
            .map_err(|e| NakikaError::Upstream {
                url: url.clone(),
                reason: format!("write failed: {e}"),
            })?;
        read_response(&mut self.stream, &url)
    }
}

/// Issues a GET for `url` through the proxy at `proxy` (absolute-form request
/// line, as a browser configured with an explicit proxy would send), closing
/// the connection after the exchange.  One-shot wrapper over [`ProxyClient`].
pub fn http_get_via_proxy(proxy: SocketAddr, url: &str) -> Result<Response, NakikaError> {
    let mut client = ProxyClient::connect(proxy)?;
    let mut request = Request::get(url);
    request.headers.set("Connection", "close");
    client.send(&request)
}

/// The blocking transport's connection loop, over the same sans-IO
/// [`HttpConn`] engine the reactor uses: read, feed, dispatch, flush,
/// repeat until a request (or error) closes the session.
fn serve_connection(
    mut stream: TcpStream,
    peer: IpAddr,
    service: &dyn HttpService,
    ctx_factory: &CtxFactory,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut conn = HttpConn::new(peer);
    let mut chunk = [0u8; 8192];
    loop {
        conn.dispatch(service, ctx_factory);
        while conn.wants_write() {
            let n = stream.write(conn.pending_output())?;
            if n == 0 {
                return Ok(());
            }
            conn.advance_output(n);
        }
        if !conn.is_open() {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => conn.feed(&chunk[..n]),
            Err(_) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::service::{service_fn, RequestCtx};
    use nakika_core::NodeBuilder;
    use nakika_http::StatusCode;

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx: &RequestCtx| {
            if request.uri.path.ends_with(".js") {
                return Ok(Response::error(StatusCode::NOT_FOUND));
            }
            Ok(Response::ok(
                "text/html",
                format!("hello from origin: {}", request.uri.path),
            )
            .with_header("Cache-Control", "max-age=60"))
        })
    }

    #[test]
    fn http_server_round_trip() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn proxy_serves_and_caches_over_real_sockets() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let edge = Arc::new(
            NodeBuilder::plain_proxy("tcp-edge")
                .origin(Arc::new(TcpOrigin::new()))
                .build(),
        );
        let proxy = ProxyServer::start(0, edge.service()).unwrap();

        let url = format!("{}/page.html", origin.base_url());
        let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(first.status, StatusCode::OK);
        assert!(first.body.to_text().contains("hello from origin"));
        let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(second.body.to_text(), first.body.to_text());
        assert!(
            edge.node().cache_stats().hits >= 1,
            "second request hits the cache"
        );
    }

    #[test]
    fn tcp_origin_reuses_keep_alive_connections() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let fetcher = TcpOrigin::new();
        let host = origin.addr().ip().to_string();
        let port = origin.addr().port();
        for i in 0..3 {
            let response = fetcher
                .fetch(&Request::get(&format!("{}/r{i}.html", origin.base_url())))
                .unwrap();
            assert_eq!(response.status, StatusCode::OK);
        }
        assert_eq!(
            fetcher.idle_connections(&host, port),
            1,
            "sequential fetches reuse one pooled connection"
        );
    }

    #[test]
    fn upstream_failures_surface_as_typed_errors_and_502() {
        // Nothing listens on this port: the fetch itself reports Upstream...
        let request = Request::get("http://127.0.0.1:1/page");
        match http_fetch(&request) {
            Err(NakikaError::Upstream { reason, .. }) => {
                assert!(reason.contains("connect failed"), "reason: {reason}")
            }
            other => panic!("expected an upstream error, got {other:?}"),
        }
        // ...and a node fronting the dead origin answers 502 with the reason.
        let edge = NodeBuilder::plain_proxy("edge")
            .origin(Arc::new(TcpOrigin::new()))
            .build();
        let response = edge
            .call(request, &RequestCtx::at(10))
            .expect("the node converts origin failures into responses");
        assert_eq!(response.status, StatusCode::BAD_GATEWAY);
        assert_eq!(response.headers.get("X-Nakika-Error"), Some("upstream"));
        assert!(response.body.to_text().contains("connect failed"));
    }

    #[test]
    fn keep_alive_connections_serve_multiple_requests() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn bad_requests_get_a_400() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_server_stops_accepting() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        // Drop joins the accept loop, so by the time it returns the listener
        // is closed — deterministically, with no timing window to sleep over.
        drop(server);
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                // If the OS still hands out a backlogged connection, the
                // read must fail/EOF because nothing serves it.
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }

    #[test]
    fn proxy_client_reuses_one_connection_for_many_exchanges() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let edge = Arc::new(
            NodeBuilder::plain_proxy("client-edge")
                .origin(Arc::new(TcpOrigin::new()))
                .build(),
        );
        let proxy = ProxyServer::start(0, edge.service()).unwrap();
        let mut client = ProxyClient::connect(proxy.addr()).unwrap();
        let url = format!("{}/ka.html", origin.base_url());
        for _ in 0..4 {
            let response = client.get(&url).unwrap();
            assert_eq!(response.status, StatusCode::OK);
        }
        assert_eq!(edge.node().cache_stats().hits, 3);
    }

    #[test]
    fn both_transports_serve_the_same_service_stack() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let url = format!("{}/same.html", origin.base_url());
        let mut bodies = Vec::new();
        for transport in [Transport::Threaded, Transport::Reactor] {
            let edge = Arc::new(
                NodeBuilder::plain_proxy("transport-edge")
                    .origin(Arc::new(TcpOrigin::new()))
                    .build(),
            );
            let proxy = ProxyServer::start_with(0, edge.service(), transport).unwrap();
            assert_eq!(proxy.transport(), transport);
            let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
            let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
            assert_eq!(first.body.to_text(), second.body.to_text());
            assert!(edge.node().cache_stats().hits >= 1);
            bodies.push(first.body.to_text());
        }
        assert_eq!(bodies[0], bodies[1], "transports are byte-compatible");
    }
}
