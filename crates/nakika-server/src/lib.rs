//! Real-socket front-ends for Na Kika: a blocking, thread-per-connection HTTP
//! server and proxy, so the examples run end-to-end over localhost TCP
//! exactly as a small deployment would (the paper's prototype embeds the same
//! logic in Apache's prefork worker processes).
//!
//! Both servers speak [`HttpService`]: an [`HttpServer`] fronts any service
//! (an origin built with [`service_fn`](nakika_core::service_fn), or a full
//! node stack from [`NodeBuilder`](nakika_core::NodeBuilder)), mints a
//! [`RequestCtx`] per exchange from the [`WallClock`], and maps typed
//! [`NakikaError`]s to status codes at the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nakika_core::service::{Clock, CtxFactory, HttpService, NakikaError, RequestCtx};
use nakika_core::OriginFetch;
use nakika_http::{parse_request, serialize_request, serialize_response, ParseOutcome};
use nakika_http::{Request, Response, StatusCode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The real transports' [`Clock`]: seconds since the Unix epoch.
pub struct WallClock;

impl Clock for WallClock {
    fn now_secs(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A minimal blocking HTTP/1.1 server: one thread per connection, fronting
/// any [`HttpService`].
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Starts a server on `127.0.0.1:port` (port 0 picks a free port) and
    /// serves `service` until the value is dropped.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));
        // The accept loop blocks — no polling.  Drop wakes it with a bare
        // connect so the flag check below runs one last time.
        std::thread::spawn(move || {
            while let Ok((stream, peer)) = listener.accept() {
                if shutdown_flag.load(Ordering::Relaxed) {
                    break;
                }
                let service = service.clone();
                let ctx_factory = ctx_factory.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, peer.ip(), &*service, &ctx_factory);
                });
            }
        });
        Ok(HttpServer { addr, shutdown })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept so the loop observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A Na Kika proxy listening on a real socket: every accepted request is
/// handed to the wrapped service stack — typically a
/// [`NodeBuilder`](nakika_core::NodeBuilder) product whose origin is a
/// [`TcpOrigin`], so the node fetches whatever it needs over outbound TCP.
pub struct ProxyServer {
    inner: HttpServer,
}

impl ProxyServer {
    /// Starts the proxy on `127.0.0.1:port` in front of `service`.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<ProxyServer> {
        Ok(ProxyServer {
            inner: HttpServer::start(port, service)?,
        })
    }

    /// The address the proxy listens on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }
}

/// An [`OriginFetch`] that performs real outbound HTTP/1.1 requests over
/// TCP, reusing keep-alive connections through a small per-host pool.
pub struct TcpOrigin {
    pool: Mutex<HashMap<(String, u16), Vec<TcpStream>>>,
    max_idle_per_host: usize,
}

impl TcpOrigin {
    /// An origin fetcher keeping up to 4 idle connections per host.
    pub fn new() -> TcpOrigin {
        TcpOrigin {
            pool: Mutex::new(HashMap::new()),
            max_idle_per_host: 4,
        }
    }

    /// Number of idle pooled connections to `host:port` (for tests).
    pub fn idle_connections(&self, host: &str, port: u16) -> usize {
        self.pool
            .lock()
            .get(&(host.to_string(), port))
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Fetches `request` from its origin, reusing a pooled connection when
    /// one is available and returning the connection to the pool when the
    /// origin keeps it alive.
    pub fn fetch(&self, request: &Request) -> Result<Response, NakikaError> {
        let uri = request.uri.to_origin();
        let url = uri.to_string();
        let key = (uri.host.clone(), uri.port);
        let mut outbound = request.clone();
        outbound.uri = uri;
        // Connection management is this hop's business: forwarding a
        // client's hop-by-hop `Connection: close` would defeat the pool.
        outbound.headers.remove("Connection");

        // A pooled connection may have been closed by the origin since it
        // was parked; one failure there falls back to a fresh connection.
        // Only idempotent requests take that path — a replayed POST could
        // execute its side effect twice if the origin processed the first
        // attempt before closing.
        // (The guard must drop before `exchange` — `park` re-locks the pool.)
        if request.method.is_idempotent() {
            let pooled = { self.pool.lock().get_mut(&key).and_then(Vec::pop) };
            if let Some(mut stream) = pooled {
                if let Ok(response) = exchange(&mut stream, &outbound, &url) {
                    self.park(&key, stream, &response);
                    return Ok(response);
                }
            }
        }
        let mut stream =
            TcpStream::connect((key.0.as_str(), key.1)).map_err(|e| NakikaError::Upstream {
                url: url.clone(),
                reason: format!("connect failed: {e}"),
            })?;
        let response = exchange(&mut stream, &outbound, &url)?;
        self.park(&key, stream, &response);
        Ok(response)
    }

    fn park(&self, key: &(String, u16), stream: TcpStream, response: &Response) {
        if !response.headers.keep_alive(response.version_11) {
            return;
        }
        let mut pool = self.pool.lock();
        let idle = pool.entry(key.clone()).or_default();
        if idle.len() < self.max_idle_per_host {
            idle.push(stream);
        }
    }
}

impl Default for TcpOrigin {
    fn default() -> TcpOrigin {
        TcpOrigin::new()
    }
}

impl OriginFetch for TcpOrigin {
    fn fetch_origin(&self, request: &Request) -> Response {
        match self.fetch(request) {
            Ok(response) => response,
            Err(error) => error.to_response(),
        }
    }
}

/// Writes `outbound` to `stream` and reads one complete response, surfacing
/// I/O failures and truncation as [`NakikaError::Upstream`].
fn exchange(
    stream: &mut TcpStream,
    outbound: &Request,
    url: &str,
) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| upstream(format!("socket setup failed: {e}")))?;
    stream
        .write_all(&serialize_request(outbound))
        .map_err(|e| upstream(format!("write failed: {e}")))?;
    read_response(stream, url)
}

/// Reads one complete HTTP response off `stream`.
fn read_response(stream: &mut TcpStream, url: &str) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { .. }) = nakika_http::parse_response(&buffer) {
                    break;
                }
            }
            Err(e) => {
                return Err(upstream(format!(
                    "read failed after {} bytes: {e}",
                    buffer.len()
                )))
            }
        }
    }
    match nakika_http::parse_response(&buffer) {
        Ok(ParseOutcome::Complete { message, .. }) => Ok(message),
        _ => Err(upstream(format!(
            "truncated or malformed response ({} bytes)",
            buffer.len()
        ))),
    }
}

/// Performs a one-shot blocking HTTP request (`Connection: close`) to the
/// host named in `request`'s URI.
pub fn http_fetch(request: &Request) -> Result<Response, NakikaError> {
    let uri = request.uri.to_origin();
    let url = uri.to_string();
    let mut outbound = request.clone();
    outbound.uri = uri.clone();
    outbound.headers.set("Connection", "close");
    let mut stream =
        TcpStream::connect((uri.host.as_str(), uri.port)).map_err(|e| NakikaError::Upstream {
            url: url.clone(),
            reason: format!("connect failed: {e}"),
        })?;
    exchange(&mut stream, &outbound, &url)
}

/// Issues a plain GET to `url` (used by examples and tests as a tiny client).
pub fn http_get(url: &str) -> Result<Response, NakikaError> {
    http_fetch(&Request::get(url))
}

/// Issues a GET for `url` through the proxy at `proxy` (absolute-form request
/// line, as a browser configured with an explicit proxy would send).
pub fn http_get_via_proxy(proxy: SocketAddr, url: &str) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    let mut stream =
        TcpStream::connect(proxy).map_err(|e| upstream(format!("connect failed: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| upstream(format!("socket setup failed: {e}")))?;
    let mut request = Request::get(url);
    request.headers.set("Connection", "close");
    stream
        .write_all(&nakika_http::serialize::serialize_request_absolute(
            &request,
        ))
        .map_err(|e| upstream(format!("write failed: {e}")))?;
    read_response(&mut stream, url)
}

fn serve_connection(
    mut stream: TcpStream,
    peer: IpAddr,
    service: &dyn HttpService,
    ctx_factory: &CtxFactory,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        let request = loop {
            match parse_request(&buffer) {
                Ok(ParseOutcome::Complete { message, consumed }) => {
                    buffer.drain(..consumed);
                    break Some(message);
                }
                Ok(ParseOutcome::Partial) => {}
                Err(_) => {
                    let _ = stream.write_all(&serialize_response(&Response::error(
                        StatusCode::BAD_REQUEST,
                    )));
                    return Ok(());
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => break None,
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                Err(_) => break None,
            }
        };
        let Some(mut request) = request else {
            return Ok(());
        };
        request.client_ip = peer;
        let keep_alive = request.headers.keep_alive(request.version_11);
        let ctx: RequestCtx = ctx_factory.make(peer);
        // The wire is where platform errors become status codes.
        let response = match service.call(request, &ctx) {
            Ok(response) => response,
            Err(error) => error.to_response(),
        };
        stream.write_all(&serialize_response(&response))?;
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::service::service_fn;
    use nakika_core::NodeBuilder;

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx: &RequestCtx| {
            if request.uri.path.ends_with(".js") {
                return Ok(Response::error(StatusCode::NOT_FOUND));
            }
            Ok(Response::ok(
                "text/html",
                format!("hello from origin: {}", request.uri.path),
            )
            .with_header("Cache-Control", "max-age=60"))
        })
    }

    #[test]
    fn http_server_round_trip() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn proxy_serves_and_caches_over_real_sockets() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let edge = Arc::new(
            NodeBuilder::plain_proxy("tcp-edge")
                .origin(Arc::new(TcpOrigin::new()))
                .build(),
        );
        let proxy = ProxyServer::start(0, edge.service()).unwrap();

        let url = format!("{}/page.html", origin.base_url());
        let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(first.status, StatusCode::OK);
        assert!(first.body.to_text().contains("hello from origin"));
        let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(second.body.to_text(), first.body.to_text());
        assert!(
            edge.node().cache_stats().hits >= 1,
            "second request hits the cache"
        );
    }

    #[test]
    fn tcp_origin_reuses_keep_alive_connections() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let fetcher = TcpOrigin::new();
        let host = origin.addr().ip().to_string();
        let port = origin.addr().port();
        for i in 0..3 {
            let response = fetcher
                .fetch(&Request::get(&format!("{}/r{i}.html", origin.base_url())))
                .unwrap();
            assert_eq!(response.status, StatusCode::OK);
        }
        assert_eq!(
            fetcher.idle_connections(&host, port),
            1,
            "sequential fetches reuse one pooled connection"
        );
    }

    #[test]
    fn upstream_failures_surface_as_typed_errors_and_502() {
        // Nothing listens on this port: the fetch itself reports Upstream...
        let request = Request::get("http://127.0.0.1:1/page");
        match http_fetch(&request) {
            Err(NakikaError::Upstream { reason, .. }) => {
                assert!(reason.contains("connect failed"), "reason: {reason}")
            }
            other => panic!("expected an upstream error, got {other:?}"),
        }
        // ...and a node fronting the dead origin answers 502 with the reason.
        let edge = NodeBuilder::plain_proxy("edge")
            .origin(Arc::new(TcpOrigin::new()))
            .build();
        let response = edge
            .call(request, &RequestCtx::at(10))
            .expect("the node converts origin failures into responses");
        assert_eq!(response.status, StatusCode::BAD_GATEWAY);
        assert_eq!(response.headers.get("X-Nakika-Error"), Some("upstream"));
        assert!(response.body.to_text().contains("connect failed"));
    }

    #[test]
    fn keep_alive_connections_serve_multiple_requests() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn bad_requests_get_a_400() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_server_stops_accepting() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        drop(server);
        // The wake connection consumed the shutdown; subsequent connects are
        // refused (or accepted by nothing and reset).
        std::thread::sleep(Duration::from_millis(50));
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                // If the OS still accepts (backlog), the read must fail/EOF.
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }
}
