//! Real-socket front-ends for Na Kika: two interchangeable HTTP/1.1
//! transports over localhost TCP, selected by [`Transport`].
//!
//! - [`Transport::Threaded`] — the classic blocking, thread-per-connection
//!   server (the paper's prototype embeds the same logic in Apache's prefork
//!   worker processes).  Simple, and a blocking origin fetch only ever stalls
//!   its own connection; concurrency is capped by thread count.
//! - [`Transport::Reactor`] — a readiness-driven non-blocking server
//!   ([`ReactorServer`]): a few event-loop threads multiplex every
//!   connection through `epoll`/`poll`, so hundreds of simultaneous
//!   keep-alive clients cost slab slots instead of parked threads.  Warm
//!   cache hits dispatch inline on the event loop; cold origin fetches and
//!   origin-socket body pulls are offloaded to a worker pool (sized by
//!   [`ReactorConfig`]) with the connection parked meanwhile, so one slow
//!   origin never stalls the other connections.
//!
//! Both transports drive the exact same sans-IO connection state machine and
//! the exact same [`HttpService`] stack: an [`HttpServer`] fronts any service
//! (an origin built with [`service_fn`](nakika_core::service_fn), or a full
//! node stack from [`NodeBuilder`](nakika_core::NodeBuilder)), mints a
//! [`RequestCtx`](nakika_core::service::RequestCtx) per exchange from the
//! [`WallClock`], and maps typed [`NakikaError`]s to status codes at the
//! wire.  See `docs/ARCHITECTURE.md` for when to pick which transport.
//!
//! ```no_run
//! use nakika_core::service::service_fn;
//! use nakika_server::{http_get, HttpServer, Transport};
//! use nakika_http::Response;
//!
//! let service = service_fn(|_req, _ctx| Ok(Response::ok("text/plain", "hi")));
//! let server = HttpServer::start_with(0, service, Transport::Reactor)?;
//! let resp = http_get(&format!("{}/x", server.base_url()))?;
//! assert!(resp.status.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `unsafe` is confined to the readiness FFI in `sys`, which opts back in.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod reactor;
mod relay;
mod sys;
mod timer;

pub use conn::OUTPUT_WINDOW_BYTES;
pub use reactor::{ReactorConfig, ReactorServer};

use conn::OutputGauge;

use bytes::Bytes;
use conn::HttpConn;
use nakika_core::service::{Clock, CtxFactory, HttpService, NakikaError};
use nakika_core::OriginFetch;
use nakika_http::{
    parse_response_head, serialize_request, Body, BodyFraming, ChunkSource, ChunkedDecoder,
    ParseOutcome, ResponseHead, STREAM_CHUNK_BYTES,
};
use nakika_http::{Request, Response};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The real transports' [`Clock`]: seconds since the Unix epoch.
pub struct WallClock;

impl Clock for WallClock {
    fn now_secs(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// Hostile-traffic survival knobs shared by both transports: how long a
/// connection may sit without protocol progress, and how many connections
/// the server holds at once.  See `docs/ARCHITECTURE.md`, "Surviving
/// hostile traffic".
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Per-connection deadline in milliseconds.  A connection that makes
    /// no protocol progress — no complete request parsed, no pending
    /// output drained — for this long is evicted (counted in
    /// [`ServerStats::timeouts`]; a 408 is sent when the connection is at
    /// a request boundary).  Raw bytes are *not* progress: a slow-loris
    /// client dripping header bytes is evicted all the same.  `0` (the
    /// default) means [`DEFAULT_IDLE_TIMEOUT_MS`].
    pub idle_timeout_ms: u64,
    /// Hard cap on concurrently open client connections.  Arrivals past
    /// the cap are answered with a canned `503` and closed immediately
    /// (counted in [`ServerStats::rejected_over_cap`]).  `0` (the
    /// default) means unlimited.
    pub max_connections: usize,
}

/// Default per-connection progress deadline (30 s), generous enough for
/// polite keep-alive reuse and origin stalls, short enough to reclaim
/// slab slots and threads from abandoned or adversarial peers.
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 30_000;

impl ServerOptions {
    pub(crate) fn resolved_idle_timeout_ms(&self) -> u64 {
        if self.idle_timeout_ms > 0 {
            self.idle_timeout_ms
        } else {
            DEFAULT_IDLE_TIMEOUT_MS
        }
    }
}

/// Survival counters for one server, in the same always-on spirit as
/// [`CacheStats`](nakika_core::CacheStats): cheap atomics bumped on the
/// serving paths, snapshot by accessor.
#[derive(Debug, Default)]
pub struct ServerStats {
    timeouts: AtomicU64,
    rejected_over_cap: AtomicU64,
    open_connections: AtomicUsize,
    worker_submissions: AtomicU64,
    spliced_relays: AtomicU64,
    relay_aborts: AtomicU64,
}

impl ServerStats {
    /// Connections evicted by the idle/progress deadline.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Work units handed to the reactor's worker pool — one per offloaded
    /// service call or blocking body pull.  Always 0 on the threaded
    /// transport (it has no pool), and stays 0 for reactor misses served by
    /// the event-loop splice: the zero-hand-off regression test pins this.
    pub fn worker_submissions(&self) -> u64 {
        self.worker_submissions.load(Ordering::Relaxed)
    }

    /// Cache-miss responses relayed origin→client entirely on the event
    /// loop (the splice path), counted when the origin's response head is
    /// accepted.
    pub fn spliced_relays(&self) -> u64 {
        self.spliced_relays.load(Ordering::Relaxed)
    }

    /// Spliced relays that failed after the response head was already
    /// committed to the client — the client connection is aborted so the
    /// truncation stays detectable (never a silently short body).
    pub fn relay_aborts(&self) -> u64 {
        self.relay_aborts.load(Ordering::Relaxed)
    }

    /// Connections refused because [`ServerOptions::max_connections`] was
    /// reached.
    pub fn rejected_over_cap(&self) -> u64 {
        self.rejected_over_cap.load(Ordering::Relaxed)
    }

    /// Client connections currently open.
    pub fn open_connections(&self) -> usize {
        self.open_connections.load(Ordering::Relaxed)
    }

    pub(crate) fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_worker_submission(&self) {
        self.worker_submissions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_spliced_relay(&self) {
        self.spliced_relays.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_relay_abort(&self) {
        self.relay_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_over_cap(&self) {
        self.rejected_over_cap.fetch_add(1, Ordering::Relaxed);
    }

    /// Claims a connection slot; `false` (and a bumped rejection counter)
    /// when the cap is already reached.  `cap == 0` means unlimited.
    pub(crate) fn try_open(&self, cap: usize) -> bool {
        let open = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        if cap > 0 && open > cap {
            self.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.note_over_cap();
            return false;
        }
        true
    }

    pub(crate) fn close_connection(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The canned response written to connections refused over the cap; kept
/// static so the rejection path allocates nothing.
pub(crate) const OVER_CAP_RESPONSE: &[u8] =
    b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";

/// The canned response for a connection evicted at a request boundary.
pub(crate) const TIMEOUT_RESPONSE: &[u8] =
    b"HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";

/// Which connection-handling strategy a front-end server uses.
///
/// Both transports serve the identical [`HttpService`] stack and speak the
/// same HTTP/1.1 (keep-alive, pipelining, error mapping); they differ only
/// in how connections map onto threads.  See the crate docs and
/// `docs/ARCHITECTURE.md` for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One blocking thread per connection (the default).
    #[default]
    Threaded,
    /// A few readiness-driven event-loop threads multiplexing every
    /// connection, with blocking origin I/O offloaded to a worker pool
    /// ([`ReactorServer`]; use
    /// [`ReactorServer::start_with_config`] to pin the thread counts).
    Reactor,
}

/// The transport machinery behind a running [`HttpServer`].
enum ServerImpl {
    Threaded {
        shutdown: Arc<AtomicBool>,
        acceptor: Option<JoinHandle<()>>,
        gauge: Arc<OutputGauge>,
        stats: Arc<ServerStats>,
    },
    // Held for its Drop (which joins the reactor threads) and its gauge.
    Reactor {
        server: ReactorServer,
    },
}

/// A minimal HTTP/1.1 server fronting any [`HttpService`], over either
/// [`Transport`].
pub struct HttpServer {
    addr: SocketAddr,
    transport: Transport,
    imp: ServerImpl,
}

impl HttpServer {
    /// Starts a thread-per-connection server on `127.0.0.1:port` (port 0
    /// picks a free port) and serves `service` until the value is dropped.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<HttpServer> {
        HttpServer::start_with(port, service, Transport::Threaded)
    }

    /// Starts a server using the given [`Transport`] with default
    /// [`ServerOptions`].
    pub fn start_with(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_with_options(port, service, transport, ServerOptions::default())
    }

    /// Starts a server using the given [`Transport`] and survival knobs.
    pub fn start_with_options(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
        options: ServerOptions,
    ) -> std::io::Result<HttpServer> {
        match transport {
            Transport::Threaded => {
                let listener = TcpListener::bind(("127.0.0.1", port))?;
                let addr = listener.local_addr()?;
                let shutdown = Arc::new(AtomicBool::new(false));
                let shutdown_flag = shutdown.clone();
                let ctx_factory = Arc::new(CtxFactory::new(Arc::new(WallClock)));
                let gauge = Arc::new(OutputGauge::default());
                let conn_gauge = gauge.clone();
                let stats = Arc::new(ServerStats::default());
                let accept_stats = stats.clone();
                // The accept loop blocks — no polling.  Drop wakes it with a
                // bare connect so the flag check below runs one last time.
                let acceptor = std::thread::spawn(move || {
                    while let Ok((mut stream, peer)) = listener.accept() {
                        if shutdown_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        if !accept_stats.try_open(options.max_connections) {
                            // Over the cap: a canned 503 and an immediate
                            // close, without spending a thread on the peer.
                            let _ = stream.write_all(OVER_CAP_RESPONSE);
                            continue;
                        }
                        let service = service.clone();
                        let ctx_factory = ctx_factory.clone();
                        let gauge = conn_gauge.clone();
                        let stats = accept_stats.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(
                                stream,
                                peer.ip(),
                                &*service,
                                &ctx_factory,
                                gauge,
                                &stats,
                                options,
                            );
                            stats.close_connection();
                        });
                    }
                });
                Ok(HttpServer {
                    addr,
                    transport,
                    imp: ServerImpl::Threaded {
                        shutdown,
                        acceptor: Some(acceptor),
                        gauge,
                        stats,
                    },
                })
            }
            Transport::Reactor => HttpServer::start_reactor(
                port,
                service,
                ReactorConfig {
                    options,
                    ..ReactorConfig::default()
                },
            ),
        }
    }

    /// Starts a reactor-transport server with an explicit [`ReactorConfig`]
    /// — thread counts, survival knobs, and whether cache-miss origin
    /// relays are spliced on the event loop (`splice_origin`) or offloaded
    /// to the worker pool.
    pub fn start_reactor(
        port: u16,
        service: Arc<dyn HttpService>,
        config: ReactorConfig,
    ) -> std::io::Result<HttpServer> {
        let server = ReactorServer::start_with_config(port, service, config)?;
        Ok(HttpServer {
            addr: server.addr(),
            transport: Transport::Reactor,
            imp: ServerImpl::Reactor { server },
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Which [`Transport`] this server runs on.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Highest number of serialized-but-unsent bytes any of *this
    /// server's* connections has held — the bounded-output-window
    /// instrument (see [`OUTPUT_WINDOW_BYTES`]).  Scoped per server, so
    /// concurrently running servers (e.g. parallel tests) do not
    /// contaminate each other's measurements.
    pub fn peak_buffered_output(&self) -> usize {
        match &self.imp {
            ServerImpl::Threaded { gauge, .. } => gauge.peak(),
            ServerImpl::Reactor { server } => server.peak_buffered_output(),
        }
    }

    /// This server's survival counters (deadline evictions, over-cap
    /// rejections, open connections).
    pub fn stats(&self) -> &ServerStats {
        match &self.imp {
            ServerImpl::Threaded { stats, .. } => stats,
            ServerImpl::Reactor { server } => server.stats(),
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // Joining the accept loop makes shutdown deterministic: once drop
        // returns, nothing accepts on the port.  (The reactor variant joins
        // its own threads in ReactorServer::drop.)
        if let ServerImpl::Threaded {
            shutdown, acceptor, ..
        } = &mut self.imp
        {
            shutdown.store(true, Ordering::Relaxed);
            // Wake the blocking accept so the loop observes the flag and exits.
            let _ = TcpStream::connect(self.addr);
            if let Some(handle) = acceptor.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A Na Kika proxy listening on a real socket: every accepted request is
/// handed to the wrapped service stack — typically a
/// [`NodeBuilder`](nakika_core::NodeBuilder) product whose origin is a
/// [`TcpOrigin`], so the node fetches whatever it needs over outbound TCP.
pub struct ProxyServer {
    inner: HttpServer,
}

impl ProxyServer {
    /// Starts the proxy on `127.0.0.1:port` in front of `service`, thread
    /// per connection.
    pub fn start(port: u16, service: Arc<dyn HttpService>) -> std::io::Result<ProxyServer> {
        ProxyServer::start_with(port, service, Transport::Threaded)
    }

    /// Starts the proxy using the given [`Transport`].
    pub fn start_with(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
    ) -> std::io::Result<ProxyServer> {
        Ok(ProxyServer {
            inner: HttpServer::start_with(port, service, transport)?,
        })
    }

    /// Starts the proxy on the reactor transport with an explicit
    /// [`ReactorConfig`] — see [`HttpServer::start_reactor`].
    pub fn start_reactor(
        port: u16,
        service: Arc<dyn HttpService>,
        config: ReactorConfig,
    ) -> std::io::Result<ProxyServer> {
        Ok(ProxyServer {
            inner: HttpServer::start_reactor(port, service, config)?,
        })
    }

    /// Starts the proxy using the given [`Transport`] and survival knobs.
    pub fn start_with_options(
        port: u16,
        service: Arc<dyn HttpService>,
        transport: Transport,
        options: ServerOptions,
    ) -> std::io::Result<ProxyServer> {
        Ok(ProxyServer {
            inner: HttpServer::start_with_options(port, service, transport, options)?,
        })
    }

    /// The address the proxy listens on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Which [`Transport`] this proxy runs on.
    pub fn transport(&self) -> Transport {
        self.inner.transport()
    }

    /// This proxy's output high-water mark — see
    /// [`HttpServer::peak_buffered_output`].
    pub fn peak_buffered_output(&self) -> usize {
        self.inner.peak_buffered_output()
    }

    /// This proxy's survival counters — see [`HttpServer::stats`].
    pub fn stats(&self) -> &ServerStats {
        self.inner.stats()
    }
}

/// The shared connection pool behind [`TcpOrigin`].  Separated out so a
/// streamed body — which owns the socket while its chunks are relayed — can
/// return the connection here when it reaches a clean end of body.
struct PoolInner {
    idle: Mutex<HashMap<(String, u16), Vec<TcpStream>>>,
    max_idle_per_host: usize,
}

impl PoolInner {
    fn park(&self, key: &(String, u16), stream: TcpStream) {
        let mut pool = self.idle.lock();
        let idle = pool.entry(key.clone()).or_default();
        if idle.len() < self.max_idle_per_host {
            idle.push(stream);
        }
    }
}

/// An [`OriginFetch`] that performs real outbound HTTP/1.1 requests over
/// TCP, reusing keep-alive connections through a small per-host pool.
///
/// Since the v2 streaming redesign, [`TcpOrigin::fetch`] returns as soon as
/// the response *head* has arrived: the body is a
/// [`Body::Stream`](nakika_http::Body) that pulls bytes off the origin
/// socket as downstream consumers (the connection engine relaying to a
/// client, or the proxy cache's tee) ask for them.  The socket returns to
/// the keep-alive pool only when the body is drained to a clean end; a
/// body dropped half-read closes its connection.
pub struct TcpOrigin {
    pool: Arc<PoolInner>,
}

impl TcpOrigin {
    /// An origin fetcher keeping up to 4 idle connections per host.
    pub fn new() -> TcpOrigin {
        TcpOrigin {
            pool: Arc::new(PoolInner {
                idle: Mutex::new(HashMap::new()),
                max_idle_per_host: 4,
            }),
        }
    }

    /// Number of idle pooled connections to `host:port` (for tests).
    pub fn idle_connections(&self, host: &str, port: u16) -> usize {
        self.pool
            .idle
            .lock()
            .get(&(host.to_string(), port))
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Fetches `request` from its origin, reusing a pooled connection when
    /// one is available.  The returned response's body streams from the
    /// origin socket; the connection is parked back into the pool when the
    /// (keep-alive) body is drained cleanly.
    pub fn fetch(&self, request: &Request) -> Result<Response, NakikaError> {
        let uri = request.uri.to_origin();
        let url = uri.to_string();
        let key = (uri.host.clone(), uri.port);
        let mut outbound = request.clone();
        outbound.uri = uri;
        // Connection management is this hop's business: forwarding a
        // client's hop-by-hop `Connection: close` would defeat the pool.
        outbound.headers.remove("Connection");

        // A pooled connection may have been closed by the origin since it
        // was parked; a failure before the head arrives falls back to a
        // fresh connection.  Only idempotent requests take that path — a
        // replayed POST could execute its side effect twice if the origin
        // processed the first attempt before closing.  (A *body* failure
        // later is not retried: by then chunks may already be relayed.)
        if request.method.is_idempotent() {
            let pooled = { self.pool.idle.lock().get_mut(&key).and_then(Vec::pop) };
            if let Some(stream) = pooled {
                if let Ok(response) =
                    exchange_streaming(stream, &outbound, &url, Some((self.pool.clone(), &key)))
                {
                    return Ok(response);
                }
            }
        }
        let stream =
            TcpStream::connect((key.0.as_str(), key.1)).map_err(|e| NakikaError::Upstream {
                url: url.clone(),
                reason: format!("connect failed: {e}"),
            })?;
        exchange_streaming(stream, &outbound, &url, Some((self.pool.clone(), &key)))
    }
}

impl Default for TcpOrigin {
    fn default() -> TcpOrigin {
        TcpOrigin::new()
    }
}

impl OriginFetch for TcpOrigin {
    /// Misses through this origin are plain outbound HTTP over TCP — the
    /// reactor transport may serve them as an event-loop splice instead of
    /// calling [`fetch_origin`](OriginFetch::fetch_origin) on a worker.
    fn relay_eligible(&self) -> bool {
        true
    }

    fn fetch_origin(&self, request: &Request) -> Response {
        match self.fetch(request) {
            Ok(response) => response,
            Err(error) => error.to_response(),
        }
    }

    /// Fetches `request` from a peer Na Kika node over TCP.  `peer` is the
    /// base URL the peer announced to the overlay (`http://host:port`); the
    /// request goes through the peer's proxy front-end in absolute form, on
    /// the same keep-alive pool that serves origin fetches — node-to-node
    /// traffic (peer fetches, replication pushes, gossip probes) is the
    /// steadiest traffic a node generates, so paying a TCP handshake per
    /// exchange was pure overhead.  The body streams hop by hop, and the
    /// socket is parked back into the pool once it drains cleanly.
    /// Connection and read failures come back as [`NakikaError::Upstream`]
    /// naming the peer, letting the node count the failure and fall back to
    /// the origin without hiding the dead peer.
    fn fetch_peer(&self, peer: &str, request: &Request) -> Result<Response, NakikaError> {
        let peer_error = |reason: String| NakikaError::Upstream {
            url: request.uri.to_string(),
            reason: format!("peer {peer}: {reason}"),
        };
        let key = peer_pool_key(peer).map_err(&peer_error)?;
        let url = request.uri.to_string();
        let mut outbound = request.clone();
        // Connection management is this hop's business (see `fetch`).
        outbound.headers.remove("Connection");
        let wire = nakika_http::serialize::serialize_request_absolute(&outbound);
        // Stale-pooled-connection retry only for idempotent methods, for
        // the same replay reasons as in `fetch`.
        if request.method.is_idempotent() {
            let pooled = { self.pool.idle.lock().get_mut(&key).and_then(Vec::pop) };
            if let Some(stream) = pooled {
                if let Ok(response) =
                    exchange_streaming_wire(stream, &wire, &url, Some((self.pool.clone(), &key)))
                {
                    return Ok(response);
                }
            }
        }
        let stream = TcpStream::connect((key.0.as_str(), key.1))
            .map_err(|e| peer_error(format!("connect failed: {e}")))?;
        exchange_streaming_wire(stream, &wire, &url, Some((self.pool.clone(), &key))).map_err(|e| {
            match e {
                NakikaError::Upstream { reason, .. } => peer_error(reason),
                other => other,
            }
        })
    }
}

/// Parses an overlay peer payload — a base URL like `http://127.0.0.1:4001`
/// (a bare `host:port` is tolerated) — into the connection pool's
/// `(host, port)` key.
fn peer_pool_key(peer: &str) -> Result<(String, u16), String> {
    let authority = peer
        .strip_prefix("http://")
        .unwrap_or(peer)
        .trim_end_matches('/');
    match authority.rsplit_once(':') {
        Some((host, port)) => {
            let port = port.parse().map_err(|e| format!("bad port: {e}"))?;
            Ok((host.to_string(), port))
        }
        None => Ok((authority.to_string(), 80)),
    }
}

/// Reads socket bytes until a complete response head is parsed; returns the
/// head and any body bytes that arrived with it.
fn read_head(stream: &mut TcpStream, url: &str) -> Result<(ResponseHead, Vec<u8>), NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match parse_response_head(&buffer) {
            Ok(ParseOutcome::Complete { message, consumed }) => {
                buffer.drain(..consumed);
                return Ok((message, buffer));
            }
            Ok(ParseOutcome::Partial) => {}
            Err(e) => return Err(upstream(format!("malformed response head: {e}"))),
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(upstream(format!(
                    "connection closed before a complete response head ({} bytes)",
                    buffer.len()
                )))
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) => {
                return Err(upstream(format!(
                    "read failed after {} bytes: {e}",
                    buffer.len()
                )))
            }
        }
    }
}

/// Writes `outbound` to `stream`, reads the response head, and hands the
/// socket to a streaming body for the remainder.  When `park` names a pool
/// and the response is keep-alive, the socket returns there once the body
/// reaches a clean end.
fn exchange_streaming(
    stream: TcpStream,
    outbound: &Request,
    url: &str,
    park: Option<(Arc<PoolInner>, &(String, u16))>,
) -> Result<Response, NakikaError> {
    exchange_streaming_wire(stream, &serialize_request(outbound), url, park)
}

/// The transport half of [`exchange_streaming`], taking the request already
/// serialized so proxy clients can use absolute-form request lines.
fn exchange_streaming_wire(
    mut stream: TcpStream,
    wire_request: &[u8],
    url: &str,
    park: Option<(Arc<PoolInner>, &(String, u16))>,
) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| upstream(format!("socket setup failed: {e}")))?;
    stream
        .write_all(wire_request)
        .map_err(|e| upstream(format!("write failed: {e}")))?;
    let (head, leftover) = read_head(&mut stream, url)?;
    let keep_alive = head.response.headers.keep_alive(head.response.version_11);
    let park = if keep_alive {
        park.map(|(pool, key)| (pool, key.clone()))
    } else {
        None
    };
    Ok(attach_socket_body(head, leftover, stream, park, None))
}

/// Completes a parsed [`ResponseHead`] into a [`Response`] whose body is
/// delimited per the head's framing: empty, fully contained in `leftover`,
/// or streamed off `stream` by a [`SocketBody`].  The single place wire
/// framing is interpreted for every client in this crate — streaming and
/// buffered alike.  `decode_limit` caps the decoded size of chunked bodies
/// for consumers that will materialize them; pass-through relays leave it
/// `None` (their memory is bounded by the chunk window, not the body).
fn attach_socket_body(
    head: ResponseHead,
    leftover: Vec<u8>,
    stream: TcpStream,
    park: Option<(Arc<PoolInner>, (String, u16))>,
    decode_limit: Option<usize>,
) -> Response {
    let mut response = head.response;
    match head.framing {
        BodyFraming::None => {
            if let Some((pool, key)) = park {
                pool.park(&key, stream);
            }
        }
        BodyFraming::Length(total) if (leftover.len() as u64) >= total => {
            // The whole body arrived with the head: no stream needed.
            response.body = Body::from_bytes(Bytes::from(leftover[..total as usize].to_vec()));
            if let Some((pool, key)) = park {
                pool.park(&key, stream);
            }
        }
        BodyFraming::Length(total) => {
            // `left` counts body bytes not yet *delivered* — the leftover
            // that arrived with the head is delivered first and counts too.
            response.body = Body::stream(
                SocketBody {
                    stream: Some(stream),
                    leftover: VecDeque::from(leftover),
                    mode: WireMode::Counted { left: total, total },
                    park,
                },
                Some(total),
            );
        }
        BodyFraming::Chunked => {
            response.body = Body::stream(
                SocketBody {
                    stream: Some(stream),
                    leftover: VecDeque::from(leftover),
                    mode: WireMode::Chunked {
                        decoder: match decode_limit {
                            Some(limit) => ChunkedDecoder::with_limit(limit),
                            None => ChunkedDecoder::new(),
                        },
                        decoded: VecDeque::new(),
                    },
                    park,
                },
                None,
            );
        }
    }
    response
}

/// How a [`SocketBody`] delimits the bytes it pulls off its socket.
enum WireMode {
    /// `Content-Length` framing: exactly `left` more wire bytes are body.
    Counted { left: u64, total: u64 },
    /// Chunked framing, decoded incrementally.
    Chunked {
        decoder: ChunkedDecoder,
        decoded: VecDeque<Bytes>,
    },
}

/// A [`ChunkSource`] that owns an upstream socket and yields the response
/// body in bounded chunks.  A clean end of body parks the socket back into
/// the origin pool (when keep-alive); an early close surfaces as an
/// [`io::Error`] naming the byte counts, which the consumers above map to
/// `NakikaError::Upstream` — never a silent truncation.
struct SocketBody {
    stream: Option<TcpStream>,
    /// Body bytes that arrived while reading the head.
    leftover: VecDeque<u8>,
    mode: WireMode,
    park: Option<(Arc<PoolInner>, (String, u16))>,
}

impl SocketBody {
    fn finish(&mut self) {
        if let (Some(stream), Some((pool, key))) = (self.stream.take(), self.park.take()) {
            pool.park(&key, stream);
        }
        self.stream = None;
    }

    /// Drops the socket without parking: the body failed, so the connection
    /// is no longer in a reusable state.
    fn poison(&mut self) {
        self.stream = None;
        self.park = None;
    }
}

/// Reads from an optional socket, treating an already-taken socket as a
/// defect (the source is never polled past its end).
fn read_socket(stream: &mut Option<TcpStream>, buf: &mut [u8]) -> io::Result<usize> {
    match stream.as_mut() {
        Some(stream) => stream.read(buf),
        None => Err(io::Error::other("body stream already finished")),
    }
}

impl ChunkSource for SocketBody {
    fn may_block(&self) -> bool {
        // Pulls read the origin socket; the reactor must not do that on an
        // event-loop thread (leftover head bytes alone could be served
        // inline, but distinguishing per-pull is not worth the complexity
        // for at most one chunk per response).
        true
    }

    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        loop {
            match &mut self.mode {
                WireMode::Counted { left, total } => {
                    if *left == 0 {
                        self.finish();
                        return Ok(None);
                    }
                    if !self.leftover.is_empty() {
                        let take = (*left).min(STREAM_CHUNK_BYTES as u64) as usize;
                        let take = take.min(self.leftover.len());
                        let taken: Vec<u8> = self.leftover.drain(..take).collect();
                        *left -= taken.len() as u64;
                        return Ok(Some(Bytes::from(taken)));
                    }
                    // Read into an exact-size buffer and move it into Bytes:
                    // one allocation, one pass over the data (this is the
                    // relay hot path the bench_stream scenario measures).
                    let want = (*left).min(STREAM_CHUNK_BYTES as u64) as usize;
                    let mut buf = vec![0u8; want];
                    match read_socket(&mut self.stream, &mut buf) {
                        Ok(0) => {
                            let (got, t) = (*total - *left, *total);
                            self.poison();
                            return Err(io::Error::other(format!(
                                "peer closed mid-body: got {got} of {t} Content-Length bytes"
                            )));
                        }
                        Ok(n) => {
                            *left -= n as u64;
                            buf.truncate(n);
                            return Ok(Some(Bytes::from(buf)));
                        }
                        Err(e) => {
                            self.poison();
                            return Err(e);
                        }
                    }
                }
                WireMode::Chunked { decoder, decoded } => {
                    if let Some(chunk) = decoded.pop_front() {
                        return Ok(Some(chunk));
                    }
                    if decoder.is_done() {
                        self.finish();
                        return Ok(None);
                    }
                    if !self.leftover.is_empty() {
                        self.leftover.make_contiguous();
                        let (input, _) = self.leftover.as_slices();
                        let mut out = Vec::new();
                        let consumed = match decoder.feed(input, &mut out) {
                            Ok(consumed) => consumed,
                            Err(e) => {
                                self.poison();
                                return Err(io::Error::other(format!("bad chunked body: {e}")));
                            }
                        };
                        self.leftover.drain(..consumed);
                        decoded.extend(out);
                        continue;
                    }
                    let mut buf = [0u8; 16 * 1024];
                    match read_socket(&mut self.stream, &mut buf) {
                        Ok(0) => {
                            self.poison();
                            return Err(io::Error::other(
                                "peer closed mid-body: chunked body missing its terminator",
                            ));
                        }
                        Ok(n) => {
                            let mut out = Vec::new();
                            if let Err(e) = decoder.feed(&buf[..n], &mut out) {
                                self.poison();
                                return Err(io::Error::other(format!("bad chunked body: {e}")));
                            }
                            decoded.extend(out);
                            continue;
                        }
                        Err(e) => {
                            self.poison();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

/// Performs a one-shot blocking HTTP request (`Connection: close`) to the
/// host named in `request`'s URI, returning a response whose body streams
/// from the socket as it is consumed.
pub fn http_fetch_streaming(request: &Request) -> Result<Response, NakikaError> {
    let uri = request.uri.to_origin();
    let url = uri.to_string();
    let mut outbound = request.clone();
    outbound.uri = uri.clone();
    outbound.headers.set("Connection", "close");
    let stream =
        TcpStream::connect((uri.host.as_str(), uri.port)).map_err(|e| NakikaError::Upstream {
            url: url.clone(),
            reason: format!("connect failed: {e}"),
        })?;
    exchange_streaming(stream, &outbound, &url, None)
}

/// Performs a one-shot blocking HTTP request (`Connection: close`) and
/// buffers the whole body before returning — the convenience client used by
/// tests and examples.  A peer that closes mid-body (a `Content-Length`
/// mismatch) surfaces as [`NakikaError::Upstream`], never as a silently
/// truncated body.
pub fn http_fetch(request: &Request) -> Result<Response, NakikaError> {
    let url = request.uri.to_origin().to_string();
    let mut response = http_fetch_streaming(request)?;
    response.body.buffer().map_err(|e| NakikaError::Upstream {
        url,
        reason: format!("body stream failed: {e}"),
    })?;
    Ok(response)
}

/// Issues a plain GET to `url` (used by examples and tests as a tiny client).
pub fn http_get(url: &str) -> Result<Response, NakikaError> {
    http_fetch(&Request::get(url))
}

/// A minimal keep-alive HTTP/1.1 client for talking to a proxy: one TCP
/// connection, absolute-form request lines, as many sequential exchanges as
/// the caller wants.  This is what the benchmark suite and the concurrency
/// soak test use to hold many simultaneous keep-alive sessions open.
pub struct ProxyClient {
    stream: TcpStream,
}

impl ProxyClient {
    /// Connects to the proxy at `proxy`.
    pub fn connect(proxy: SocketAddr) -> Result<ProxyClient, NakikaError> {
        let stream = TcpStream::connect(proxy).map_err(|e| NakikaError::Upstream {
            url: format!("http://{proxy}"),
            reason: format!("connect failed: {e}"),
        })?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| NakikaError::Upstream {
                url: format!("http://{proxy}"),
                reason: format!("socket setup failed: {e}"),
            })?;
        Ok(ProxyClient { stream })
    }

    /// Issues one GET for `url` on the kept-alive connection and reads the
    /// complete response.
    pub fn get(&mut self, url: &str) -> Result<Response, NakikaError> {
        self.send(&Request::get(url))
    }

    /// Writes one absolute-form request and reads its response, fully
    /// buffered (the connection is reused for the next exchange, so the
    /// body must be drained before returning anyway).  Truncated bodies
    /// surface as [`NakikaError::Upstream`].
    fn send(&mut self, request: &Request) -> Result<Response, NakikaError> {
        let url = request.uri.to_string();
        self.stream
            .write_all(&nakika_http::serialize::serialize_request_absolute(request))
            .map_err(|e| NakikaError::Upstream {
                url: url.clone(),
                reason: format!("write failed: {e}"),
            })?;
        read_buffered_response(&mut self.stream, &url)
    }
}

/// Reads one complete response off a borrowed socket, draining the body per
/// its framing through the same [`SocketBody`] machinery the streaming
/// clients use (over a dup'd handle, since the caller keeps the socket for
/// the next exchange); a connection that closes before the framing is
/// satisfied is a [`NakikaError::Upstream`], not a short body.
fn read_buffered_response(stream: &mut TcpStream, url: &str) -> Result<Response, NakikaError> {
    let upstream = |reason: String| NakikaError::Upstream {
        url: url.to_string(),
        reason,
    };
    let owned = stream
        .try_clone()
        .map_err(|e| upstream(format!("socket clone failed: {e}")))?;
    let (head, leftover) = read_head(stream, url)?;
    let mut response = attach_socket_body(
        head,
        leftover,
        owned,
        None,
        Some(nakika_http::parse::MAX_BODY_BYTES),
    );
    response
        .body
        .buffer()
        .map_err(|e| upstream(format!("body stream failed: {e}")))?;
    Ok(response)
}

/// Issues a GET for `url` through the proxy at `proxy` (absolute-form request
/// line, as a browser configured with an explicit proxy would send), closing
/// the connection after the exchange.  One-shot wrapper over [`ProxyClient`].
pub fn http_get_via_proxy(proxy: SocketAddr, url: &str) -> Result<Response, NakikaError> {
    let mut client = ProxyClient::connect(proxy)?;
    let mut request = Request::get(url);
    request.headers.set("Connection", "close");
    client.send(&request)
}

/// Issues `request` through the proxy at `proxy` and returns as soon as the
/// response head arrives: the body streams from the proxy connection as it
/// is consumed.  This is the client half of a *bucket brigade* — a proxy
/// whose own upstream is another proxy uses this to relay a large response
/// hop by hop without any hop materializing it (see
/// `examples/streaming_brigade.rs`).
pub fn http_fetch_streaming_via_proxy(
    proxy: SocketAddr,
    request: &Request,
) -> Result<Response, NakikaError> {
    let url = request.uri.to_string();
    let mut outbound = request.clone();
    outbound.headers.set("Connection", "close");
    let stream = TcpStream::connect(proxy).map_err(|e| NakikaError::Upstream {
        url: url.clone(),
        reason: format!("connect failed: {e}"),
    })?;
    exchange_streaming_wire(
        stream,
        &nakika_http::serialize::serialize_request_absolute(&outbound),
        &url,
        None,
    )
}

/// A job submitted to the [`WorkerPool`].
type PoolJob = Box<dyn FnOnce() + Send>;

/// Shared state between the pool handle and its worker threads.  Plain
/// `std::sync` primitives: the queue is touched once per offloaded origin
/// operation (not per request — warm hits never come here), so a condvar
/// hand-off is plenty.
struct PoolShared {
    queue: std::sync::Mutex<VecDeque<PoolJob>>,
    work_ready: std::sync::Condvar,
    stop: AtomicBool,
}

/// The reactor transport's blocking-work pool: a fixed set of threads that
/// execute offloaded service calls and origin-socket chunk pulls (the
/// [`Work`](conn) units the connection engine refuses to run on an event
/// loop).  Sized by [`ReactorConfig::workers`]; dropping the pool stops
/// the workers after their current job and discards anything still queued
/// (completions for a server being torn down have no audience).
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) worker threads.
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: std::sync::Mutex::new(VecDeque::new()),
            work_ready: std::sync::Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || loop {
                    let job = {
                        let mut queue = match shared.queue.lock() {
                            Ok(queue) => queue,
                            Err(_) => return, // a job panicked while queueing: bail
                        };
                        loop {
                            if shared.stop.load(Ordering::Acquire) {
                                return;
                            }
                            if let Some(job) = queue.pop_front() {
                                break job;
                            }
                            queue = match shared.work_ready.wait(queue) {
                                Ok(queue) => queue,
                                Err(_) => return,
                            };
                        }
                    };
                    // Jobs contain their own panic containment (Work::run);
                    // anything else escaping here would poison nothing but
                    // this worker, and the remaining workers keep serving.
                    job();
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues one job; a no-op after the pool started stopping.
    pub(crate) fn execute(&self, job: PoolJob) {
        if self.shared.stop.load(Ordering::Acquire) {
            return;
        }
        if let Ok(mut queue) = self.shared.queue.lock() {
            queue.push_back(job);
            self.shared.work_ready.notify_one();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The blocking transport's connection loop, over the same sans-IO
/// [`HttpConn`] engine the reactor uses (in its inline mode: service calls
/// and body pulls block this thread, and only this thread): read, feed,
/// dispatch, flush, repeat until a request (or error) closes the session.
///
/// Survival discipline: the loop enforces the same *progress* deadline as
/// the reactor's timer wheel, via the socket timeouts (`SO_RCVTIMEO` /
/// `SO_SNDTIMEO`).  The deadline re-arms when a complete request parses
/// or a response flushes — never on raw bytes — so a slow-loris client
/// dripping header bytes is evicted when its request fails to complete in
/// time, and a slow-read client stalling the response write is evicted by
/// the send timeout.
fn serve_connection(
    mut stream: TcpStream,
    peer: IpAddr,
    service: &dyn HttpService,
    ctx_factory: &CtxFactory,
    gauge: Arc<OutputGauge>,
    stats: &ServerStats,
    options: ServerOptions,
) -> std::io::Result<()> {
    let idle = Duration::from_millis(options.resolved_idle_timeout_ms());
    stream.set_write_timeout(Some(idle))?;
    // Responses flush as one writev of head + body parts below, but a
    // response the engine produces across several pump steps can still
    // leave the socket mid-response between flushes; without nodelay,
    // Nagle would then hold the continuation hostage to the client's
    // delayed ACK (~40 ms per response on a keep-alive connection).
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(peer, gauge);
    let mut chunk = [0u8; 8192];
    let mut deadline = Instant::now() + idle;
    let mut parsed = 0u64;
    loop {
        conn.dispatch(service, ctx_factory);
        if conn.requests_parsed() > parsed {
            parsed = conn.requests_parsed();
            deadline = Instant::now() + idle;
        }
        let mut flushed = false;
        while conn.wants_write() {
            // One gathering write per pass: the engine keeps a response's
            // head and large body parts as separate runs, and writing them
            // with separate syscalls would emit separate segments.
            let result = {
                let slices = conn.output_slices();
                stream.write_vectored(&slices)
            };
            match result {
                Ok(0) => return Ok(()),
                Ok(n) => {
                    conn.advance_output(n);
                    flushed = true;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // SO_SNDTIMEO expired: the peer held the response
                    // hostage (slow read) for a whole deadline.
                    stats.note_timeout();
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        if flushed {
            // A drained response is protocol progress.
            deadline = Instant::now() + idle;
        }
        if !conn.is_open() {
            return Ok(());
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            stats.note_timeout();
            // Inline mode flushes whole responses above, so the stream is
            // always at a response boundary here: a 408 cannot corrupt
            // any in-flight framing.
            let _ = stream.write_all(TIMEOUT_RESPONSE);
            return Ok(());
        }
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => conn.feed(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                stats.note_timeout();
                let _ = stream.write_all(TIMEOUT_RESPONSE);
                return Ok(());
            }
            Err(_) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::service::{service_fn, RequestCtx};
    use nakika_core::NodeBuilder;
    use nakika_http::StatusCode;

    fn origin_service() -> Arc<dyn HttpService> {
        service_fn(|request: Request, _ctx: &RequestCtx| {
            if request.uri.path.ends_with(".js") {
                return Ok(Response::error(StatusCode::NOT_FOUND));
            }
            Ok(Response::ok(
                "text/html",
                format!("hello from origin: {}", request.uri.path),
            )
            .with_header("Cache-Control", "max-age=60"))
        })
    }

    #[test]
    fn http_server_round_trip() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn proxy_serves_and_caches_over_real_sockets() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let edge = Arc::new(
            NodeBuilder::plain_proxy("tcp-edge")
                .origin(Arc::new(TcpOrigin::new()))
                .build(),
        );
        let proxy = ProxyServer::start(0, edge.service()).unwrap();

        let url = format!("{}/page.html", origin.base_url());
        let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(first.status, StatusCode::OK);
        assert!(first.body.to_text().contains("hello from origin"));
        let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(second.body.to_text(), first.body.to_text());
        assert!(
            edge.node().cache_stats().hits >= 1,
            "second request hits the cache"
        );
    }

    #[test]
    fn tcp_origin_reuses_keep_alive_connections() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let fetcher = TcpOrigin::new();
        let host = origin.addr().ip().to_string();
        let port = origin.addr().port();
        for i in 0..3 {
            let response = fetcher
                .fetch(&Request::get(&format!("{}/r{i}.html", origin.base_url())))
                .unwrap();
            assert_eq!(response.status, StatusCode::OK);
        }
        assert_eq!(
            fetcher.idle_connections(&host, port),
            1,
            "sequential fetches reuse one pooled connection"
        );
    }

    #[test]
    fn upstream_failures_surface_as_typed_errors_and_502() {
        // Nothing listens on this port: the fetch itself reports Upstream...
        let request = Request::get("http://127.0.0.1:1/page");
        match http_fetch(&request) {
            Err(NakikaError::Upstream { reason, .. }) => {
                assert!(reason.contains("connect failed"), "reason: {reason}")
            }
            other => panic!("expected an upstream error, got {other:?}"),
        }
        // ...and a node fronting the dead origin answers 502 with the reason.
        let edge = NodeBuilder::plain_proxy("edge")
            .origin(Arc::new(TcpOrigin::new()))
            .build();
        let response = edge
            .call(request, &RequestCtx::at(10))
            .expect("the node converts origin failures into responses");
        assert_eq!(response.status, StatusCode::BAD_GATEWAY);
        assert_eq!(response.headers.get("X-Nakika-Error"), Some("upstream"));
        assert!(response.body.to_text().contains("connect failed"));
    }

    #[test]
    fn keep_alive_connections_serve_multiple_requests() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn bad_requests_get_a_400() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn dropped_server_stops_accepting() {
        let server = HttpServer::start(0, origin_service()).unwrap();
        let addr = server.addr();
        // Drop joins the accept loop, so by the time it returns the listener
        // is closed — deterministically, with no timing window to sleep over.
        drop(server);
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                // If the OS still hands out a backlogged connection, the
                // read must fail/EOF because nothing serves it.
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 16];
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "no handler should serve after drop");
    }

    #[test]
    fn proxy_client_reuses_one_connection_for_many_exchanges() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let edge = Arc::new(
            NodeBuilder::plain_proxy("client-edge")
                .origin(Arc::new(TcpOrigin::new()))
                .build(),
        );
        let proxy = ProxyServer::start(0, edge.service()).unwrap();
        let mut client = ProxyClient::connect(proxy.addr()).unwrap();
        let url = format!("{}/ka.html", origin.base_url());
        for _ in 0..4 {
            let response = client.get(&url).unwrap();
            assert_eq!(response.status, StatusCode::OK);
        }
        assert_eq!(edge.node().cache_stats().hits, 3);
    }

    #[test]
    fn both_transports_serve_the_same_service_stack() {
        let origin = HttpServer::start(0, origin_service()).unwrap();
        let url = format!("{}/same.html", origin.base_url());
        let mut bodies = Vec::new();
        for transport in [Transport::Threaded, Transport::Reactor] {
            let edge = Arc::new(
                NodeBuilder::plain_proxy("transport-edge")
                    .origin(Arc::new(TcpOrigin::new()))
                    .build(),
            );
            let proxy = ProxyServer::start_with(0, edge.service(), transport).unwrap();
            assert_eq!(proxy.transport(), transport);
            let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
            let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
            assert_eq!(first.body.to_text(), second.body.to_text());
            assert!(edge.node().cache_stats().hits >= 1);
            bodies.push(first.body.to_text());
        }
        assert_eq!(bodies[0], bodies[1], "transports are byte-compatible");
    }
}
