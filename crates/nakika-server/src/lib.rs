//! Real-socket front-ends for Na Kika: a blocking, thread-per-connection HTTP
//! origin server and proxy, so the examples run end-to-end over localhost TCP
//! exactly as a small deployment would (the paper's prototype embeds the same
//! logic in Apache's prefork worker processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nakika_core::node::{NaKikaNode, OriginFetch};
use nakika_http::{parse_request, serialize_request, serialize_response, ParseOutcome};
use nakika_http::{Request, Response, StatusCode};
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A handler invoked for every request an [`HttpServer`] receives.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A minimal blocking HTTP/1.1 server: one thread per connection, suitable
/// for origin servers in examples and tests.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Starts a server on `127.0.0.1:port` (port 0 picks a free port) and
    /// serves `handler` until the value is dropped.
    pub fn start(port: u16, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        listener.set_nonblocking(true)?;
        std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let handler = handler.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, peer.ip(), &|req| handler(req));
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer { addr, shutdown })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL (`http://127.0.0.1:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A Na Kika proxy listening on a real socket: every accepted request is
/// handed to the wrapped [`NaKikaNode`], which fetches whatever it needs over
/// outbound TCP connections.
pub struct ProxyServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ProxyServer {
    /// Starts the proxy on `127.0.0.1:port` in front of `node`.
    pub fn start(port: u16, node: Arc<NaKikaNode>) -> std::io::Result<ProxyServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = shutdown.clone();
        listener.set_nonblocking(true)?;
        let origin: Arc<dyn OriginFetch> = Arc::new(TcpOrigin);
        std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let node = node.clone();
                        let origin = origin.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, peer.ip(), &move |req| {
                                node.handle_request(req.clone(), unix_now(), &origin)
                            });
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ProxyServer { addr, shutdown })
    }

    /// The address the proxy listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Seconds since the Unix epoch, the wall-clock "now" used by the real
/// servers (the simulator uses virtual time instead).
pub fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// An [`OriginFetch`] that performs real outbound HTTP/1.1 requests over TCP.
pub struct TcpOrigin;

impl OriginFetch for TcpOrigin {
    fn fetch_origin(&self, request: &Request) -> Response {
        match http_fetch(request) {
            Ok(response) => response,
            Err(_) => Response::error(StatusCode::BAD_GATEWAY),
        }
    }
}

/// Performs a blocking HTTP request to the host named in `request`'s URI.
pub fn http_fetch(request: &Request) -> std::io::Result<Response> {
    let uri = request.uri.to_origin();
    let mut stream = TcpStream::connect((uri.host.as_str(), uri.port))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut outbound = request.clone();
    outbound.uri = uri;
    outbound.headers.set("Connection", "close");
    stream.write_all(&serialize_request(&outbound))?;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { .. }) = nakika_http::parse_response(&buffer) {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    match nakika_http::parse_response(&buffer) {
        Ok(ParseOutcome::Complete { message, .. }) => Ok(message),
        _ => Ok(Response::error(StatusCode::BAD_GATEWAY)),
    }
}

/// Issues a plain GET to `url` (used by examples and tests as a tiny client).
pub fn http_get(url: &str) -> std::io::Result<Response> {
    http_fetch(&Request::get(url))
}

/// Issues a GET for `url` through the proxy at `proxy` (absolute-form request
/// line, as a browser configured with an explicit proxy would send).
pub fn http_get_via_proxy(proxy: SocketAddr, url: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(proxy)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut request = Request::get(url);
    request.headers.set("Connection", "close");
    stream.write_all(&nakika_http::serialize::serialize_request_absolute(
        &request,
    ))?;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { .. }) = nakika_http::parse_response(&buffer) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    match nakika_http::parse_response(&buffer) {
        Ok(ParseOutcome::Complete { message, .. }) => Ok(message),
        _ => Ok(Response::error(StatusCode::BAD_GATEWAY)),
    }
}

fn serve_connection(
    mut stream: TcpStream,
    peer: IpAddr,
    handler: &dyn Fn(&Request) -> Response,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        let request = loop {
            match parse_request(&buffer) {
                Ok(ParseOutcome::Complete { message, consumed }) => {
                    buffer.drain(..consumed);
                    break Some(message);
                }
                Ok(ParseOutcome::Partial) => {}
                Err(_) => {
                    let _ = stream.write_all(&serialize_response(&Response::error(
                        StatusCode::BAD_REQUEST,
                    )));
                    return Ok(());
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => break None,
                Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                Err(_) => break None,
            }
        };
        let Some(mut request) = request else {
            return Ok(());
        };
        request.client_ip = peer;
        let keep_alive = request.headers.keep_alive(request.version_11);
        let response = handler(&request);
        stream.write_all(&serialize_response(&response))?;
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_core::node::NodeConfig;

    fn origin_handler() -> Handler {
        Arc::new(|request: &Request| {
            if request.uri.path.ends_with(".js") {
                return Response::error(StatusCode::NOT_FOUND);
            }
            Response::ok(
                "text/html",
                format!("hello from origin: {}", request.uri.path),
            )
            .with_header("Cache-Control", "max-age=60")
        })
    }

    #[test]
    fn http_server_round_trip() {
        let server = HttpServer::start(0, origin_handler()).unwrap();
        let response = http_get(&format!("{}/index.html", server.base_url())).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(response.body.to_text().contains("/index.html"));
    }

    #[test]
    fn proxy_serves_and_caches_over_real_sockets() {
        let origin = HttpServer::start(0, origin_handler()).unwrap();
        let node = Arc::new(NaKikaNode::new(
            NodeConfig::plain_proxy("tcp-edge").without_resource_controls(),
        ));
        let proxy = ProxyServer::start(0, node.clone()).unwrap();

        let url = format!("{}/page.html", origin.base_url());
        let first = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(first.status, StatusCode::OK);
        assert!(first.body.to_text().contains("hello from origin"));
        let second = http_get_via_proxy(proxy.addr(), &url).unwrap();
        assert_eq!(second.body.to_text(), first.body.to_text());
        assert!(
            node.cache_stats().hits >= 1,
            "second request hits the cache"
        );
    }

    #[test]
    fn keep_alive_connections_serve_multiple_requests() {
        let server = HttpServer::start(0, origin_handler()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            let req = Request::get(&format!("http://{}/r{i}", server.addr()));
            stream.write_all(&serialize_request(&req)).unwrap();
            let mut buffer = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                buffer.extend_from_slice(&chunk[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) =
                    nakika_http::parse_response(&buffer)
                {
                    assert!(message.body.to_text().contains(&format!("/r{i}")));
                    break;
                }
            }
        }
    }

    #[test]
    fn bad_requests_get_a_400() {
        let server = HttpServer::start(0, origin_handler()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&buffer).starts_with("HTTP/1.1 400"));
    }
}
