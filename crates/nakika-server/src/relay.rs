//! Sans-IO state machine for the *origin side* of a spliced cache miss.
//!
//! [`crate::conn::HttpConn`] drives the server side of the bucket brigade: it
//! parses requests and serializes responses.  `ResponseRelay` is its mirror
//! image for the upstream socket the reactor opens on a miss: it consumes
//! whatever bytes the origin connection produced and turns them into typed
//! events — a parsed response head, body data chunks, end-of-body — without
//! ever touching a socket itself.  The reactor feeds it from its read loop;
//! the threaded transport never needs it (it keeps the blocking
//! `SocketBody` path).
//!
//! Framing follows [`nakika_http::parse_response_head`]'s conventions
//! exactly: `Content-Length` bodies are counted out byte-by-byte, chunked
//! bodies run through a pass-through [`ChunkedDecoder`], and a head with
//! neither header carries no body at all (read-until-close responses are not
//! produced by this stack).  An early EOF in any state is an error whose
//! message pins down exactly how far the origin got — the fault-injection
//! tests assert on these strings.

use bytes::Bytes;
use nakika_http::parse::{parse_response_head, BodyFraming, ChunkedDecoder, ParseOutcome};
use nakika_http::Response;

/// What a [`ResponseRelay::feed`] call learned from the origin's bytes.
#[derive(Debug)]
pub(crate) enum RelayEvent {
    /// The response head is complete.  `response` carries an empty body —
    /// the consumer decides how to attach one.  When `has_body` is false
    /// the relay emits [`RelayEvent::BodyDone`] immediately after.
    Head {
        /// Status line and headers, body left empty.
        response: Box<Response>,
        /// The `Content-Length`, when the framing declares one.
        declared: Option<u64>,
        /// False for `Content-Length: 0` and bodiless framings.
        has_body: bool,
    },
    /// A decoded slice of body data, in arrival order.
    Data(Bytes),
    /// The body ended cleanly (exact `Content-Length`, or the chunked
    /// terminator arrived).  Emitted exactly once per response.
    BodyDone,
}

/// Body-framing progress after the head.
enum State {
    /// Accumulating head bytes until `\r\n\r\n`.
    Head { buf: Vec<u8> },
    /// Counting out a `Content-Length` body.
    Length { remaining: u64, total: u64 },
    /// Decoding a chunked body.
    Chunked { decoder: ChunkedDecoder },
    /// The response is complete; trailing bytes are ignored (the relay
    /// sends `Connection: close` requests, so nothing follows).
    Done,
    /// A framing error was reported; the relay must not be fed again.
    Failed,
}

/// Incremental parser for one origin response: head, then body framing.
pub(crate) struct ResponseRelay {
    state: State,
}

impl ResponseRelay {
    /// A relay positioned before the response's status line.
    pub(crate) fn new() -> ResponseRelay {
        ResponseRelay {
            state: State::Head { buf: Vec::new() },
        }
    }

    /// True once the head was parsed (events carried it to the consumer).
    /// The reactor tracks delivery itself; tests use this to pin down how
    /// far a truncated feed got.
    #[cfg(test)]
    pub(crate) fn head_done(&self) -> bool {
        !matches!(self.state, State::Head { .. })
    }

    /// True once the whole response (head and body) arrived cleanly.
    pub(crate) fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Consumes `data` from the origin socket, appending the resulting
    /// events.  An `Err` means the byte stream is unusable (malformed head,
    /// bad chunk framing); the connection must be torn down.
    pub(crate) fn feed(&mut self, data: &[u8], events: &mut Vec<RelayEvent>) -> Result<(), String> {
        let mut input = data;
        while !input.is_empty() {
            match &mut self.state {
                State::Head { buf } => {
                    buf.extend_from_slice(input);
                    input = &[];
                    // Borrow dance: take the buffer out so the state can be
                    // replaced while we still hold the parsed leftover.
                    let buf = std::mem::take(buf);
                    match parse_response_head(&buf) {
                        Ok(ParseOutcome::Partial) => {
                            self.state = State::Head { buf };
                        }
                        Ok(ParseOutcome::Complete { message, consumed }) => {
                            let leftover = buf[consumed..].to_vec();
                            let (declared, has_body) = match message.framing {
                                BodyFraming::Length(0) | BodyFraming::None => (Some(0), false),
                                BodyFraming::Length(n) => (Some(n), true),
                                BodyFraming::Chunked => (None, true),
                            };
                            self.state = match message.framing {
                                BodyFraming::Length(n) if n > 0 => State::Length {
                                    remaining: n,
                                    total: n,
                                },
                                BodyFraming::Chunked => State::Chunked {
                                    decoder: ChunkedDecoder::new(),
                                },
                                _ => State::Done,
                            };
                            events.push(RelayEvent::Head {
                                response: Box::new(message.response),
                                declared,
                                has_body,
                            });
                            if !has_body {
                                events.push(RelayEvent::BodyDone);
                            }
                            if !leftover.is_empty() {
                                self.feed(&leftover, events)?;
                            }
                            return Ok(());
                        }
                        Err(e) => {
                            self.state = State::Failed;
                            return Err(format!("origin sent a malformed response: {e}"));
                        }
                    }
                }
                State::Length { remaining, total } => {
                    let take = (*remaining).min(input.len() as u64) as usize;
                    events.push(RelayEvent::Data(Bytes::copy_from_slice(&input[..take])));
                    *remaining -= take as u64;
                    input = &input[take..];
                    let _ = total;
                    if *remaining == 0 {
                        self.state = State::Done;
                        events.push(RelayEvent::BodyDone);
                    }
                }
                State::Chunked { decoder } => {
                    let mut out = Vec::new();
                    let consumed = match decoder.feed(input, &mut out) {
                        Ok(n) => n,
                        Err(e) => {
                            self.state = State::Failed;
                            return Err(format!("origin sent bad chunked framing: {e}"));
                        }
                    };
                    events.extend(out.into_iter().map(RelayEvent::Data));
                    let done = decoder.is_done();
                    input = &input[consumed..];
                    if done {
                        self.state = State::Done;
                        events.push(RelayEvent::BodyDone);
                    }
                }
                // Trailing bytes after a complete response: the upstream is
                // Connection: close, so anything extra is noise we drop.
                State::Done => return Ok(()),
                State::Failed => {
                    return Err("relay fed after a framing failure".to_string());
                }
            }
        }
        Ok(())
    }

    /// The origin closed its end.  Clean only when the response was already
    /// complete; otherwise the error pins down how far the origin got —
    /// consumers surface it to the client as a truncation.
    pub(crate) fn close(&mut self) -> Result<(), String> {
        match &self.state {
            State::Head { buf } if buf.is_empty() => {
                self.state = State::Failed;
                Err("origin closed before sending a response".to_string())
            }
            State::Head { .. } => {
                self.state = State::Failed;
                Err("origin closed mid-response-head".to_string())
            }
            State::Length { remaining, total } => {
                let got = total - remaining;
                let total = *total;
                self.state = State::Failed;
                Err(format!(
                    "origin closed mid-body: got {got} of {total} Content-Length bytes"
                ))
            }
            State::Chunked { .. } => {
                self.state = State::Failed;
                Err("chunked body missing its terminator".to_string())
            }
            State::Done | State::Failed => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nakika_http::parse::parse_response;

    /// Feeds `wire` split at `cut`, returning (head response, body bytes,
    /// saw clean BodyDone).
    fn run_split(wire: &[u8], cuts: &[usize]) -> (Response, Vec<u8>, bool) {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        let mut last = 0;
        for &cut in cuts {
            relay.feed(&wire[last..cut], &mut events).unwrap();
            last = cut;
        }
        relay.feed(&wire[last..], &mut events).unwrap();
        relay.close().unwrap();
        collect(events)
    }

    fn collect(events: Vec<RelayEvent>) -> (Response, Vec<u8>, bool) {
        let mut head = None;
        let mut body = Vec::new();
        let mut done = false;
        for event in events {
            match event {
                RelayEvent::Head { response, .. } => {
                    assert!(head.is_none(), "head emitted twice");
                    head = Some(*response);
                }
                RelayEvent::Data(chunk) => {
                    assert!(!done, "data after BodyDone");
                    body.extend_from_slice(&chunk);
                }
                RelayEvent::BodyDone => {
                    assert!(!done, "BodyDone emitted twice");
                    done = true;
                }
            }
        }
        (head.expect("head event"), body, done)
    }

    /// One-shot reference: the buffered parser's view of the same bytes.
    fn reference(wire: &[u8]) -> (Response, Vec<u8>) {
        match parse_response(wire).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                let body = message.body.to_bytes().to_vec();
                (message, body)
            }
            ParseOutcome::Partial => panic!("reference parse incomplete"),
        }
    }

    fn assert_equivalent_at_every_boundary(wire: &[u8]) {
        let (want_resp, want_body) = reference(wire);
        // Single cut at every position.
        for cut in 0..=wire.len() {
            let (resp, body, done) = run_split(wire, &[cut]);
            assert!(done, "no BodyDone with cut at {cut}");
            assert_eq!(resp.status, want_resp.status, "cut at {cut}");
            assert_eq!(body, want_body, "cut at {cut}");
        }
        // Fully byte-by-byte.
        let cuts: Vec<usize> = (1..wire.len()).collect();
        let (resp, body, done) = run_split(wire, &cuts);
        assert!(done);
        assert_eq!(resp.status, want_resp.status);
        assert_eq!(
            resp.headers.get("content-type"),
            want_resp.headers.get("content-type")
        );
        assert_eq!(body, want_body);
    }

    #[test]
    fn content_length_framing_matches_one_shot_at_every_split() {
        let wire =
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 11\r\n\r\nhello world";
        assert_equivalent_at_every_boundary(wire);
    }

    #[test]
    fn chunked_framing_matches_one_shot_at_every_split() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n";
        assert_equivalent_at_every_boundary(wire);
    }

    #[test]
    fn bodiless_framing_matches_one_shot_at_every_split() {
        let wire = b"HTTP/1.1 304 Not Modified\r\nETag: \"x\"\r\n\r\n";
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        for cut in 0..=wire.len() {
            let mut relay2 = ResponseRelay::new();
            let mut ev = Vec::new();
            relay2.feed(&wire[..cut], &mut ev).unwrap();
            relay2.feed(&wire[cut..], &mut ev).unwrap();
            relay2.close().unwrap();
            let (resp, body, done) = collect(ev);
            assert!(done);
            assert_eq!(resp.status.as_u16(), 304);
            assert!(body.is_empty());
        }
        relay.feed(wire, &mut events).unwrap();
        assert!(relay.is_done());
    }

    #[test]
    fn content_length_zero_emits_body_done_with_head() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay.feed(wire, &mut events).unwrap();
        let (resp, body, done) = collect(events);
        assert_eq!(resp.status.as_u16(), 200);
        assert!(body.is_empty());
        assert!(done);
        assert!(relay.is_done());
    }

    #[test]
    fn head_event_reports_framing() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nabcde";
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay.feed(wire, &mut events).unwrap();
        match &events[0] {
            RelayEvent::Head {
                declared, has_body, ..
            } => {
                assert_eq!(*declared, Some(5));
                assert!(*has_body);
            }
            other => panic!("expected head, got {other:?}"),
        }
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay.feed(wire, &mut events).unwrap();
        match &events[0] {
            RelayEvent::Head {
                declared, has_body, ..
            } => {
                assert_eq!(*declared, None);
                assert!(*has_body);
            }
            other => panic!("expected head, got {other:?}"),
        }
    }

    #[test]
    fn eof_before_any_bytes_is_an_error() {
        let mut relay = ResponseRelay::new();
        let err = relay.close().unwrap_err();
        assert!(err.contains("before sending a response"), "{err}");
    }

    #[test]
    fn eof_mid_head_is_an_error() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay
            .feed(b"HTTP/1.1 200 OK\r\nContent-", &mut events)
            .unwrap();
        assert!(events.is_empty());
        assert!(!relay.head_done());
        let err = relay.close().unwrap_err();
        assert!(err.contains("mid-response-head"), "{err}");
    }

    #[test]
    fn eof_mid_content_length_body_reports_progress() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay
            .feed(
                b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc",
                &mut events,
            )
            .unwrap();
        let err = relay.close().unwrap_err();
        assert_eq!(
            err,
            "origin closed mid-body: got 3 of 10 Content-Length bytes"
        );
    }

    #[test]
    fn eof_mid_chunked_body_is_an_error() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay
            .feed(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel",
                &mut events,
            )
            .unwrap();
        let err = relay.close().unwrap_err();
        assert!(err.contains("missing its terminator"), "{err}");
    }

    #[test]
    fn garbage_head_is_an_error() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        let err = relay
            .feed(b"NOT HTTP AT ALL\r\n\r\n", &mut events)
            .unwrap_err();
        assert!(err.contains("malformed response"), "{err}");
        // Once failed, further feeds are refused.
        assert!(relay.feed(b"more", &mut events).is_err());
    }

    #[test]
    fn bad_chunk_framing_is_an_error() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        let err = relay
            .feed(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzzzz\r\n",
                &mut events,
            )
            .unwrap_err();
        assert!(err.contains("chunked"), "{err}");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        let mut wire = b"HTTP/1.1 200 OK\r\n".to_vec();
        // Far past MAX_HEADER_BYTES without ever completing the head.
        for i in 0..9000 {
            wire.extend_from_slice(format!("X-Flood-{i}: padding-padding\r\n").as_bytes());
        }
        let err = relay.feed(&wire, &mut events).unwrap_err();
        assert!(err.contains("malformed response"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_done_are_dropped() {
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay
            .feed(
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokEXTRA",
                &mut events,
            )
            .unwrap();
        let (_, body, done) = collect(events);
        assert_eq!(body, b"ok");
        assert!(done);
        assert!(relay.is_done());
        assert!(relay.close().is_ok());
    }

    mod random_splits {
        use super::*;
        use proptest::prelude::*;

        /// A Content-Length wire around `body`.
        fn length_wire(body: &[u8]) -> Vec<u8> {
            let mut wire = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            wire.extend_from_slice(body);
            wire
        }

        /// A chunked wire: `body` carved into runs of `sizes` (cycled).
        fn chunked_wire(body: &[u8], sizes: &[usize]) -> Vec<u8> {
            let mut wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
            let mut rest = body;
            let mut i = 0;
            while !rest.is_empty() {
                let take = sizes[i % sizes.len()].min(rest.len());
                wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
                wire.extend_from_slice(&rest[..take]);
                wire.extend_from_slice(b"\r\n");
                rest = &rest[take..];
                i += 1;
            }
            wire.extend_from_slice(b"0\r\n\r\n");
            wire
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Any body under either framing, fed in arbitrary fragments,
            /// must agree with the one-shot parser byte for byte.
            #[test]
            fn relay_agrees_with_one_shot_parser_under_random_splits(
                body in prop::collection::vec(any::<u8>(), 0..600),
                sizes in prop::collection::vec(1usize..64, 1..8),
                chunked in any::<bool>(),
                raw_cuts in prop::collection::vec(0usize..8192, 0..24),
            ) {
                let wire = if chunked {
                    chunked_wire(&body, &sizes)
                } else {
                    length_wire(&body)
                };
                let mut cuts: Vec<usize> =
                    raw_cuts.into_iter().map(|c| c % (wire.len() + 1)).collect();
                cuts.sort_unstable();
                let (want_resp, want_body) = reference(&wire);
                let (resp, got_body, done) = run_split(&wire, &cuts);
                prop_assert!(done, "no clean BodyDone");
                prop_assert_eq!(resp.status, want_resp.status);
                prop_assert_eq!(got_body, want_body);
            }
        }
    }

    #[test]
    fn chunk_data_arrives_incrementally_before_body_done() {
        // A relay must emit Data as bytes arrive, not hold them until the
        // terminator: that is the whole point of the splice.
        let mut relay = ResponseRelay::new();
        let mut events = Vec::new();
        relay
            .feed(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n",
                &mut events,
            )
            .unwrap();
        let datas = events
            .iter()
            .filter(|e| matches!(e, RelayEvent::Data(_)))
            .count();
        assert_eq!(datas, 1);
        assert!(!relay.is_done());
        relay.feed(b"0\r\n\r\n", &mut events).unwrap();
        assert!(relay.is_done());
    }
}
