//! HTTP status codes.

use crate::error::{HttpError, Result};
use std::fmt;

/// An HTTP response status code (100..=599).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct StatusCode(u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 206 Partial Content
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    /// 301 Moved Permanently
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found
    pub const FOUND: StatusCode = StatusCode(302);
    /// 304 Not Modified
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// 307 Temporary Redirect — same method, same body, try over there.
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    /// 400 Bad Request
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized — used by the paper's digital-library policy (Fig. 5).
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout — the connection idled past its deadline.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 413 Payload Too Large
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 429 Too Many Requests — emitted by `RateLimitLayer`.
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 431 Request Header Fields Too Large — header count/size cap tripped.
    pub const REQUEST_HEADER_FIELDS_TOO_LARGE: StatusCode = StatusCode(431);
    /// 500 Internal Server Error
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 502 Bad Gateway
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503 Service Unavailable — used by Na Kika's throttling ("server busy").
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 504 Gateway Timeout
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// Constructs a status code, validating the 100..=599 range.
    pub fn new(code: u16) -> Result<StatusCode> {
        if (100..=599).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(HttpError::InvalidStatus(code))
        }
    }

    /// The numeric code.
    pub fn as_u16(&self) -> u16 {
        self.0
    }

    /// True for 1xx codes.
    pub fn is_informational(&self) -> bool {
        (100..200).contains(&self.0)
    }

    /// True for 2xx codes.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// True for 3xx codes.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// True for 4xx codes.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.0)
    }

    /// True for 5xx codes.
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }

    /// True if responses with this status are cacheable by default
    /// (RFC 7231 §6.1 heuristic set).
    pub fn is_cacheable_by_default(&self) -> bool {
        matches!(
            self.0,
            200 | 203 | 204 | 206 | 300 | 301 | 404 | 405 | 410 | 414 | 501
        )
    }

    /// The canonical reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            100 => "Continue",
            101 => "Switching Protocols",
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            206 => "Partial Content",
            300 => "Multiple Choices",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            304 => "Not Modified",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            408 => "Request Timeout",
            410 => "Gone",
            411 => "Length Required",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

impl TryFrom<u16> for StatusCode {
    type Error = HttpError;
    fn try_from(v: u16) -> Result<Self> {
        StatusCode::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::UNAUTHORIZED.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert!(StatusCode::new(100).unwrap().is_informational());
    }

    #[test]
    fn range_validation() {
        assert!(StatusCode::new(99).is_err());
        assert!(StatusCode::new(600).is_err());
        assert!(StatusCode::new(100).is_ok());
        assert!(StatusCode::new(599).is_ok());
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode::UNAUTHORIZED.reason(), "Unauthorized");
        assert_eq!(StatusCode::new(599).unwrap().reason(), "Unknown");
    }

    #[test]
    fn default_cacheability() {
        assert!(StatusCode::OK.is_cacheable_by_default());
        assert!(StatusCode::NOT_FOUND.is_cacheable_by_default());
        assert!(!StatusCode::SERVICE_UNAVAILABLE.is_cacheable_by_default());
    }

    #[test]
    fn display_includes_reason() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
    }
}
