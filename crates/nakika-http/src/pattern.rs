//! Matching primitives used by Na Kika's predicate-based policy selection:
//! URL prefixes, CIDR blocks for client addresses, and lightweight regular
//! expressions for arbitrary HTTP headers (paper §3.1).

use crate::error::{HttpError, Result};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A CIDR block such as `128.122.0.0/16`, or a single address.
///
/// Policy objects list allowable client addresses in CIDR notation; the
/// `System.isLocal` vocabulary call (Figure 5) also resolves to a CIDR check
/// against the hosting organisation's address blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cidr {
    network: IpAddr,
    prefix_len: u8,
}

impl Cidr {
    /// Parses `a.b.c.d/len`, a bare IPv4/IPv6 address (full-length prefix), or
    /// an IPv6 block.
    pub fn parse(s: &str) -> Result<Cidr> {
        let s = s.trim();
        let (addr_str, len_str) = match s.find('/') {
            Some(idx) => (&s[..idx], Some(&s[idx + 1..])),
            None => (s, None),
        };
        let addr: IpAddr = addr_str
            .parse()
            .map_err(|_| HttpError::InvalidPattern(s.to_string()))?;
        let max_len = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        let prefix_len = match len_str {
            Some(l) => l
                .parse::<u8>()
                .ok()
                .filter(|l| *l <= max_len)
                .ok_or_else(|| HttpError::InvalidPattern(s.to_string()))?,
            None => max_len,
        };
        Ok(Cidr {
            network: mask_addr(addr, prefix_len),
            prefix_len,
        })
    }

    /// True if `addr` falls inside this block.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.network, addr) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(addr, self.prefix_len) == self.network
            }
            _ => false,
        }
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }
}

fn mask_addr(addr: IpAddr, prefix_len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(v4) => {
            let bits = u32::from(v4);
            let mask = if prefix_len == 0 {
                0
            } else {
                u32::MAX << (32 - prefix_len as u32)
            };
            IpAddr::V4(Ipv4Addr::from(bits & mask))
        }
        IpAddr::V6(v6) => {
            let bits = u128::from(v6);
            let mask = if prefix_len == 0 {
                0
            } else {
                u128::MAX << (128 - prefix_len as u32)
            };
            IpAddr::V6(Ipv6Addr::from(bits & mask))
        }
    }
}

/// A client-address pattern: either a CIDR block or a DNS-style domain suffix
/// (the paper's Figure 3 uses `"nyu.edu"` to mean "clients within NYU").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientPattern {
    /// Match by address block.
    Cidr(Cidr),
    /// Match by reverse-DNS domain suffix (resolved out of band and carried
    /// on the request as `X-Client-Domain` by the front-end).
    Domain(String),
}

impl ClientPattern {
    /// Parses a client pattern; anything that parses as CIDR is CIDR,
    /// otherwise it is treated as a domain suffix.
    pub fn parse(s: &str) -> Result<ClientPattern> {
        let s = s.trim();
        if s.is_empty() {
            return Err(HttpError::InvalidPattern(
                "empty client pattern".to_string(),
            ));
        }
        match Cidr::parse(s) {
            Ok(cidr) => Ok(ClientPattern::Cidr(cidr)),
            Err(_) => Ok(ClientPattern::Domain(s.to_ascii_lowercase())),
        }
    }

    /// True if a client with address `ip` and (optional) resolved domain
    /// matches this pattern.
    pub fn matches(&self, ip: IpAddr, domain: Option<&str>) -> bool {
        match self {
            ClientPattern::Cidr(c) => c.contains(ip),
            ClientPattern::Domain(suffix) => match domain {
                Some(d) => {
                    let d = d.to_ascii_lowercase();
                    d == *suffix || d.ends_with(&format!(".{suffix}"))
                }
                None => false,
            },
        }
    }
}

/// A compiled lightweight regular expression.
///
/// Supports literals, `.`, `*`, `+`, `?`, character classes `[a-z]` (with
/// negation), alternation `|`, grouping `(...)`, and the anchors `^` / `$`.
/// This is sufficient for the header predicates used in the paper (matching
/// `User-Agent` strings for device detection, URL substrings for blacklists)
/// without pulling in a full regex dependency.
#[derive(Debug, Clone)]
pub struct Regex {
    nodes: Vec<Node>,
    anchored_start: bool,
    anchored_end: bool,
    source: String,
}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Group(Vec<Vec<Node>>),
    Star(Box<Node>),
    Plus(Box<Node>),
    Optional(Box<Node>),
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex> {
        let mut chars: Vec<char> = pattern.chars().collect();
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            chars.remove(0);
        }
        let anchored_end = chars.last() == Some(&'$');
        if anchored_end {
            chars.pop();
        }
        let mut pos = 0;
        let alternatives = parse_alternatives(&chars, &mut pos)
            .map_err(|e| HttpError::InvalidPattern(format!("{pattern}: {e}")))?;
        if pos != chars.len() {
            return Err(HttpError::InvalidPattern(format!(
                "{pattern}: unexpected '{}'",
                chars[pos]
            )));
        }
        let nodes = if alternatives.len() == 1 {
            alternatives.into_iter().next().unwrap()
        } else {
            vec![Node::Group(alternatives)]
        };
        Ok(Regex {
            nodes,
            anchored_start,
            anchored_end,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// True if the pattern matches anywhere in `text` (or at the anchors if
    /// anchored).
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Returns the byte range of the first match, if any.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = text.chars().collect();
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            if let Some(end) = match_seq(&self.nodes, &chars, start) {
                if self.anchored_end && end != chars.len() {
                    // Try to extend greedily failed; for simplicity require a
                    // full match to the end when anchored.
                    if match_seq_to_end(&self.nodes, &chars, start) {
                        return Some((char_to_byte(text, start), text.len()));
                    }
                    continue;
                }
                return Some((char_to_byte(text, start), char_to_byte(text, end)));
            }
        }
        None
    }
}

fn char_to_byte(text: &str, char_idx: usize) -> usize {
    text.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(text.len())
}

fn parse_alternatives(
    chars: &[char],
    pos: &mut usize,
) -> std::result::Result<Vec<Vec<Node>>, String> {
    let mut alternatives = Vec::new();
    let mut current = Vec::new();
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alternatives.push(std::mem::take(&mut current));
            }
            _ => {
                let node = parse_node(chars, pos)?;
                current.push(node);
            }
        }
    }
    alternatives.push(current);
    Ok(alternatives)
}

fn parse_node(chars: &[char], pos: &mut usize) -> std::result::Result<Node, String> {
    let base = parse_atom(chars, pos)?;
    let node = if *pos < chars.len() {
        match chars[*pos] {
            '*' => {
                *pos += 1;
                Node::Star(Box::new(base))
            }
            '+' => {
                *pos += 1;
                Node::Plus(Box::new(base))
            }
            '?' => {
                *pos += 1;
                Node::Optional(Box::new(base))
            }
            _ => base,
        }
    } else {
        base
    };
    Ok(node)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> std::result::Result<Node, String> {
    let c = chars[*pos];
    match c {
        '.' => {
            *pos += 1;
            Ok(Node::Any)
        }
        '\\' => {
            *pos += 1;
            if *pos >= chars.len() {
                return Err("dangling escape".to_string());
            }
            let escaped = chars[*pos];
            *pos += 1;
            match escaped {
                'd' => Ok(Node::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                }),
                'w' => Ok(Node::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                }),
                's' => Ok(Node::Class {
                    negated: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                }),
                other => Ok(Node::Literal(other)),
            }
        }
        '[' => {
            *pos += 1;
            let negated = *pos < chars.len() && chars[*pos] == '^';
            if negated {
                *pos += 1;
            }
            let mut ranges = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = chars[*pos];
                *pos += 1;
                if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    let hi = chars[*pos + 1];
                    *pos += 2;
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            if *pos >= chars.len() {
                return Err("unterminated character class".to_string());
            }
            *pos += 1; // consume ']'
            Ok(Node::Class { negated, ranges })
        }
        '(' => {
            *pos += 1;
            let alternatives = parse_alternatives(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unterminated group".to_string());
            }
            *pos += 1;
            Ok(Node::Group(alternatives))
        }
        '*' | '+' | '?' | ')' | '|' => Err(format!("unexpected '{c}'")),
        _ => {
            *pos += 1;
            Ok(Node::Literal(c))
        }
    }
}

fn match_node(node: &Node, chars: &[char], pos: usize) -> Vec<usize> {
    match node {
        Node::Literal(c) => {
            if pos < chars.len() && chars[pos] == *c {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Node::Any => {
            if pos < chars.len() {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Node::Class { negated, ranges } => {
            if pos < chars.len() {
                let c = chars[pos];
                let inside = ranges.iter().any(|(lo, hi)| c >= *lo && c <= *hi);
                if inside != *negated {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            } else {
                vec![]
            }
        }
        Node::Group(alternatives) => {
            let mut ends = Vec::new();
            for alt in alternatives {
                if let Some(end) = match_seq(alt, chars, pos) {
                    ends.push(end);
                }
                ends.extend(match_seq_all(alt, chars, pos));
            }
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Node::Star(inner) => repeat_matches(inner, chars, pos, 0),
        Node::Plus(inner) => repeat_matches(inner, chars, pos, 1),
        Node::Optional(inner) => {
            let mut ends = vec![pos];
            ends.extend(match_node(inner, chars, pos));
            ends.sort_unstable();
            ends.dedup();
            ends
        }
    }
}

fn repeat_matches(inner: &Node, chars: &[char], pos: usize, min: usize) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut frontier = vec![pos];
    let mut count = 0usize;
    if min == 0 {
        ends.push(pos);
    }
    loop {
        let mut next = Vec::new();
        for p in &frontier {
            for end in match_node(inner, chars, *p) {
                if end > *p && !next.contains(&end) {
                    next.push(end);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        count += 1;
        if count >= min {
            ends.extend(next.iter().copied());
        }
        frontier = next;
        if count > chars.len() + 1 {
            break;
        }
    }
    ends.sort_unstable();
    ends.dedup();
    ends
}

/// Returns every position the sequence can end at, starting from `pos`.
fn match_seq_all(nodes: &[Node], chars: &[char], pos: usize) -> Vec<usize> {
    let mut frontier = vec![pos];
    for node in nodes {
        let mut next = Vec::new();
        for p in &frontier {
            for end in match_node(node, chars, *p) {
                if !next.contains(&end) {
                    next.push(end);
                }
            }
        }
        if next.is_empty() {
            return vec![];
        }
        frontier = next;
    }
    frontier
}

/// Longest end position of a match of the node sequence at `pos`, if any.
fn match_seq(nodes: &[Node], chars: &[char], pos: usize) -> Option<usize> {
    match_seq_all(nodes, chars, pos).into_iter().max()
}

fn match_seq_to_end(nodes: &[Node], chars: &[char], pos: usize) -> bool {
    match_seq_all(nodes, chars, pos)
        .into_iter()
        .any(|end| end == chars.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_v4_membership() {
        let c = Cidr::parse("128.122.0.0/16").unwrap();
        assert!(c.contains("128.122.1.2".parse().unwrap()));
        assert!(!c.contains("128.123.1.2".parse().unwrap()));
        assert!(!c.contains("::1".parse().unwrap()));
        assert_eq!(c.prefix_len(), 16);
    }

    #[test]
    fn cidr_single_address_and_zero_prefix() {
        let single = Cidr::parse("10.0.0.1").unwrap();
        assert!(single.contains("10.0.0.1".parse().unwrap()));
        assert!(!single.contains("10.0.0.2".parse().unwrap()));
        let all = Cidr::parse("0.0.0.0/0").unwrap();
        assert!(all.contains("203.0.113.7".parse().unwrap()));
    }

    #[test]
    fn cidr_v6() {
        let c = Cidr::parse("2001:db8::/32").unwrap();
        assert!(c.contains("2001:db8::1".parse().unwrap()));
        assert!(!c.contains("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn cidr_rejects_garbage() {
        assert!(Cidr::parse("not an ip").is_err());
        assert!(Cidr::parse("10.0.0.0/33").is_err());
        assert!(Cidr::parse("10.0.0.0/abc").is_err());
    }

    #[test]
    fn client_pattern_domain_suffix() {
        let p = ClientPattern::parse("nyu.edu").unwrap();
        let ip: IpAddr = "1.2.3.4".parse().unwrap();
        assert!(p.matches(ip, Some("cs.nyu.edu")));
        assert!(p.matches(ip, Some("NYU.EDU")));
        assert!(!p.matches(ip, Some("notnyu.edu")));
        assert!(!p.matches(ip, None));
    }

    #[test]
    fn client_pattern_cidr() {
        let p = ClientPattern::parse("192.168.0.0/24").unwrap();
        assert!(p.matches("192.168.0.9".parse().unwrap(), None));
        assert!(!p.matches("192.168.1.9".parse().unwrap(), None));
    }

    #[test]
    fn regex_literals_and_any() {
        let r = Regex::new("Nokia").unwrap();
        assert!(r.is_match("User-Agent: Nokia6600"));
        assert!(!r.is_match("Mozilla"));
        let r = Regex::new("a.c").unwrap();
        assert!(r.is_match("xxabcxx"));
        assert!(!r.is_match("ac"));
    }

    #[test]
    fn regex_repetition() {
        let r = Regex::new("ab*c").unwrap();
        assert!(r.is_match("ac"));
        assert!(r.is_match("abbbc"));
        assert!(!r.is_match("adc"));
        let r = Regex::new("ab+c").unwrap();
        assert!(!r.is_match("ac"));
        assert!(r.is_match("abc"));
        let r = Regex::new("colou?r").unwrap();
        assert!(r.is_match("color"));
        assert!(r.is_match("colour"));
    }

    #[test]
    fn regex_classes_and_escapes() {
        let r = Regex::new("[A-Z][a-z]+").unwrap();
        assert!(r.is_match("the Word here"));
        assert!(!r.is_match("nothing lower"));
        let r = Regex::new(r"\d+\.\d+").unwrap();
        assert!(r.is_match("version 1.25 beta"));
        assert!(!r.is_match("version x"));
        let r = Regex::new("[^0-9]+").unwrap();
        assert!(r.is_match("abc"));
        assert!(!r.is_match("123"));
    }

    #[test]
    fn regex_alternation_and_groups() {
        let r = Regex::new("(Nokia|SonyEricsson)/[0-9]+").unwrap();
        assert!(r.is_match("Nokia/6600"));
        assert!(r.is_match("SonyEricsson/910"));
        assert!(!r.is_match("Motorola/1"));
        let r = Regex::new("(ab)+c").unwrap();
        assert!(r.is_match("ababc"));
        assert!(!r.is_match("c"));
    }

    #[test]
    fn regex_anchors() {
        let r = Regex::new("^GET").unwrap();
        assert!(r.is_match("GET /path"));
        assert!(!r.is_match("FORGET /path"));
        let r = Regex::new("html$").unwrap();
        assert!(r.is_match("/index.html"));
        assert!(!r.is_match("/index.html.old"));
        let r = Regex::new("^exact$").unwrap();
        assert!(r.is_match("exact"));
        assert!(!r.is_match("inexact"));
    }

    #[test]
    fn regex_find_positions() {
        let r = Regex::new("[0-9]+").unwrap();
        assert_eq!(r.find("abc 123 def"), Some((4, 7)));
        assert_eq!(r.find("no digits"), None);
    }

    #[test]
    fn regex_rejects_malformed() {
        assert!(Regex::new("a[bc").is_err());
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("*leading").is_err());
        assert!(Regex::new("trailing\\").is_err());
    }
}
