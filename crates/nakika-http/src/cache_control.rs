//! The web's expiration-based consistency model.
//!
//! Na Kika deliberately builds on HTTP's expiration-based caching for both
//! original and processed content, and its administrative control scripts are
//! themselves distributed by letting cached copies expire (paper §3.2).  This
//! module implements freshness computation from `Cache-Control`, `Expires`,
//! `Date`, and `Age`, plus the absolute-expiration requirement of the
//! content-integrity extension (paper §6).

use crate::headers::Headers;
use crate::message::Response;
use crate::method::Method;
use std::time::Duration;

/// Parsed `Cache-Control` directives relevant to a shared cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheControl {
    /// `no-store` — must not be cached at all.
    pub no_store: bool,
    /// `no-cache` — must be revalidated before use.
    pub no_cache: bool,
    /// `private` — not cacheable by shared caches (like Na Kika proxies).
    pub private: bool,
    /// `public` — explicitly cacheable.
    pub public: bool,
    /// `max-age` in seconds.
    pub max_age: Option<u64>,
    /// `s-maxage` in seconds (overrides `max-age` for shared caches).
    pub s_maxage: Option<u64>,
    /// `must-revalidate`.
    pub must_revalidate: bool,
}

impl CacheControl {
    /// Parses all `Cache-Control` headers in `headers`.
    pub fn parse(headers: &Headers) -> CacheControl {
        let mut cc = CacheControl::default();
        for value in headers.get_all("cache-control") {
            for directive in value.split(',') {
                let directive = directive.trim().to_ascii_lowercase();
                let (name, arg) = match directive.find('=') {
                    Some(idx) => (
                        &directive[..idx],
                        Some(directive[idx + 1..].trim_matches('"').to_string()),
                    ),
                    None => (directive.as_str(), None),
                };
                match name {
                    "no-store" => cc.no_store = true,
                    "no-cache" => cc.no_cache = true,
                    "private" => cc.private = true,
                    "public" => cc.public = true,
                    "must-revalidate" => cc.must_revalidate = true,
                    "max-age" => cc.max_age = arg.and_then(|a| a.parse().ok()),
                    "s-maxage" => cc.s_maxage = arg.and_then(|a| a.parse().ok()),
                    _ => {}
                }
            }
        }
        cc
    }

    /// The effective freshness lifetime for a shared cache, if any directive
    /// specifies one.
    pub fn shared_max_age(&self) -> Option<Duration> {
        self.s_maxage.or(self.max_age).map(Duration::from_secs)
    }
}

/// The freshness decision for a response held in (or considered for) a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The response may be stored and served for the given lifetime.
    Fresh(Duration),
    /// The response may be stored but must be revalidated on each use.
    Revalidate,
    /// The response must not be stored by a shared cache.
    Uncacheable,
}

/// Computes whether a response to `method` may be stored by a Na Kika proxy
/// and, if so, for how long.
///
/// `heuristic` is the lifetime applied when the origin supplies no explicit
/// expiration information but the status is heuristically cacheable; the
/// paper's deployment uses ordinary HTTP defaults, and its experiments rely
/// on explicit expirations for scripts and content.
pub fn freshness(method: &Method, resp: &Response, heuristic: Duration) -> Freshness {
    if !method.is_cacheable() {
        return Freshness::Uncacheable;
    }
    let cc = CacheControl::parse(&resp.headers);
    if cc.no_store || cc.private {
        return Freshness::Uncacheable;
    }
    if cc.no_cache {
        return Freshness::Revalidate;
    }
    if let Some(age) = cc.shared_max_age() {
        return if age.is_zero() {
            Freshness::Revalidate
        } else {
            Freshness::Fresh(age)
        };
    }
    // Expires relative to Date; both are modelled as integral seconds since an
    // arbitrary epoch (the simulator's clock) via `Expires-Seconds` /
    // `Date-Seconds` when produced internally, or as HTTP-dates otherwise.
    if let (Some(expires), Some(date)) = (
        seconds_header(&resp.headers, "expires-seconds"),
        seconds_header(&resp.headers, "date-seconds"),
    ) {
        return if expires > date {
            Freshness::Fresh(Duration::from_secs(expires - date))
        } else {
            Freshness::Revalidate
        };
    }
    if resp.headers.contains("expires") {
        // An unparseable or past Expires value means "already expired".
        return Freshness::Revalidate;
    }
    if resp.status.is_cacheable_by_default() && !heuristic.is_zero() {
        Freshness::Fresh(heuristic)
    } else {
        Freshness::Uncacheable
    }
}

fn seconds_header(headers: &Headers, name: &str) -> Option<u64> {
    headers.get(name).and_then(|v| v.trim().parse().ok())
}

/// Rewrites a response's cache metadata to use an *absolute* expiration time
/// (in seconds on the caller's clock), as required by the content-integrity
/// scheme: untrusted nodes cannot be trusted to decrement relative lifetimes
/// (paper §6).
pub fn set_absolute_expiry(resp: &mut Response, now_secs: u64, lifetime: Duration) {
    resp.headers.remove("cache-control");
    resp.headers.set("Date-Seconds", now_secs.to_string());
    resp.headers.set(
        "Expires-Seconds",
        (now_secs + lifetime.as_secs()).to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Response;
    use crate::status::StatusCode;

    fn resp_with_cc(value: &str) -> Response {
        Response::ok("text/html", "x").with_header("Cache-Control", value)
    }

    #[test]
    fn parses_directives() {
        let r = resp_with_cc("public, max-age=300, s-maxage=\"600\", must-revalidate");
        let cc = CacheControl::parse(&r.headers);
        assert!(cc.public);
        assert!(cc.must_revalidate);
        assert_eq!(cc.max_age, Some(300));
        assert_eq!(cc.s_maxage, Some(600));
        assert_eq!(cc.shared_max_age(), Some(Duration::from_secs(600)));
    }

    #[test]
    fn no_store_and_private_are_uncacheable() {
        for v in ["no-store", "private", "private, max-age=100"] {
            let r = resp_with_cc(v);
            assert_eq!(
                freshness(&Method::Get, &r, Duration::from_secs(60)),
                Freshness::Uncacheable,
                "directive {v}"
            );
        }
    }

    #[test]
    fn no_cache_requires_revalidation() {
        let r = resp_with_cc("no-cache");
        assert_eq!(
            freshness(&Method::Get, &r, Duration::from_secs(60)),
            Freshness::Revalidate
        );
    }

    #[test]
    fn max_age_wins_over_heuristic() {
        let r = resp_with_cc("max-age=120");
        assert_eq!(
            freshness(&Method::Get, &r, Duration::from_secs(60)),
            Freshness::Fresh(Duration::from_secs(120))
        );
        let r = resp_with_cc("max-age=0");
        assert_eq!(
            freshness(&Method::Get, &r, Duration::from_secs(60)),
            Freshness::Revalidate
        );
    }

    #[test]
    fn non_get_is_uncacheable() {
        let r = resp_with_cc("max-age=120");
        assert_eq!(
            freshness(&Method::Post, &r, Duration::from_secs(60)),
            Freshness::Uncacheable
        );
    }

    #[test]
    fn heuristic_applies_only_to_default_cacheable_statuses() {
        let ok = Response::ok("text/html", "x");
        assert_eq!(
            freshness(&Method::Get, &ok, Duration::from_secs(60)),
            Freshness::Fresh(Duration::from_secs(60))
        );
        let busy = Response::error(StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(
            freshness(&Method::Get, &busy, Duration::from_secs(60)),
            Freshness::Uncacheable
        );
        assert_eq!(
            freshness(&Method::Get, &ok, Duration::ZERO),
            Freshness::Uncacheable
        );
    }

    #[test]
    fn absolute_expiry_round_trips() {
        let mut r = Response::ok("text/html", "x").with_header("Cache-Control", "max-age=5");
        set_absolute_expiry(&mut r, 1000, Duration::from_secs(300));
        assert!(!r.headers.contains("cache-control"));
        assert_eq!(
            freshness(&Method::Get, &r, Duration::ZERO),
            Freshness::Fresh(Duration::from_secs(300))
        );
        // Expired absolute time → revalidate.
        set_absolute_expiry(&mut r, 1000, Duration::ZERO);
        assert_eq!(
            freshness(&Method::Get, &r, Duration::ZERO),
            Freshness::Revalidate
        );
    }

    #[test]
    fn legacy_expires_header_means_revalidate() {
        let r =
            Response::ok("text/html", "x").with_header("Expires", "Thu, 01 Dec 1994 16:00:00 GMT");
        assert_eq!(
            freshness(&Method::Get, &r, Duration::from_secs(60)),
            Freshness::Revalidate
        );
    }
}
