//! Serialization of HTTP messages back to their wire format.

use crate::message::{Request, Response};

/// Serializes a request in origin-form (path on the request line, `Host`
/// header carrying the authority), which is what a proxy forwards upstream.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    serialize_request_with_form(req, false)
}

/// Serializes a request in absolute-form (full URI on the request line),
/// which is what a client sends to an explicitly configured proxy.
pub fn serialize_request_absolute(req: &Request) -> Vec<u8> {
    serialize_request_with_form(req, true)
}

fn serialize_request_with_form(req: &Request, absolute: bool) -> Vec<u8> {
    let version = if req.version_11 {
        "HTTP/1.1"
    } else {
        "HTTP/1.0"
    };
    let target = if absolute {
        req.uri.to_string()
    } else {
        req.uri.path_and_query()
    };
    let mut out = Vec::with_capacity(128 + req.body.len());
    out.extend_from_slice(format!("{} {} {}\r\n", req.method, target, version).as_bytes());
    if !req.headers.contains("host") && !req.uri.host.is_empty() {
        out.extend_from_slice(format!("Host: {}\r\n", req.uri.authority()).as_bytes());
    }
    let body_len = req.body.len();
    let mut wrote_length = false;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            // Always emit a Content-Length consistent with the actual body, a
            // script may have rewritten the body without fixing the header.
            out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
            wrote_length = true;
        } else {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
    }
    if !wrote_length && body_len > 0 {
        out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    for chunk in req.body.chunks() {
        out.extend_from_slice(chunk);
    }
    out
}

/// Serializes a response to its wire format.  Chunked transfer encoding is
/// never emitted: the body length is always declared explicitly, because Na
/// Kika scripts operate on complete instances (paper §3.1).
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let version = if resp.version_11 {
        "HTTP/1.1"
    } else {
        "HTTP/1.0"
    };
    let mut out = Vec::with_capacity(128 + resp.body.len());
    out.extend_from_slice(
        format!(
            "{} {} {}\r\n",
            version,
            resp.status.as_u16(),
            resp.status.reason()
        )
        .as_bytes(),
    );
    let body_len = resp.body.len();
    let mut wrote_length = false;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("transfer-encoding") {
            continue;
        }
        if name.eq_ignore_ascii_case("content-length") {
            out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
            wrote_length = true;
        } else {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
    }
    if !wrote_length {
        out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    for chunk in resp.body.chunks() {
        out.extend_from_slice(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::parse::{parse_request, parse_response, ParseOutcome};
    use crate::status::StatusCode;
    use crate::Response;

    #[test]
    fn request_round_trip() {
        let req = Request::get("http://med.nyu.edu/simm/1?s=9")
            .with_header("User-Agent", "nakika-test")
            .with_body("payload");
        let raw = serialize_request(&req);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("GET /simm/1?s=9 HTTP/1.1\r\n"));
        assert!(text.contains("Host: med.nyu.edu\r\n"));
        match parse_request(&raw).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.body.to_text(), "payload");
                assert_eq!(message.uri.path, "/simm/1");
            }
            ParseOutcome::Partial => panic!("round trip incomplete"),
        }
    }

    #[test]
    fn absolute_form_for_proxies() {
        let req = Request::get("http://a.com/x");
        let raw = serialize_request_absolute(&req);
        assert!(String::from_utf8_lossy(&raw).starts_with("GET http://a.com/x HTTP/1.1"));
    }

    #[test]
    fn response_round_trip_and_length_fixup() {
        let mut resp = Response::ok("text/html", "abc");
        // Simulate a script that changed the body without fixing the header.
        resp.body = "abcdef".into();
        let raw = serialize_response(&resp);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.contains("Content-Length: 6\r\n"));
        match parse_response(&raw).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.status, StatusCode::OK);
                assert_eq!(message.body.to_text(), "abcdef");
            }
            ParseOutcome::Partial => panic!("round trip incomplete"),
        }
    }

    #[test]
    fn chunked_header_is_dropped_on_output() {
        let mut resp = Response::ok("text/plain", "data");
        resp.headers.set("Transfer-Encoding", "chunked");
        let raw = serialize_response(&resp);
        let text = String::from_utf8_lossy(&raw);
        assert!(!text.to_ascii_lowercase().contains("transfer-encoding"));
        assert!(text.contains("Content-Length: 4"));
    }

    #[test]
    fn empty_body_still_emits_length() {
        let resp = Response::new(StatusCode::NO_CONTENT);
        let raw = serialize_response(&resp);
        assert!(String::from_utf8_lossy(&raw).contains("Content-Length: 0"));
    }
}
