//! Serialization of HTTP messages back to their wire format.
//!
//! Two paths exist.  The one-shot functions ([`serialize_request`],
//! [`serialize_response`]) materialize a whole message — the right tool for
//! requests (small) and for tests.  The incremental [`ResponseWriter`]
//! emits a response as a head followed by bounded body chunks — with
//! `Content-Length` framing when the body size is known and `chunked`
//! transfer encoding when it is not — so a transport never holds more than
//! one chunk of a large streamed body in its output buffer.

use crate::message::{Body, Request, Response};
use bytes::Bytes;
use std::io;

/// Serializes a request in origin-form (path on the request line, `Host`
/// header carrying the authority), which is what a proxy forwards upstream.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    serialize_request_with_form(req, false)
}

/// Serializes a request in absolute-form (full URI on the request line),
/// which is what a client sends to an explicitly configured proxy.
pub fn serialize_request_absolute(req: &Request) -> Vec<u8> {
    serialize_request_with_form(req, true)
}

fn serialize_request_with_form(req: &Request, absolute: bool) -> Vec<u8> {
    let version = if req.version_11 {
        "HTTP/1.1"
    } else {
        "HTTP/1.0"
    };
    let target = if absolute {
        req.uri.to_string()
    } else {
        req.uri.path_and_query()
    };
    // Request bodies stay buffered in this stack (they are uploads the
    // scripting pipeline inspects whole), so draining here is cheap.
    let body = req.body.to_bytes();
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("{} {} {}\r\n", req.method, target, version).as_bytes());
    if !req.headers.contains("host") && !req.uri.host.is_empty() {
        out.extend_from_slice(format!("Host: {}\r\n", req.uri.authority()).as_bytes());
    }
    let body_len = body.len();
    let mut wrote_length = false;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            // Always emit a Content-Length consistent with the actual body, a
            // script may have rewritten the body without fixing the header.
            out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
            wrote_length = true;
        } else {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
    }
    if !wrote_length && body_len > 0 {
        out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&body);
    out
}

/// Serializes a response to its wire format in one buffer, draining a
/// streaming body first.  `Content-Length` framing is always used; large
/// responses should go through [`ResponseWriter`] instead, which never
/// materializes the body.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let body = resp.body.to_bytes();
    let mut out = response_head(resp, Framing::Length(body.len() as u64));
    out.extend_from_slice(&body);
    out
}

/// Wire framing chosen for a response body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    /// `Content-Length: n`.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Builds the status line + headers for `resp` under `framing`, overriding
/// any stale `Content-Length`/`Transfer-Encoding` the message carried.
fn response_head(resp: &Response, framing: Framing) -> Vec<u8> {
    let version = if resp.version_11 {
        "HTTP/1.1"
    } else {
        "HTTP/1.0"
    };
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(
        format!(
            "{} {} {}\r\n",
            version,
            resp.status.as_u16(),
            resp.status.reason()
        )
        .as_bytes(),
    );
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("transfer-encoding")
            || name.eq_ignore_ascii_case("content-length")
        {
            continue;
        }
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    match framing {
        Framing::Length(n) => {
            out.extend_from_slice(format!("Content-Length: {n}\r\n").as_bytes());
        }
        Framing::Chunked => {
            out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
        }
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Incremental response serializer: yields the head, then the body one
/// bounded chunk at a time, framed by `Content-Length` when the size is
/// known and by `chunked` transfer encoding otherwise.
///
/// HTTP/1.0 peers do not understand chunked encoding, so an unknown-length
/// body destined for a 1.0 client is buffered once to learn its size — the
/// only case where this writer materializes a body.
///
/// ```
/// use nakika_http::serialize::ResponseWriter;
/// use nakika_http::{Body, Response};
/// use bytes::Bytes;
///
/// let mut resp = Response::new(nakika_http::StatusCode::OK);
/// resp.body = Body::stream_from_iter(vec![Bytes::from_static(b"hi")], None);
/// let mut writer = ResponseWriter::new(resp);
/// let mut wire = Vec::new();
/// while let Some(part) = writer.next_part().unwrap() {
///     wire.extend_from_slice(&part);
/// }
/// let text = String::from_utf8_lossy(&wire);
/// assert!(text.contains("Transfer-Encoding: chunked"));
/// assert!(text.ends_with("2\r\nhi\r\n0\r\n\r\n"));
/// ```
pub struct ResponseWriter {
    body: Body,
    chunked: bool,
    /// Bytes the declared `Content-Length` still allows; `None` in chunked
    /// mode.  Guards HTTP framing against a source that delivers more or
    /// fewer bytes than the response declared.
    remaining: Option<u64>,
    head: Option<Vec<u8>>,
    /// Set when the body failed before the head was emitted (the 1.0
    /// buffering path): surfaced from the first `next_part` call so no
    /// misleading head ever reaches the wire.
    failed_early: Option<String>,
    done: bool,
}

impl ResponseWriter {
    /// Prepares `resp` for incremental writing.
    pub fn new(mut resp: Response) -> ResponseWriter {
        let mut failed_early = None;
        let framing = match resp.body.size_hint() {
            Some(n) => Framing::Length(n),
            None if resp.version_11 => Framing::Chunked,
            None => {
                // 1.0 client: learn the length by buffering.  A failure here
                // happens before anything reached the wire, so it is stashed
                // and surfaced from the first next_part call instead of
                // emitting a valid-looking empty 200.
                if let Err(e) = resp.body.buffer() {
                    failed_early = Some(e.to_string());
                }
                Framing::Length(resp.body.len() as u64)
            }
        };
        ResponseWriter {
            head: Some(response_head(&resp, framing)),
            chunked: framing == Framing::Chunked,
            remaining: match framing {
                Framing::Length(n) => Some(n),
                Framing::Chunked => None,
            },
            body: resp.body,
            failed_early,
            done: false,
        }
    }

    /// The next piece of wire output: the head on the first call, then one
    /// framed body chunk per call, then (for chunked framing) the
    /// terminator; `Ok(None)` when the response is fully emitted.
    ///
    /// An `Err` means the body stream failed mid-response.  The head may
    /// already be on the wire at that point, so the only safe recovery for
    /// a transport is to abort the connection — the framing (short
    /// `Content-Length` read or missing chunked terminator) tells the
    /// client the message was truncated.  The same applies to a source
    /// that ends short of the response's declared `Content-Length`.
    pub fn next_part(&mut self) -> io::Result<Option<Bytes>> {
        if let Some(reason) = self.failed_early.take() {
            return Err(io::Error::other(reason));
        }
        if let Some(head) = self.head.take() {
            return Ok(Some(Bytes::from(head)));
        }
        loop {
            if self.done {
                return Ok(None);
            }
            let read = self.body.read_chunk();
            if let Some(part) = self.accept_chunk(read)? {
                return Ok(Some(part));
            }
        }
    }

    /// True when the next wire part must be *pulled* from a body source
    /// that may block on external I/O ([`Body::may_block`]).  Readiness
    /// transports check this before calling [`next_part`] on an event-loop
    /// thread: when it is true they instead run the pull elsewhere — on a
    /// clone from [`body_handle`] — and feed the result back through
    /// [`accept_chunk`].  The head and any already-buffered data are never
    /// a blocking pull, so this is false until the head has been emitted.
    ///
    /// [`next_part`]: ResponseWriter::next_part
    /// [`body_handle`]: ResponseWriter::body_handle
    /// [`accept_chunk`]: ResponseWriter::accept_chunk
    pub fn next_pull_may_block(&self) -> bool {
        self.failed_early.is_none() && self.head.is_none() && !self.done && self.body.may_block()
    }

    /// A shared handle on the response body, for pulling the next chunk off
    /// the calling thread.  Stream clones share one underlying source, so a
    /// chunk pulled through the handle (`Body::read_chunk`) is the same
    /// chunk [`next_part`](ResponseWriter::next_part) would have pulled;
    /// hand it back via [`accept_chunk`](ResponseWriter::accept_chunk).
    pub fn body_handle(&self) -> Body {
        self.body.clone()
    }

    /// Feeds one raw body-read result (a `Body::read_chunk` outcome, pulled
    /// by the caller — possibly on another thread) into the writer,
    /// returning the wire part it produces, if any.
    ///
    /// `Ok(None)` while [`is_done`](ResponseWriter::is_done) is false means
    /// the read produced nothing emittable (an empty chunk, which must not
    /// be framed — in chunked encoding a zero-size chunk *is* the
    /// terminator) and the caller should pull again; once `is_done` is
    /// true the response is fully emitted.  Errors follow the
    /// [`next_part`](ResponseWriter::next_part) contract: the connection
    /// must be aborted.
    pub fn accept_chunk(&mut self, read: io::Result<Option<Bytes>>) -> io::Result<Option<Bytes>> {
        if self.done {
            return Ok(None);
        }
        match read? {
            Some(chunk) if chunk.is_empty() => Ok(None),
            Some(mut chunk) => {
                if let Some(remaining) = &mut self.remaining {
                    if *remaining == 0 {
                        // Over-delivery past the declared length would
                        // bleed into the next message on a keep-alive
                        // connection.  Drop the misbehaving source.
                        self.done = true;
                        return Ok(None);
                    }
                    if (chunk.len() as u64) > *remaining {
                        chunk = chunk.slice(..*remaining as usize);
                    }
                    *remaining -= chunk.len() as u64;
                }
                Ok(Some(self.frame(chunk)))
            }
            None => {
                self.done = true;
                if self.chunked {
                    Ok(Some(Bytes::from_static(b"0\r\n\r\n")))
                } else if let Some(short) = self.remaining.filter(|r| *r > 0) {
                    // Under-delivery: the head promised more bytes than
                    // the source produced.  Abort so the client sees a
                    // short read, never a silently padded-out frame.
                    Err(io::Error::other(format!(
                        "body ended {short} bytes short of its declared Content-Length"
                    )))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// True once the response is fully emitted (every part of
    /// [`next_part`](ResponseWriter::next_part) /
    /// [`accept_chunk`](ResponseWriter::accept_chunk) has been handed out).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Wire-frames one body chunk.  `Content-Length` framing passes the
    /// chunk through untouched (zero-copy on the relay hot path); chunked
    /// framing wraps it in its size line and CRLF.
    fn frame(&self, chunk: Bytes) -> Bytes {
        if self.chunked {
            let mut out = Vec::with_capacity(chunk.len() + 16);
            out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            out.extend_from_slice(&chunk);
            out.extend_from_slice(b"\r\n");
            Bytes::from(out)
        } else {
            chunk
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::parse::{parse_request, parse_response, ParseOutcome};
    use crate::status::StatusCode;
    use crate::Response;

    #[test]
    fn request_round_trip() {
        let req = Request::get("http://med.nyu.edu/simm/1?s=9")
            .with_header("User-Agent", "nakika-test")
            .with_body("payload");
        let raw = serialize_request(&req);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("GET /simm/1?s=9 HTTP/1.1\r\n"));
        assert!(text.contains("Host: med.nyu.edu\r\n"));
        match parse_request(&raw).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.body.to_text(), "payload");
                assert_eq!(message.uri.path, "/simm/1");
            }
            ParseOutcome::Partial => panic!("round trip incomplete"),
        }
    }

    #[test]
    fn absolute_form_for_proxies() {
        let req = Request::get("http://a.com/x");
        let raw = serialize_request_absolute(&req);
        assert!(String::from_utf8_lossy(&raw).starts_with("GET http://a.com/x HTTP/1.1"));
    }

    #[test]
    fn response_round_trip_and_length_fixup() {
        let mut resp = Response::ok("text/html", "abc");
        // Simulate a script that changed the body without fixing the header.
        resp.body = "abcdef".into();
        let raw = serialize_response(&resp);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.contains("Content-Length: 6\r\n"));
        match parse_response(&raw).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.status, StatusCode::OK);
                assert_eq!(message.body.to_text(), "abcdef");
            }
            ParseOutcome::Partial => panic!("round trip incomplete"),
        }
    }

    #[test]
    fn stale_chunked_header_is_dropped_on_buffered_output() {
        let mut resp = Response::ok("text/plain", "data");
        resp.headers.set("Transfer-Encoding", "chunked");
        let raw = serialize_response(&resp);
        let text = String::from_utf8_lossy(&raw);
        assert!(!text.to_ascii_lowercase().contains("transfer-encoding"));
        assert!(text.contains("Content-Length: 4"));
    }

    #[test]
    fn empty_body_still_emits_length() {
        let resp = Response::new(StatusCode::NO_CONTENT);
        let raw = serialize_response(&resp);
        assert!(String::from_utf8_lossy(&raw).contains("Content-Length: 0"));
    }

    fn drain(mut writer: ResponseWriter) -> Vec<u8> {
        let mut wire = Vec::new();
        while let Some(part) = writer.next_part().unwrap() {
            wire.extend_from_slice(&part);
        }
        wire
    }

    #[test]
    fn writer_uses_content_length_for_sized_bodies() {
        use bytes::Bytes;
        let resp = Response::ok("text/plain", "sized body");
        let wire = drain(ResponseWriter::new(resp));
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.ends_with("sized body"));

        // A stream with a declared length keeps Content-Length framing.
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::stream_from_iter(
            vec![Bytes::from_static(b"01234"), Bytes::from_static(b"56789")],
            Some(10),
        );
        let wire = drain(ResponseWriter::new(resp));
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.ends_with("0123456789"));
    }

    #[test]
    fn writer_chunk_encodes_unknown_lengths_and_round_trips() {
        use bytes::Bytes;
        let mut resp = Response::new(StatusCode::OK);
        resp.headers.set("Content-Type", "video/mpeg");
        // A stale Content-Length from upstream must not leak next to the
        // chunked framing.
        resp.headers.set("Content-Length", "999");
        resp.body = Body::stream_from_iter(
            vec![
                Bytes::from_static(b"part one, "),
                Bytes::from_static(b"part two"),
            ],
            None,
        );
        let wire = drain(ResponseWriter::new(resp));
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert!(message.headers.is_chunked());
                assert!(!message.headers.contains("content-length"));
                assert_eq!(message.body.to_text(), "part one, part two");
            }
            ParseOutcome::Partial => panic!("chunked round trip incomplete"),
        }
    }

    #[test]
    fn writer_skips_empty_chunks_instead_of_emitting_a_premature_terminator() {
        use bytes::Bytes;
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::stream_from_iter(
            vec![
                Bytes::new(),
                Bytes::from_static(b"data"),
                Bytes::new(),
                Bytes::from_static(b"!"),
            ],
            None,
        );
        let wire = drain(ResponseWriter::new(resp));
        match parse_response(&wire).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len(), "no bytes bleed past the body");
                assert_eq!(message.body.to_text(), "data!");
            }
            ParseOutcome::Partial => panic!("terminator missing"),
        }
    }

    #[test]
    fn writer_enforces_the_declared_length_against_the_source() {
        use bytes::Bytes;
        // Under-delivery: the declared length cannot be met — the writer
        // must error (the transport aborts) rather than end cleanly.
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::stream_from_iter(vec![Bytes::from_static(b"abc")], Some(10));
        let mut writer = ResponseWriter::new(resp);
        let mut saw_error = false;
        loop {
            match writer.next_part() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    saw_error = true;
                    assert!(e.to_string().contains("7 bytes short"), "{e}");
                    break;
                }
            }
        }
        assert!(saw_error, "short delivery must not end cleanly");

        // Over-delivery: bytes past the declared length are cut off so they
        // cannot bleed into the next keep-alive response.
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::stream_from_iter(
            vec![
                Bytes::from_static(b"0123456789"),
                Bytes::from_static(b"EXTRA"),
            ],
            Some(10),
        );
        let wire = drain(ResponseWriter::new(resp));
        let text = String::from_utf8_lossy(&wire);
        assert!(text.ends_with("0123456789"), "wire: {text}");
        assert!(!text.contains("EXTRA"));
    }

    #[test]
    fn writer_aborts_before_the_head_when_http10_buffering_fails() {
        struct Failing;
        impl crate::message::ChunkSource for Failing {
            fn next_chunk(&mut self) -> io::Result<Option<bytes::Bytes>> {
                Err(io::Error::other("upstream died"))
            }
        }
        let mut resp = Response::new(StatusCode::OK);
        resp.version_11 = false;
        resp.body = Body::stream(Failing, None);
        let mut writer = ResponseWriter::new(resp);
        // The failure must surface before any head bytes are produced — a
        // 1.0 client must never see a valid-looking empty 200.
        let err = writer.next_part().unwrap_err();
        assert!(err.to_string().contains("upstream died"), "{err}");
    }

    #[test]
    fn writer_buffers_unknown_lengths_for_http10_clients() {
        use bytes::Bytes;
        let mut resp = Response::new(StatusCode::OK);
        resp.version_11 = false;
        resp.body = Body::stream_from_iter(vec![Bytes::from_static(b"legacy")], None);
        let wire = drain(ResponseWriter::new(resp));
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length: 6\r\n"));
        assert!(text.ends_with("legacy"));
    }
}
