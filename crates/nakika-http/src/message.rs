//! HTTP request and response messages with chunked ("bucket brigade") bodies.

use crate::headers::Headers;
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::Uri;
use bytes::Bytes;
use std::net::{IpAddr, Ipv4Addr};

/// An HTTP message body, held as a sequence of chunks.
///
/// Apache delivers message data to filters as *bucket brigades*: a list of
/// buffers that arrive piecemeal.  Na Kika's scripts read the body in chunks
/// (`Response.read()` in the paper's Figure 2) so that cut-through routing is
/// possible; this type models that chunk list while allowing cheap whole-body
/// access when a script needs the entire instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Body {
    chunks: Vec<Bytes>,
}

impl Body {
    /// An empty body.
    pub fn empty() -> Body {
        Body::default()
    }

    /// A body with a single chunk.
    pub fn from_bytes(data: impl Into<Bytes>) -> Body {
        let data = data.into();
        if data.is_empty() {
            Body::empty()
        } else {
            Body { chunks: vec![data] }
        }
    }

    /// A body built from a list of chunks (empty chunks are dropped).
    pub fn from_chunks(chunks: Vec<Bytes>) -> Body {
        Body {
            chunks: chunks.into_iter().filter(|c| !c.is_empty()).collect(),
        }
    }

    /// Total length in bytes across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// True if the body holds no data.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|c| c.is_empty())
    }

    /// The chunks in order.
    pub fn chunks(&self) -> &[Bytes] {
        &self.chunks
    }

    /// Appends a chunk to the body.
    pub fn push(&mut self, chunk: impl Into<Bytes>) {
        let chunk = chunk.into();
        if !chunk.is_empty() {
            self.chunks.push(chunk);
        }
    }

    /// Collapses the body into a single contiguous buffer.
    pub fn to_bytes(&self) -> Bytes {
        match self.chunks.len() {
            0 => Bytes::new(),
            1 => self.chunks[0].clone(),
            _ => {
                let mut buf = Vec::with_capacity(self.len());
                for c in &self.chunks {
                    buf.extend_from_slice(c);
                }
                Bytes::from(buf)
            }
        }
    }

    /// Interprets the body as UTF-8 text, replacing invalid sequences.
    pub fn to_text(&self) -> String {
        String::from_utf8_lossy(&self.to_bytes()).into_owned()
    }

    /// Replaces the body content with a single chunk.
    pub fn replace(&mut self, data: impl Into<Bytes>) {
        self.chunks.clear();
        self.push(data);
    }

    /// Removes all content.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::from_bytes(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::from_bytes(Bytes::from(s.into_bytes()))
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::from_bytes(Bytes::from(v))
    }
}

/// An HTTP request as seen by Na Kika's scripting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URI.  For proxied requests this is the absolute URI.
    pub uri: Uri,
    /// True for HTTP/1.1, false for HTTP/1.0.
    pub version_11: bool,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Body,
    /// IP address of the client that sent the request (known to the proxy
    /// even though it is not part of the wire format); used by policy
    /// predicates such as the digital-library protection in Figure 5.
    pub client_ip: IpAddr,
}

impl Request {
    /// Creates a GET request for `uri` from an unspecified client.
    pub fn get(uri: &str) -> Request {
        Request {
            method: Method::Get,
            uri: Uri::parse(uri).unwrap_or_else(|_| Uri::http("invalid.local", 80, "/")),
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        }
    }

    /// Creates a request with the given method and URI.
    pub fn new(method: Method, uri: Uri) -> Request {
        Request {
            method,
            uri,
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        }
    }

    /// Builder-style helper setting the client IP.
    pub fn with_client_ip(mut self, ip: IpAddr) -> Request {
        self.client_ip = ip;
        self
    }

    /// Builder-style helper setting a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Builder-style helper setting the body and Content-Length.
    pub fn with_body(mut self, body: impl Into<Body>) -> Request {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
        self
    }

    /// The site this request targets (authority of the origin URI).
    pub fn site(&self) -> String {
        self.uri.to_origin().site()
    }

    /// The `Host` header value to send, synthesised from the URI if missing.
    pub fn host_header(&self) -> String {
        self.headers
            .get("host")
            .map(str::to_string)
            .unwrap_or_else(|| self.uri.authority())
    }
}

/// An HTTP response as seen by Na Kika's scripting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// True for HTTP/1.1.
    pub version_11: bool,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Body,
}

impl Response {
    /// Creates a response with the given status and an empty body.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
        }
    }

    /// A `200 OK` response carrying `body` with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Body>) -> Response {
        let body = body.into();
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", content_type);
        r.headers.set("Content-Length", body.len().to_string());
        r.body = body;
        r
    }

    /// An error response with a short plain-text body, as produced by
    /// `Request.terminate(code)` in scripts.
    pub fn error(status: StatusCode) -> Response {
        let body = Body::from(format!("{}\n", status));
        let mut r = Response::new(status);
        r.headers.set("Content-Type", "text/plain");
        r.headers.set("Content-Length", body.len().to_string());
        r.body = body;
        r
    }

    /// A redirect (302) to `location`.
    pub fn redirect(location: &str) -> Response {
        let mut r = Response::new(StatusCode::FOUND);
        r.headers.set("Location", location);
        r.headers.set("Content-Length", "0");
        r
    }

    /// Builder-style helper setting a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Replaces the body and fixes up Content-Length.
    pub fn set_body(&mut self, body: impl Into<Body>) {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
    }

    /// Content type without parameters, defaulting to
    /// `application/octet-stream`.
    pub fn content_type(&self) -> String {
        self.headers
            .content_type()
            .unwrap_or("application/octet-stream")
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_chunk_accounting() {
        let mut b = Body::empty();
        assert!(b.is_empty());
        b.push(Bytes::from_static(b"hello "));
        b.push(Bytes::from_static(b""));
        b.push(Bytes::from_static(b"world"));
        assert_eq!(b.len(), 11);
        assert_eq!(b.chunks().len(), 2);
        assert_eq!(b.to_text(), "hello world");
        b.replace("x");
        assert_eq!(b.to_text(), "x");
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn body_single_chunk_is_zero_copy() {
        let data = Bytes::from_static(b"payload");
        let b = Body::from_bytes(data.clone());
        // Single-chunk bodies return the same underlying buffer.
        assert_eq!(b.to_bytes().as_ptr(), data.as_ptr());
    }

    #[test]
    fn request_builders() {
        let r = Request::get("http://med.nyu.edu/simm/1")
            .with_header("User-Agent", "test")
            .with_body("data");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.site(), "med.nyu.edu");
        assert_eq!(r.headers.get("user-agent"), Some("test"));
        assert_eq!(r.headers.content_length(), Some(4));
        assert_eq!(r.host_header(), "med.nyu.edu");
    }

    #[test]
    fn request_site_strips_nakika_suffix() {
        let r = Request::get("http://med.nyu.edu.nakika.net/simm/1");
        assert_eq!(r.site(), "med.nyu.edu");
    }

    #[test]
    fn response_constructors() {
        let r = Response::ok("text/html", "<p>hi</p>");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.content_length(), Some(9));
        let e = Response::error(StatusCode::UNAUTHORIZED);
        assert!(e.body.to_text().contains("401"));
        let d = Response::redirect("http://elsewhere/");
        assert_eq!(d.status, StatusCode::FOUND);
        assert_eq!(d.headers.get("location"), Some("http://elsewhere/"));
    }

    #[test]
    fn response_set_body_updates_length() {
        let mut r = Response::ok("text/plain", "aaa");
        r.set_body("bbbbb");
        assert_eq!(r.headers.content_length(), Some(5));
        assert_eq!(r.content_type(), "text/plain");
    }
}
