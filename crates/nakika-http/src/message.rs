//! HTTP request and response messages with streaming ("bucket brigade")
//! bodies.
//!
//! Apache delivers message data to filters as *bucket brigades*: buffers that
//! arrive piecemeal.  Na Kika's scripts read the body in chunks
//! (`Response.read()` in the paper's Figure 2) so that cut-through routing is
//! possible.  [`Body`] models both endpoints of that spectrum: a fully
//! materialized [`Body::Full`] buffer for messages that live in memory
//! (requests, cached entries, script-generated responses), and a
//! [`Body::Stream`] whose chunks are pulled incrementally from a
//! [`ChunkSource`] — typically an upstream socket — so a large multimedia
//! response flows through the proxy one bounded chunk at a time instead of
//! being materialized twice.

use crate::headers::Headers;
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::Uri;
use bytes::Bytes;
use std::fmt;
use std::io;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::{Arc, Mutex};

/// Preferred size of one streamed body chunk (64 KiB).  Sources may return
/// smaller chunks; well-behaved ones never return substantially larger ones,
/// which is what keeps per-connection buffering bounded.
pub const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// Segment size used by the script-facing `Response.read()` iteration over a
/// buffered body (the Figure-2 idiom reads a body piece by piece).
pub const SCRIPT_READ_CHUNK_BYTES: usize = 8 * 1024;

/// Largest body [`Body::buffer`]/[`Body::to_bytes`] will materialize
/// (64 MiB — the same bound the one-shot parser enforces).  Streaming
/// consumption via [`Body::read_chunk`] is not subject to it: a relay's
/// memory is bounded by its chunk window, not by body size.
pub const MAX_BUFFERED_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Drains `source` to a clean end, enforcing [`MAX_BUFFERED_BODY_BYTES`].
/// The initial allocation is clamped — `declared` comes from a peer's
/// `Content-Length` header and must not size an allocation by itself.
fn drain_source(source: &mut Box<dyn ChunkSource>, declared: Option<u64>) -> io::Result<Bytes> {
    let reserve = declared.unwrap_or(0).min(1024 * 1024) as usize;
    let mut buf = Vec::with_capacity(reserve);
    loop {
        match source.next_chunk() {
            Ok(Some(chunk)) => {
                if buf.len() + chunk.len() > MAX_BUFFERED_BODY_BYTES {
                    return Err(io::Error::other(format!(
                        "body exceeds the {MAX_BUFFERED_BODY_BYTES}-byte buffering limit"
                    )));
                }
                buf.extend_from_slice(&chunk);
            }
            Ok(None) => return Ok(Bytes::from(buf)),
            Err(e) => return Err(e),
        }
    }
}

/// A pull source of body chunks: the streaming half of [`Body`].
///
/// `next_chunk` returns `Ok(Some(bytes))` while data keeps arriving,
/// `Ok(None)` exactly once at a *clean* end of body, and `Err` when the
/// source failed mid-body (for example the upstream peer closed before
/// `Content-Length` bytes arrived).  After `None` or an error the source is
/// never polled again.
pub trait ChunkSource: Send {
    /// Pulls the next chunk, blocking if the source needs to wait for data.
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>>;

    /// Whether [`next_chunk`](ChunkSource::next_chunk) may *block* waiting
    /// on external I/O (an upstream socket, a pipe).  Sources whose chunks
    /// are already in memory — iterators, buffered bodies — leave the
    /// default `false`; a source that reads a socket returns `true` so that
    /// readiness-driven transports know to pull its chunks off the event
    /// loop (see the reactor's origin offload in `nakika-server`).
    fn may_block(&self) -> bool {
        false
    }
}

impl<I> ChunkSource for I
where
    I: Iterator<Item = Bytes> + Send,
{
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        Ok(self.next())
    }
}

/// What a [`BodyStream`]'s shared state currently holds.
enum StreamState {
    /// Chunks still to be pulled from the source.
    Active(Box<dyn ChunkSource>),
    /// The stream was fully drained into memory (by [`Body::to_bytes`] /
    /// [`Body::buffer`]); clones observing the state late still see the data.
    Buffered(Bytes),
    /// The source reported an error; the message records it.
    Failed(String),
}

/// The streaming variant of [`Body`]: a shared handle on a [`ChunkSource`]
/// plus the length declared by the message framing, when one is known.
///
/// The handle is shared (`Arc`) so that `Response: Clone` keeps holding —
/// clones of a streaming body observe the *same* underlying stream, and
/// whichever clone consumes it first wins.  That mirrors the physical
/// reality: there is only one upstream socket behind it.
pub struct BodyStream {
    declared_len: Option<u64>,
    state: Arc<Mutex<StreamState>>,
}

impl BodyStream {
    /// The body length declared by the message framing (`Content-Length`),
    /// or `None` for chunked/unknown-length streams.
    pub fn declared_len(&self) -> Option<u64> {
        self.declared_len
    }
}

impl Clone for BodyStream {
    fn clone(&self) -> BodyStream {
        BodyStream {
            declared_len: self.declared_len,
            state: self.state.clone(),
        }
    }
}

/// An HTTP message body: fully materialized, or streamed from a source.
#[derive(Clone)]
pub enum Body {
    /// The whole body, in memory.
    Full(Bytes),
    /// A body whose chunks are pulled incrementally from a [`ChunkSource`].
    Stream(BodyStream),
}

impl Body {
    /// An empty body.
    pub fn empty() -> Body {
        Body::Full(Bytes::new())
    }

    /// A fully materialized body.
    pub fn from_bytes(data: impl Into<Bytes>) -> Body {
        Body::Full(data.into())
    }

    /// A body built by concatenating a list of chunks.
    pub fn from_chunks(chunks: Vec<Bytes>) -> Body {
        match chunks.len() {
            0 => Body::empty(),
            1 => Body::Full(chunks.into_iter().next().unwrap()),
            _ => {
                let mut buf = Vec::with_capacity(chunks.iter().map(Bytes::len).sum());
                for c in &chunks {
                    buf.extend_from_slice(c);
                }
                Body::Full(Bytes::from(buf))
            }
        }
    }

    /// A streaming body over `source`.  `declared_len` is the length the
    /// message framing promises (`Content-Length`), or `None` when the
    /// length is unknown (the serializer then uses chunked encoding).
    pub fn stream(source: impl ChunkSource + 'static, declared_len: Option<u64>) -> Body {
        Body::Stream(BodyStream {
            declared_len,
            state: Arc::new(Mutex::new(StreamState::Active(Box::new(source)))),
        })
    }

    /// A streaming body over an iterator of chunks (tests and examples).
    pub fn stream_from_iter<I>(chunks: I, declared_len: Option<u64>) -> Body
    where
        I: IntoIterator<Item = Bytes>,
        I::IntoIter: Send + 'static,
    {
        Body::stream(chunks.into_iter(), declared_len)
    }

    /// True when the body is still a stream (not yet buffered).
    pub fn is_stream(&self) -> bool {
        matches!(self, Body::Stream(_))
    }

    /// True when consuming the next chunk of this body may block on
    /// external I/O (the [`ChunkSource::may_block`] of a still-active
    /// stream).  Full and already-buffered bodies never block; neither do
    /// failed streams (they report their stored error immediately).
    pub fn may_block(&self) -> bool {
        match self {
            Body::Full(_) => false,
            Body::Stream(stream) => match &*stream.state.lock().unwrap() {
                StreamState::Active(source) => source.may_block(),
                StreamState::Buffered(_) | StreamState::Failed(_) => false,
            },
        }
    }

    /// Number of body bytes *known* to this message: the buffer length for a
    /// full body, the declared length for a stream (0 when undeclared).
    /// Accounting code (logs, resource charging) uses this; exact byte
    /// counts for undeclared streams require draining the body.
    pub fn len(&self) -> usize {
        match self {
            Body::Full(b) => b.len(),
            Body::Stream(s) => s.declared_len.unwrap_or(0) as usize,
        }
    }

    /// The exact size when it is known without consuming the body.
    pub fn size_hint(&self) -> Option<u64> {
        match self {
            Body::Full(b) => Some(b.len() as u64),
            Body::Stream(s) => s.declared_len,
        }
    }

    /// True if the body is known to hold no data.  A stream with an unknown
    /// length is *not* empty — it may still produce bytes.
    pub fn is_empty(&self) -> bool {
        match self {
            Body::Full(b) => b.is_empty(),
            Body::Stream(s) => s.declared_len == Some(0),
        }
    }

    /// Pulls the next chunk of the body, consuming it.
    ///
    /// Full bodies are handed out in bounded [`STREAM_CHUNK_BYTES`] slices so
    /// transports never queue more than one chunk of wire output at a time,
    /// whatever the body's representation.  Returns `Ok(None)` at the end.
    pub fn read_chunk(&mut self) -> io::Result<Option<Bytes>> {
        match self {
            Body::Full(bytes) => {
                if bytes.is_empty() {
                    return Ok(None);
                }
                if bytes.len() <= STREAM_CHUNK_BYTES {
                    return Ok(Some(std::mem::take(bytes)));
                }
                let chunk = bytes.slice(..STREAM_CHUNK_BYTES);
                *bytes = bytes.slice(STREAM_CHUNK_BYTES..);
                Ok(Some(chunk))
            }
            Body::Stream(stream) => {
                let mut state = stream.state.lock().unwrap();
                match &mut *state {
                    StreamState::Active(source) => match source.next_chunk() {
                        Ok(Some(chunk)) => Ok(Some(chunk)),
                        Ok(None) => {
                            *state = StreamState::Buffered(Bytes::new());
                            Ok(None)
                        }
                        Err(e) => {
                            *state = StreamState::Failed(e.to_string());
                            Err(e)
                        }
                    },
                    StreamState::Buffered(bytes) => {
                        if bytes.is_empty() {
                            return Ok(None);
                        }
                        let taken = std::mem::take(bytes);
                        drop(state);
                        // Reuse the Full slicing discipline for the rest.
                        *self = Body::Full(taken);
                        self.read_chunk()
                    }
                    StreamState::Failed(reason) => Err(io::Error::other(reason.clone())),
                }
            }
        }
    }

    /// Drains a streaming body fully into memory, converting `self` into
    /// [`Body::Full`]; full bodies are untouched.  This is the explicit
    /// buffering point layers opt into via
    /// `Layer::requires_full_body` — an `Err` means the stream failed
    /// mid-body (for example a `Content-Length` mismatch from a peer that
    /// closed early) and carries the source's reason.
    ///
    /// Buffering is capped at [`MAX_BUFFERED_BODY_BYTES`]: an instance that
    /// must live in memory whole cannot be unbounded, whatever the peer
    /// declares or streams.  Relays that only forward chunks
    /// ([`Body::read_chunk`]) have no such cap.
    pub fn buffer(&mut self) -> io::Result<()> {
        if let Body::Stream(stream) = self {
            let declared = stream.declared_len;
            let mut state = stream.state.lock().unwrap();
            let buffered = match &mut *state {
                StreamState::Active(source) => match drain_source(source, declared) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        *state = StreamState::Failed(e.to_string());
                        return Err(e);
                    }
                },
                StreamState::Buffered(bytes) => std::mem::take(bytes),
                StreamState::Failed(reason) => {
                    return Err(io::Error::other(reason.clone()));
                }
            };
            *state = StreamState::Buffered(buffered.clone());
            drop(state);
            *self = Body::Full(buffered);
        }
        Ok(())
    }

    /// Collapses the body into a single contiguous buffer.
    ///
    /// For a streaming body this *drains the stream* (same
    /// [`MAX_BUFFERED_BODY_BYTES`] cap as [`Body::buffer`]), yielding an
    /// empty buffer when the stream fails; use [`Body::buffer`] when
    /// stream errors must surface (transports and layers do).  Tests and
    /// scripts — which operate on complete instances — use this
    /// convenience.
    pub fn to_bytes(&self) -> Bytes {
        match self {
            Body::Full(b) => b.clone(),
            Body::Stream(stream) => {
                let declared = stream.declared_len;
                let mut state = stream.state.lock().unwrap();
                match &mut *state {
                    StreamState::Active(source) => match drain_source(source, declared) {
                        Ok(bytes) => {
                            *state = StreamState::Buffered(bytes.clone());
                            bytes
                        }
                        Err(e) => {
                            *state = StreamState::Failed(e.to_string());
                            Bytes::new()
                        }
                    },
                    StreamState::Buffered(bytes) => bytes.clone(),
                    StreamState::Failed(_) => Bytes::new(),
                }
            }
        }
    }

    /// Interprets the body as UTF-8 text, replacing invalid sequences.
    /// Streaming bodies are drained first (see [`Body::to_bytes`]).
    pub fn to_text(&self) -> String {
        String::from_utf8_lossy(&self.to_bytes()).into_owned()
    }

    /// The `index`-th [`SCRIPT_READ_CHUNK_BYTES`] segment of a buffered
    /// body, or `None` past the end — the backend of the script-facing
    /// `Response.read()` iteration.  Streaming bodies are buffered first
    /// (scripts operate on complete instances, paper §3.1).
    pub fn segment(&self, index: usize) -> Option<Bytes> {
        let bytes = self.to_bytes();
        let start = index.checked_mul(SCRIPT_READ_CHUNK_BYTES)?;
        if start >= bytes.len() {
            return None;
        }
        let end = (start + SCRIPT_READ_CHUNK_BYTES).min(bytes.len());
        Some(bytes.slice(start..end))
    }

    /// Appends data to the body, buffering a stream first.
    pub fn push(&mut self, chunk: impl Into<Bytes>) {
        let chunk = chunk.into();
        if chunk.is_empty() {
            return;
        }
        let existing = self.to_bytes();
        if existing.is_empty() {
            *self = Body::Full(chunk);
            return;
        }
        let mut buf = Vec::with_capacity(existing.len() + chunk.len());
        buf.extend_from_slice(&existing);
        buf.extend_from_slice(&chunk);
        *self = Body::Full(Bytes::from(buf));
    }

    /// Replaces the body content.
    pub fn replace(&mut self, data: impl Into<Bytes>) {
        *self = Body::Full(data.into());
    }

    /// Removes all content.
    pub fn clear(&mut self) {
        *self = Body::empty();
    }

    /// Wraps the body in a tee: chunks flow through unchanged, and a copy
    /// accumulates on the side.  When the stream finishes *cleanly* and the
    /// accumulated copy stayed within `cap` bytes, `on_complete` fires with
    /// the full body — this is how the proxy cache captures a streamed
    /// response while forwarding it.  Oversized or failed streams simply
    /// never fire the callback (they stream through uncached).
    ///
    /// Full bodies fire the callback immediately (when within `cap`) and are
    /// returned unchanged.
    pub fn tee(self, cap: usize, on_complete: impl FnOnce(Bytes) + Send + 'static) -> Body {
        match self {
            Body::Full(bytes) => {
                if bytes.len() <= cap {
                    on_complete(bytes.clone());
                }
                Body::Full(bytes)
            }
            Body::Stream(stream) => {
                let declared = stream.declared_len;
                Body::stream(
                    TeeSource {
                        inner: Body::Stream(stream),
                        copy: Some(Vec::new()),
                        cap,
                        declared,
                        on_complete: Some(Box::new(on_complete)),
                    },
                    declared,
                )
            }
        }
    }
}

/// The [`ChunkSource`] behind [`Body::tee`].
struct TeeSource {
    inner: Body,
    /// The accumulating side copy; dropped the moment it would exceed `cap`.
    copy: Option<Vec<u8>>,
    cap: usize,
    /// The length the message framing promised, if any: a clean end that
    /// does not match it must not fire the callback (a short instance is
    /// not a complete instance, however cleanly its source stopped).
    declared: Option<u64>,
    on_complete: Option<Box<dyn FnOnce(Bytes) + Send>>,
}

impl ChunkSource for TeeSource {
    fn may_block(&self) -> bool {
        // The tee adds no waiting of its own: it blocks exactly when the
        // wrapped body does.
        self.inner.may_block()
    }

    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        match self.inner.read_chunk() {
            Ok(Some(chunk)) => {
                if let Some(copy) = &mut self.copy {
                    if copy.len() + chunk.len() > self.cap {
                        self.copy = None; // over budget: stream through uncached
                    } else {
                        copy.extend_from_slice(&chunk);
                    }
                }
                Ok(Some(chunk))
            }
            Ok(None) => {
                if let (Some(copy), Some(callback)) = (self.copy.take(), self.on_complete.take()) {
                    if self.declared.is_none_or(|n| copy.len() as u64 == n) {
                        callback(Bytes::from(copy));
                    }
                }
                Ok(None)
            }
            Err(e) => {
                self.copy = None;
                self.on_complete = None;
                Err(e)
            }
        }
    }
}

impl Default for Body {
    fn default() -> Body {
        Body::empty()
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Full(b) => f.debug_tuple("Body::Full").field(&b.len()).finish(),
            Body::Stream(s) => f
                .debug_struct("Body::Stream")
                .field("declared_len", &s.declared_len)
                .finish(),
        }
    }
}

/// Full bodies compare by content; streaming bodies compare by identity
/// (two handles are equal only when they share the same underlying stream).
impl PartialEq for Body {
    fn eq(&self, other: &Body) -> bool {
        match (self, other) {
            (Body::Full(a), Body::Full(b)) => a == b,
            (Body::Stream(a), Body::Stream(b)) => Arc::ptr_eq(&a.state, &b.state),
            _ => false,
        }
    }
}

impl Eq for Body {}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::from_bytes(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::from_bytes(Bytes::from(s.into_bytes()))
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::from_bytes(Bytes::from(v))
    }
}

impl From<Bytes> for Body {
    fn from(b: Bytes) -> Body {
        Body::from_bytes(b)
    }
}

/// An HTTP request as seen by Na Kika's scripting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URI.  For proxied requests this is the absolute URI.
    pub uri: Uri,
    /// True for HTTP/1.1, false for HTTP/1.0.
    pub version_11: bool,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Body,
    /// IP address of the client that sent the request (known to the proxy
    /// even though it is not part of the wire format); used by policy
    /// predicates such as the digital-library protection in Figure 5.
    pub client_ip: IpAddr,
}

impl Request {
    /// Creates a GET request for `uri` from an unspecified client.
    pub fn get(uri: &str) -> Request {
        Request {
            method: Method::Get,
            uri: Uri::parse(uri).unwrap_or_else(|_| Uri::http("invalid.local", 80, "/")),
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        }
    }

    /// Creates a request with the given method and URI.
    pub fn new(method: Method, uri: Uri) -> Request {
        Request {
            method,
            uri,
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        }
    }

    /// Builder-style helper setting the client IP.
    pub fn with_client_ip(mut self, ip: IpAddr) -> Request {
        self.client_ip = ip;
        self
    }

    /// Builder-style helper setting a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Builder-style helper setting the body and Content-Length.
    pub fn with_body(mut self, body: impl Into<Body>) -> Request {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
        self
    }

    /// The site this request targets (authority of the origin URI).
    pub fn site(&self) -> String {
        self.uri.to_origin().site()
    }

    /// The `Host` header value to send, synthesised from the URI if missing.
    pub fn host_header(&self) -> String {
        self.headers
            .get("host")
            .map(str::to_string)
            .unwrap_or_else(|| self.uri.authority())
    }
}

/// An HTTP response as seen by Na Kika's scripting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// True for HTTP/1.1.
    pub version_11: bool,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Body,
}

impl Response {
    /// Creates a response with the given status and an empty body.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            version_11: true,
            headers: Headers::new(),
            body: Body::empty(),
        }
    }

    /// A `200 OK` response carrying `body` with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Body>) -> Response {
        let body = body.into();
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", content_type);
        r.headers.set("Content-Length", body.len().to_string());
        r.body = body;
        r
    }

    /// A `200 OK` response whose body streams from `source`.  When
    /// `declared_len` is known the response carries `Content-Length`;
    /// otherwise the serializer emits it with chunked transfer encoding.
    pub fn ok_stream(
        content_type: &str,
        source: impl ChunkSource + 'static,
        declared_len: Option<u64>,
    ) -> Response {
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", content_type);
        if let Some(len) = declared_len {
            r.headers.set("Content-Length", len.to_string());
        }
        r.body = Body::stream(source, declared_len);
        r
    }

    /// An error response with a short plain-text body, as produced by
    /// `Request.terminate(code)` in scripts.
    pub fn error(status: StatusCode) -> Response {
        let body = Body::from(format!("{}\n", status));
        let mut r = Response::new(status);
        r.headers.set("Content-Type", "text/plain");
        r.headers.set("Content-Length", body.len().to_string());
        r.body = body;
        r
    }

    /// A redirect (302) to `location`.
    pub fn redirect(location: &str) -> Response {
        let mut r = Response::new(StatusCode::FOUND);
        r.headers.set("Location", location);
        r.headers.set("Content-Length", "0");
        r
    }

    /// A temporary redirect (307) to `location`: the client must retry
    /// with the same method, unlike the method-rewriting 302.
    pub fn redirect_temporary(location: &str) -> Response {
        let mut r = Response::new(StatusCode::TEMPORARY_REDIRECT);
        r.headers.set("Location", location);
        r.headers.set("Content-Length", "0");
        r
    }

    /// Builder-style helper setting a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Replaces the body and fixes up Content-Length.
    pub fn set_body(&mut self, body: impl Into<Body>) {
        self.body = body.into();
        self.headers
            .set("Content-Length", self.body.len().to_string());
    }

    /// Content type without parameters, defaulting to
    /// `application/octet-stream`.
    pub fn content_type(&self) -> String {
        self.headers
            .content_type()
            .unwrap_or("application/octet-stream")
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn body_accounting_and_edits() {
        let mut b = Body::empty();
        assert!(b.is_empty());
        b.push(Bytes::from_static(b"hello "));
        b.push(Bytes::from_static(b""));
        b.push(Bytes::from_static(b"world"));
        assert_eq!(b.len(), 11);
        assert_eq!(b.to_text(), "hello world");
        b.replace("x");
        assert_eq!(b.to_text(), "x");
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn body_single_buffer_is_zero_copy() {
        let data = Bytes::from_static(b"payload");
        let b = Body::from_bytes(data.clone());
        // Full bodies return the same underlying buffer.
        assert_eq!(b.to_bytes().as_ptr(), data.as_ptr());
    }

    #[test]
    fn full_bodies_read_out_in_bounded_chunks() {
        let mut b = Body::from_bytes(vec![7u8; STREAM_CHUNK_BYTES * 2 + 10]);
        let mut sizes = Vec::new();
        while let Some(chunk) = b.read_chunk().unwrap() {
            sizes.push(chunk.len());
        }
        assert_eq!(sizes, vec![STREAM_CHUNK_BYTES, STREAM_CHUNK_BYTES, 10]);
    }

    #[test]
    fn streaming_body_drains_and_buffers() {
        let chunks = vec![Bytes::from_static(b"ab"), Bytes::from_static(b"cd")];
        let mut b = Body::stream_from_iter(chunks, Some(4));
        assert!(b.is_stream());
        assert_eq!(b.len(), 4);
        assert_eq!(b.size_hint(), Some(4));
        b.buffer().unwrap();
        assert!(!b.is_stream());
        assert_eq!(b.to_text(), "abcd");
    }

    #[test]
    fn stream_clones_share_the_underlying_source() {
        let b = Body::stream_from_iter(vec![Bytes::from_static(b"once")], None);
        let clone = b.clone();
        assert_eq!(b, clone, "clones compare equal by identity");
        assert_eq!(&b.to_bytes()[..], b"once");
        // The clone sees the buffered result, not a second pull.
        assert_eq!(&clone.to_bytes()[..], b"once");
    }

    #[test]
    fn stream_errors_surface_through_buffer() {
        struct Failing(u32);
        impl ChunkSource for Failing {
            fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
                self.0 += 1;
                if self.0 == 1 {
                    Ok(Some(Bytes::from_static(b"partial")))
                } else {
                    Err(io::Error::other("peer closed mid-body"))
                }
            }
        }
        let mut b = Body::stream(Failing(0), Some(100));
        let err = b.buffer().unwrap_err();
        assert!(err.to_string().contains("peer closed"));
        // Subsequent consumption keeps reporting failure, never retries.
        assert!(b.buffer().is_err());
        assert!(b.to_bytes().is_empty());
    }

    #[test]
    fn tee_fires_on_clean_completion_within_cap() {
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let body = Body::stream_from_iter(
            vec![Bytes::from_static(b"hello "), Bytes::from_static(b"world")],
            None,
        );
        let teed = body.tee(1024, move |bytes| {
            assert_eq!(&bytes[..], b"hello world");
            flag.store(true, Ordering::SeqCst);
        });
        assert_eq!(teed.to_text(), "hello world");
        assert!(fired.load(Ordering::SeqCst));
        // An oversized stream passes through but never fires.
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let body = Body::stream_from_iter(vec![Bytes::from(vec![1u8; 64])], None);
        let teed = body.tee(16, move |_| flag.store(true, Ordering::SeqCst));
        assert_eq!(teed.to_bytes().len(), 64);
        assert!(!fired.load(Ordering::SeqCst));
        // A short-but-clean stream (fewer bytes than declared) must not
        // fire either: a truncated instance is not a complete instance.
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let body = Body::stream_from_iter(vec![Bytes::from_static(b"short")], Some(100));
        let teed = body.tee(1024, move |_| flag.store(true, Ordering::SeqCst));
        assert_eq!(teed.to_bytes().len(), 5);
        assert!(!fired.load(Ordering::SeqCst));
    }

    #[test]
    fn buffering_is_capped_but_streaming_is_not() {
        // A stream longer than the buffering limit errors out of buffer()...
        struct Endless;
        impl ChunkSource for Endless {
            fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
                Ok(Some(Bytes::from(vec![0u8; STREAM_CHUNK_BYTES])))
            }
        }
        let mut b = Body::stream(Endless, None);
        let err = b.buffer().unwrap_err();
        assert!(err.to_string().contains("buffering limit"), "{err}");
        // ...and a hostile declared length must not size an allocation: the
        // clamp means this returns quickly without reserving 64 GiB.
        let mut b = Body::stream(
            std::iter::once(Bytes::from_static(b"tiny")),
            Some(64 * 1024 * 1024 * 1024),
        );
        b.buffer().unwrap();
        assert_eq!(b.to_text(), "tiny");
    }

    #[test]
    fn segment_iteration_matches_script_reads() {
        let body = Body::from_bytes(vec![9u8; SCRIPT_READ_CHUNK_BYTES + 5]);
        assert_eq!(body.segment(0).unwrap().len(), SCRIPT_READ_CHUNK_BYTES);
        assert_eq!(body.segment(1).unwrap().len(), 5);
        assert!(body.segment(2).is_none());
    }

    #[test]
    fn request_builders() {
        let r = Request::get("http://med.nyu.edu/simm/1")
            .with_header("User-Agent", "test")
            .with_body("data");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.site(), "med.nyu.edu");
        assert_eq!(r.headers.get("user-agent"), Some("test"));
        assert_eq!(r.headers.content_length(), Some(4));
        assert_eq!(r.host_header(), "med.nyu.edu");
    }

    #[test]
    fn request_site_strips_nakika_suffix() {
        let r = Request::get("http://med.nyu.edu.nakika.net/simm/1");
        assert_eq!(r.site(), "med.nyu.edu");
    }

    #[test]
    fn response_constructors() {
        let r = Response::ok("text/html", "<p>hi</p>");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.content_length(), Some(9));
        let e = Response::error(StatusCode::UNAUTHORIZED);
        assert!(e.body.to_text().contains("401"));
        let d = Response::redirect("http://elsewhere/");
        assert_eq!(d.status, StatusCode::FOUND);
        assert_eq!(d.headers.get("location"), Some("http://elsewhere/"));
    }

    #[test]
    fn response_set_body_updates_length() {
        let mut r = Response::ok("text/plain", "aaa");
        r.set_body("bbbbb");
        assert_eq!(r.headers.content_length(), Some(5));
        assert_eq!(r.content_type(), "text/plain");
    }
}
