//! HTTP request methods.

use crate::error::{HttpError, Result};
use std::fmt;

/// An HTTP request method.
///
/// Na Kika's policy objects can predicate on the request method (the paper
/// gives methods third precedence after resource URLs and client addresses),
/// so the type implements cheap equality and ordering.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Method {
    /// `GET` — safe, cacheable retrieval.
    Get,
    /// `HEAD` — like GET without a body.
    Head,
    /// `POST` — submit data; not cacheable by default.
    Post,
    /// `PUT` — replace a resource.
    Put,
    /// `DELETE` — remove a resource.
    Delete,
    /// `OPTIONS` — capability discovery.
    Options,
    /// `TRACE` — diagnostic loop-back.
    Trace,
    /// `CONNECT` — tunnel establishment.
    Connect,
    /// `PATCH` — partial modification.
    Patch,
    /// Any other token (extension methods).
    Extension(String),
}

impl Method {
    /// Parses a method token.
    ///
    /// Unknown but syntactically valid tokens become [`Method::Extension`];
    /// empty or non-token input is an error.
    pub fn parse(s: &str) -> Result<Method> {
        if s.is_empty() || !s.bytes().all(is_token_byte) {
            return Err(HttpError::UnknownMethod(s.to_string()));
        }
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "TRACE" => Method::Trace,
            "CONNECT" => Method::Connect,
            "PATCH" => Method::Patch,
            other => Method::Extension(other.to_string()),
        })
    }

    /// Returns the canonical textual form of the method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Trace => "TRACE",
            Method::Connect => "CONNECT",
            Method::Patch => "PATCH",
            Method::Extension(s) => s,
        }
    }

    /// True for methods whose responses may be cached (GET and HEAD).
    pub fn is_cacheable(&self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }

    /// True for methods considered safe (no server-side state change).
    pub fn is_safe(&self) -> bool {
        matches!(
            self,
            Method::Get | Method::Head | Method::Options | Method::Trace
        )
    }

    /// True for idempotent methods.
    pub fn is_idempotent(&self) -> bool {
        self.is_safe() || matches!(self, Method::Put | Method::Delete)
    }
}

fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.' |
        b'^' | b'_' | b'`' | b'|' | b'~' | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Method {
    type Err = HttpError;
    fn from_str(s: &str) -> Result<Self> {
        Method::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_methods() {
        assert_eq!(Method::parse("GET").unwrap(), Method::Get);
        assert_eq!(Method::parse("POST").unwrap(), Method::Post);
        assert_eq!(Method::parse("DELETE").unwrap(), Method::Delete);
    }

    #[test]
    fn extension_methods_round_trip() {
        let m = Method::parse("PURGE").unwrap();
        assert_eq!(m, Method::Extension("PURGE".to_string()));
        assert_eq!(m.as_str(), "PURGE");
    }

    #[test]
    fn rejects_invalid_tokens() {
        assert!(Method::parse("").is_err());
        assert!(Method::parse("GE T").is_err());
        assert!(Method::parse("GET\r").is_err());
    }

    #[test]
    fn cacheability_and_safety() {
        assert!(Method::Get.is_cacheable());
        assert!(Method::Head.is_cacheable());
        assert!(!Method::Post.is_cacheable());
        assert!(Method::Get.is_safe());
        assert!(!Method::Put.is_safe());
        assert!(Method::Put.is_idempotent());
        assert!(!Method::Post.is_idempotent());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(Method::Options.to_string(), "OPTIONS");
    }
}
