//! HTTP/1.1 substrate for the Na Kika edge-side computing network.
//!
//! The Na Kika paper (Grimm et al., NSDI 2006) builds on Apache 2.0 for HTTP
//! processing.  This crate provides the equivalent substrate from scratch: an
//! HTTP/1.1 message model (requests, responses, headers, URIs, status codes),
//! a streaming body abstraction modelled after Apache's *bucket brigades*, a
//! parser and serializer, the web's expiration-based caching semantics, and
//! the matching primitives (URL prefixes, CIDR blocks, lightweight regular
//! expressions) that Na Kika's predicate-based policy selection relies on.
//!
//! The crate is deliberately dependency-light: messages carry their bodies as
//! [`bytes::Bytes`] chunks so that higher layers (the scripting pipeline) can
//! stream data without copying, exactly as the paper's byte-array extension to
//! SpiderMonkey avoids copies between Apache and the script engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_control;
pub mod error;
pub mod headers;
pub mod message;
pub mod method;
pub mod parse;
pub mod pattern;
pub mod serialize;
pub mod status;
pub mod uri;

pub use cache_control::{CacheControl, Freshness};
pub use error::{HttpError, Result};
pub use headers::Headers;
pub use message::{Body, BodyStream, ChunkSource, Request, Response, STREAM_CHUNK_BYTES};
pub use method::Method;
pub use parse::{
    parse_request, parse_response, parse_response_head, BodyFraming, ChunkedDecoder, ParseOutcome,
    ResponseHead,
};
pub use serialize::{serialize_request, serialize_response, ResponseWriter};
pub use status::StatusCode;
pub use uri::Uri;
