//! Error types for HTTP parsing and message handling.

use std::fmt;

/// Result alias used throughout the HTTP substrate.
pub type Result<T> = std::result::Result<T, HttpError>;

/// Errors produced while parsing or constructing HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or status line is malformed.
    MalformedStartLine(String),
    /// A header line could not be parsed.
    MalformedHeader(String),
    /// The HTTP method is not recognised.
    UnknownMethod(String),
    /// The HTTP version is not supported (only 1.0 and 1.1 are).
    UnsupportedVersion(String),
    /// The URI could not be parsed.
    InvalidUri(String),
    /// The status code is outside 100..=599.
    InvalidStatus(u16),
    /// A chunked body was malformed.
    MalformedChunk(String),
    /// The Content-Length header was present but not a valid integer.
    InvalidContentLength(String),
    /// The message body exceeded the configured limit.
    BodyTooLarge {
        /// Limit in bytes that was exceeded.
        limit: usize,
    },
    /// The header block exceeded the configured byte or count limit.
    /// Distinct from [`HttpError::BodyTooLarge`] so servers can answer
    /// 431 (header flood) rather than 413 (oversized payload).
    HeadersTooLarge {
        /// Limit (bytes or header count, per context) that was exceeded.
        limit: usize,
    },
    /// The input ended before a complete message was available.
    Incomplete,
    /// A CIDR block or address pattern was malformed.
    InvalidPattern(String),
    /// Wrapper for I/O errors when reading or writing sockets.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::MalformedStartLine(s) => write!(f, "malformed start line: {s}"),
            HttpError::MalformedHeader(s) => write!(f, "malformed header: {s}"),
            HttpError::UnknownMethod(s) => write!(f, "unknown method: {s}"),
            HttpError::UnsupportedVersion(s) => write!(f, "unsupported HTTP version: {s}"),
            HttpError::InvalidUri(s) => write!(f, "invalid URI: {s}"),
            HttpError::InvalidStatus(c) => write!(f, "invalid status code: {c}"),
            HttpError::MalformedChunk(s) => write!(f, "malformed chunk: {s}"),
            HttpError::InvalidContentLength(s) => write!(f, "invalid content length: {s}"),
            HttpError::BodyTooLarge { limit } => write!(f, "body exceeds limit of {limit} bytes"),
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "headers exceed limit of {limit}")
            }
            HttpError::Incomplete => write!(f, "incomplete message"),
            HttpError::InvalidPattern(s) => write!(f, "invalid pattern: {s}"),
            HttpError::Io(s) => write!(f, "i/o error: {s}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HttpError::MalformedStartLine("GET".to_string());
        assert!(e.to_string().contains("GET"));
        let e = HttpError::BodyTooLarge { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: HttpError = io.into();
        assert!(matches!(e, HttpError::Io(_)));
    }
}
