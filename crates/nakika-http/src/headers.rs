//! Case-insensitive, order-preserving HTTP header map.

use std::fmt;

/// A single header entry (name preserved as sent, matched case-insensitively).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HeaderEntry {
    /// Header name as originally written.
    pub name: String,
    /// Header value.
    pub value: String,
}

/// An ordered multimap of HTTP headers.
///
/// Header names are matched ASCII case-insensitively (per RFC 7230) while the
/// original spelling and the insertion order are preserved, which matters for
/// proxies that must forward messages faithfully.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Headers {
    entries: Vec<HeaderEntry>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Number of header entries (counting duplicates separately).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the first value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
            .map(|e| e.value.as_str())
    }

    /// Returns all values for `name` in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.name.eq_ignore_ascii_case(name))
            .map(|e| e.value.as_str())
            .collect()
    }

    /// True if a header with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Appends a header, keeping any existing values for the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push(HeaderEntry {
            name: name.into(),
            value: value.into(),
        });
    }

    /// Sets a header, replacing all existing values for the same name.
    ///
    /// This is the operation exposed to scripts as `Response.setHeader` in the
    /// paper's Figure 2.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        self.remove(&name);
        self.append(name, value);
    }

    /// Removes all values for `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.name.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|e| (e.name.as_str(), e.value.as_str()))
    }

    /// Returns the value of `Content-Length` parsed as an integer, if present
    /// and valid.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }

    /// Returns the value of `Content-Type`, if present (without parameters).
    pub fn content_type(&self) -> Option<&str> {
        self.get("content-type")
            .map(|v| v.split(';').next().unwrap_or(v).trim())
    }

    /// True if the message uses chunked transfer encoding.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| v.to_ascii_lowercase().contains("chunked"))
            .unwrap_or(false)
    }

    /// True if the connection should be kept alive after this message,
    /// given the HTTP version in use.
    pub fn keep_alive(&self, version_11: bool) -> bool {
        match self.get("connection").map(|v| v.to_ascii_lowercase()) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => version_11,
        }
    }

    /// Extracts cookie pairs from all `Cookie` headers.
    ///
    /// The paper's vocabularies expose cookie access to scripts; this is the
    /// parsing backend.
    pub fn cookies(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for value in self.get_all("cookie") {
            for pair in value.split(';') {
                let pair = pair.trim();
                if let Some(eq) = pair.find('=') {
                    out.push((
                        pair[..eq].trim().to_string(),
                        pair[eq + 1..].trim().to_string(),
                    ));
                } else if !pair.is_empty() {
                    out.push((pair.to_string(), String::new()));
                }
            }
        }
        out
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{}: {}", e.name, e.value)?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Headers {
    type Item = (&'a str, &'a str);
    type IntoIter = std::vec::IntoIter<(&'a str, &'a str)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(|e| (e.name.as_str(), e.value.as_str()))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl FromIterator<(String, String)> for Headers {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut h = Headers::new();
        for (k, v) in iter {
            h.append(k, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = Headers::new();
        h.append("X-A", "1");
        h.append("x-a", "2");
        assert_eq!(h.get_all("X-A"), vec!["1", "2"]);
        h.set("X-A", "3");
        assert_eq!(h.get_all("X-A"), vec!["3"]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn remove_counts() {
        let mut h = Headers::new();
        h.append("A", "1");
        h.append("a", "2");
        h.append("B", "3");
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove("A"), 0);
    }

    #[test]
    fn content_length_and_type() {
        let mut h = Headers::new();
        h.set("Content-Length", " 42 ");
        h.set("Content-Type", "image/jpeg; q=1");
        assert_eq!(h.content_length(), Some(42));
        assert_eq!(h.content_type(), Some("image/jpeg"));
        h.set("Content-Length", "abc");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn chunked_detection() {
        let mut h = Headers::new();
        assert!(!h.is_chunked());
        h.set("Transfer-Encoding", "gzip, Chunked");
        assert!(h.is_chunked());
    }

    #[test]
    fn keep_alive_defaults() {
        let mut h = Headers::new();
        assert!(h.keep_alive(true));
        assert!(!h.keep_alive(false));
        h.set("Connection", "close");
        assert!(!h.keep_alive(true));
        h.set("Connection", "keep-alive");
        assert!(h.keep_alive(false));
    }

    #[test]
    fn cookie_parsing() {
        let mut h = Headers::new();
        h.append("Cookie", "session=abc; user=bob");
        h.append("Cookie", "flag");
        let cookies = h.cookies();
        assert_eq!(cookies.len(), 3);
        assert_eq!(cookies[0], ("session".to_string(), "abc".to_string()));
        assert_eq!(cookies[1], ("user".to_string(), "bob".to_string()));
        assert_eq!(cookies[2], ("flag".to_string(), String::new()));
    }

    #[test]
    fn display_and_iteration_order() {
        let mut h = Headers::new();
        h.append("B", "2");
        h.append("A", "1");
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![("B", "2"), ("A", "1")]);
        assert_eq!(h.to_string(), "B: 2\nA: 1\n");
    }
}
