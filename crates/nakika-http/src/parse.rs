//! Incremental HTTP/1.x parser for requests and responses.
//!
//! The parser works on a byte slice and reports either a complete message and
//! how many bytes it consumed, or that more data is needed.  This matches the
//! way Apache hands data to its filter chain: piecemeal, as it arrives on the
//! socket.

use crate::error::{HttpError, Result};
use crate::headers::Headers;
use crate::message::{Body, Request, Response};
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::Uri;
use bytes::Bytes;
use std::net::{IpAddr, Ipv4Addr};

/// Maximum accepted header block size (64 KiB), a defence against
/// client-initiated resource exhaustion at the admission-control stage.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Default maximum body size accepted by the parser (64 MiB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Outcome of a parse attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome<T> {
    /// A complete message was parsed; `consumed` bytes were used.
    Complete {
        /// The parsed message.
        message: T,
        /// Number of input bytes consumed.
        consumed: usize,
    },
    /// More input is required before a message can be produced.
    Partial,
}

/// Parses an HTTP request from `input`.
pub fn parse_request(input: &[u8]) -> Result<ParseOutcome<Request>> {
    let head = match find_head(input)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Partial),
    };
    let text = std::str::from_utf8(&input[..head])
        .map_err(|_| HttpError::MalformedHeader("non-utf8 header block".to_string()))?;
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine("empty".to_string()))?;
    let mut parts = start.split_whitespace();
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version_11 = parse_version(version)?;
    let headers = parse_headers(lines)?;
    let uri = resolve_request_uri(target, &headers)?;

    let body_start = head + 4;
    let (body, consumed) = parse_body(&input[body_start..], &headers, &method)?;
    let (body, body_len) = match body {
        Some(b) => b,
        None => return Ok(ParseOutcome::Partial),
    };
    let _ = consumed;
    Ok(ParseOutcome::Complete {
        message: Request {
            method,
            uri,
            version_11,
            headers,
            body,
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        },
        consumed: body_start + body_len,
    })
}

/// Parses an HTTP response from `input`.
pub fn parse_response(input: &[u8]) -> Result<ParseOutcome<Response>> {
    let head = match find_head(input)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Partial),
    };
    let text = std::str::from_utf8(&input[..head])
        .map_err(|_| HttpError::MalformedHeader("non-utf8 header block".to_string()))?;
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine("empty".to_string()))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version_11 = parse_version(version)?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let status = StatusCode::new(code)?;
    let headers = parse_headers(lines)?;

    let body_start = head + 4;
    let (body, _) = parse_body(&input[body_start..], &headers, &Method::Get)?;
    let (body, body_len) = match body {
        Some(b) => b,
        None => return Ok(ParseOutcome::Partial),
    };
    Ok(ParseOutcome::Complete {
        message: Response {
            status,
            version_11,
            headers,
            body,
        },
        consumed: body_start + body_len,
    })
}

/// Locates the end of the header block (`\r\n\r\n`), enforcing
/// [`MAX_HEADER_BYTES`].
fn find_head(input: &[u8]) -> Result<Option<usize>> {
    let limit = input.len().min(MAX_HEADER_BYTES + 4);
    if let Some(pos) = window_find(&input[..limit], b"\r\n\r\n") {
        Ok(Some(pos))
    } else if input.len() > MAX_HEADER_BYTES {
        Err(HttpError::BodyTooLarge {
            limit: MAX_HEADER_BYTES,
        })
    } else {
        Ok(None)
    }
}

fn window_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn parse_version(v: &str) -> Result<bool> {
    match v {
        "HTTP/1.1" => Ok(true),
        "HTTP/1.0" => Ok(false),
        other => Err(HttpError::UnsupportedVersion(other.to_string())),
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let idx = line
            .find(':')
            .ok_or_else(|| HttpError::MalformedHeader(line.to_string()))?;
        let name = line[..idx].trim();
        if name.is_empty() {
            return Err(HttpError::MalformedHeader(line.to_string()));
        }
        headers.append(name, line[idx + 1..].trim());
    }
    Ok(headers)
}

fn resolve_request_uri(target: &str, headers: &Headers) -> Result<Uri> {
    if target.starts_with('/') {
        let host = headers.get("host").unwrap_or("");
        if host.is_empty() {
            Uri::parse(target)
        } else {
            Uri::parse(&format!("http://{host}{target}"))
        }
    } else {
        Uri::parse(target)
    }
}

/// Parses the message body.  Returns `Ok((None, 0))` when more data is needed,
/// otherwise the body and the number of body bytes consumed.
#[allow(clippy::type_complexity)]
fn parse_body(
    input: &[u8],
    headers: &Headers,
    method: &Method,
) -> Result<(Option<(Body, usize)>, usize)> {
    if headers.is_chunked() {
        return match parse_chunked(input)? {
            Some((body, used)) => Ok((Some((body, used)), used)),
            None => Ok((None, 0)),
        };
    }
    let len = match headers.content_length() {
        Some(n) => n,
        None => {
            if headers.contains("content-length") {
                return Err(HttpError::InvalidContentLength(
                    headers.get("content-length").unwrap_or("").to_string(),
                ));
            }
            // No body expected for requests / responses without
            // Content-Length; bodies terminated by connection close are
            // handled at the transport layer, not here.
            let _ = method;
            0
        }
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge {
            limit: MAX_BODY_BYTES,
        });
    }
    if input.len() < len {
        return Ok((None, 0));
    }
    let body = Body::from_bytes(Bytes::copy_from_slice(&input[..len]));
    Ok((Some((body, len)), len))
}

/// Parses a chunked body; returns `None` when incomplete.
fn parse_chunked(input: &[u8]) -> Result<Option<(Body, usize)>> {
    let mut chunks = Vec::new();
    let mut pos = 0usize;
    let mut total = 0usize;
    loop {
        let line_end = match window_find(&input[pos..], b"\r\n") {
            Some(i) => pos + i,
            None => return Ok(None),
        };
        let size_str = std::str::from_utf8(&input[pos..line_end])
            .map_err(|_| HttpError::MalformedChunk("non-utf8 size".to_string()))?;
        let size_str = size_str.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::MalformedChunk(size_str.to_string()))?;
        pos = line_end + 2;
        if size == 0 {
            // Trailer section: skip until the final CRLF CRLF (we accept the
            // common bare "\r\n" terminator too).
            let rest = &input[pos..];
            if rest.len() >= 2 && &rest[..2] == b"\r\n" {
                return Ok(Some((Body::from_chunks(chunks), pos + 2)));
            }
            match window_find(rest, b"\r\n\r\n") {
                Some(i) => return Ok(Some((Body::from_chunks(chunks), pos + i + 4))),
                None => return Ok(None),
            }
        }
        total += size;
        if total > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge {
                limit: MAX_BODY_BYTES,
            });
        }
        if input.len() < pos + size + 2 {
            return Ok(None);
        }
        chunks.push(Bytes::copy_from_slice(&input[pos..pos + size]));
        if &input[pos + size..pos + size + 2] != b"\r\n" {
            return Err(HttpError::MalformedChunk("missing chunk CRLF".to_string()));
        }
        pos += size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete<T>(o: ParseOutcome<T>) -> (T, usize) {
        match o {
            ParseOutcome::Complete { message, consumed } => (message, consumed),
            ParseOutcome::Partial => panic!("expected complete message"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let raw = b"GET /index.html HTTP/1.1\r\nHost: www.google.com\r\nUser-Agent: nakika\r\n\r\n";
        let (req, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.uri.host, "www.google.com");
        assert_eq!(req.uri.path, "/index.html");
        assert!(req.version_11);
        assert_eq!(req.headers.get("user-agent"), Some("nakika"));
    }

    #[test]
    fn parses_absolute_form_request() {
        let raw = b"GET http://med.nyu.edu/simm/1 HTTP/1.0\r\n\r\n";
        let (req, _) = complete(parse_request(raw).unwrap());
        assert_eq!(req.uri.host, "med.nyu.edu");
        assert!(!req.version_11);
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /submit HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello";
        let (req, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(req.body.to_text(), "hello");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"POST /s HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhel";
        assert_eq!(parse_request(raw).unwrap(), ParseOutcome::Partial);
        let raw = b"GET / HTTP/1.1\r\nHost: a\r\n";
        assert_eq!(parse_request(raw).unwrap(), ParseOutcome::Partial);
    }

    #[test]
    fn consumed_excludes_pipelined_data() {
        let raw = b"GET / HTTP/1.1\r\nHost: a\r\n\r\nGET /next HTTP/1.1\r\n";
        let (_, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(&raw[consumed..], b"GET /next HTTP/1.1\r\n");
    }

    #[test]
    fn parses_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 4\r\n\r\nbody";
        let (resp, consumed) = complete(parse_response(raw).unwrap());
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body.to_text(), "body");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (resp, consumed) = complete(parse_response(raw).unwrap());
        assert_eq!(resp.body.to_text(), "Wikipedia");
        assert_eq!(resp.body.chunks().len(), 2);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn chunked_partial_and_malformed() {
        let partial = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWik";
        assert_eq!(parse_response(partial).unwrap(), ParseOutcome::Partial);
        let bad = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n";
        assert!(parse_response(bad).is_err());
    }

    #[test]
    fn rejects_malformed_messages() {
        assert!(parse_request(b"NOT A REQUEST\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/2.0\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 999 Weird\r\n\r\n").is_err());
        assert!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n").is_err(),
            "non-numeric content length"
        );
    }

    #[test]
    fn header_block_size_limit() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert!(matches!(
            parse_request(&raw),
            Err(HttpError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn response_without_length_has_empty_body() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        let (resp, _) = complete(parse_response(raw).unwrap());
        assert!(resp.body.is_empty());
    }
}
