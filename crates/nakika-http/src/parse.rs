//! Incremental HTTP/1.x parser for requests and responses.
//!
//! The parser works on a byte slice and reports either a complete message and
//! how many bytes it consumed, or that more data is needed.  This matches the
//! way Apache hands data to its filter chain: piecemeal, as it arrives on the
//! socket.

use crate::error::{HttpError, Result};
use crate::headers::Headers;
use crate::message::{Body, Request, Response};
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::Uri;
use bytes::Bytes;
use std::net::{IpAddr, Ipv4Addr};

/// Maximum accepted header block size (64 KiB), a defence against
/// client-initiated resource exhaustion at the admission-control stage.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Default maximum body size accepted by the parser (64 MiB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Maximum number of header fields accepted per message.  Header floods
/// (endless short `X-Flood-N: x` lines) stay under [`MAX_HEADER_BYTES`]
/// for a long time; the count cap rejects them after one parse attempt.
pub const MAX_HEADER_COUNT: usize = 128;

/// Outcome of a parse attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome<T> {
    /// A complete message was parsed; `consumed` bytes were used.
    Complete {
        /// The parsed message.
        message: T,
        /// Number of input bytes consumed.
        consumed: usize,
    },
    /// More input is required before a message can be produced.
    Partial,
}

/// Parses an HTTP request from `input`.
pub fn parse_request(input: &[u8]) -> Result<ParseOutcome<Request>> {
    let head = match find_head(input)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Partial),
    };
    let text = std::str::from_utf8(&input[..head])
        .map_err(|_| HttpError::MalformedHeader("non-utf8 header block".to_string()))?;
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine("empty".to_string()))?;
    let mut parts = start.split_whitespace();
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version_11 = parse_version(version)?;
    let headers = parse_headers(lines)?;
    let uri = resolve_request_uri(target, &headers)?;

    let body_start = head + 4;
    let (body, consumed) = parse_body(&input[body_start..], &headers, &method)?;
    let (body, body_len) = match body {
        Some(b) => b,
        None => return Ok(ParseOutcome::Partial),
    };
    let _ = consumed;
    Ok(ParseOutcome::Complete {
        message: Request {
            method,
            uri,
            version_11,
            headers,
            body,
            client_ip: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        },
        consumed: body_start + body_len,
    })
}

/// How a response body is delimited on the wire, as determined by its
/// headers.  The streaming transport reads the head with
/// [`parse_response_head`] and then pulls body bytes according to this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// `Content-Length: n` — exactly `n` body bytes follow.
    Length(u64),
    /// `Transfer-Encoding: chunked` — body framed by a [`ChunkedDecoder`].
    Chunked,
    /// Neither header: no body (bodies terminated only by connection close
    /// are not produced by this stack, matching the buffered parser).
    None,
}

/// A parsed response head: the message with an *empty* body, how many input
/// bytes the head consumed, and how the body that follows is framed.
#[derive(Debug)]
pub struct ResponseHead {
    /// Status line and headers, body left empty.
    pub response: Response,
    /// How the body that follows is delimited.
    pub framing: BodyFraming,
}

/// Parses just the head of an HTTP response — the entry point of the
/// streaming read path, which then pulls the body incrementally instead of
/// waiting for it to be complete in one buffer.
pub fn parse_response_head(input: &[u8]) -> Result<ParseOutcome<ResponseHead>> {
    let head = match find_head(input)? {
        Some(h) => h,
        None => return Ok(ParseOutcome::Partial),
    };
    let text = std::str::from_utf8(&input[..head])
        .map_err(|_| HttpError::MalformedHeader("non-utf8 header block".to_string()))?;
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine("empty".to_string()))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let version_11 = parse_version(version)?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| HttpError::MalformedStartLine(start.to_string()))?;
    let status = StatusCode::new(code)?;
    let headers = parse_headers(lines)?;
    let framing = if headers.is_chunked() {
        BodyFraming::Chunked
    } else {
        match headers.content_length() {
            Some(n) => BodyFraming::Length(n as u64),
            None => {
                if headers.contains("content-length") {
                    return Err(HttpError::InvalidContentLength(
                        headers.get("content-length").unwrap_or("").to_string(),
                    ));
                }
                BodyFraming::None
            }
        }
    };
    Ok(ParseOutcome::Complete {
        message: ResponseHead {
            response: Response {
                status,
                version_11,
                headers,
                body: Body::empty(),
            },
            framing,
        },
        consumed: head + 4,
    })
}

/// Parses an HTTP response from `input` — the head via
/// [`parse_response_head`], then the complete body (so the two entry
/// points cannot diverge on head parsing).
pub fn parse_response(input: &[u8]) -> Result<ParseOutcome<Response>> {
    let (head, body_start) = match parse_response_head(input)? {
        ParseOutcome::Complete { message, consumed } => (message, consumed),
        ParseOutcome::Partial => return Ok(ParseOutcome::Partial),
    };
    let mut response = head.response;
    let (body, _) = parse_body(&input[body_start..], &response.headers, &Method::Get)?;
    let (body, body_len) = match body {
        Some(b) => b,
        None => return Ok(ParseOutcome::Partial),
    };
    response.body = body;
    Ok(ParseOutcome::Complete {
        message: response,
        consumed: body_start + body_len,
    })
}

/// Locates the end of the header block (`\r\n\r\n`), enforcing
/// [`MAX_HEADER_BYTES`].
fn find_head(input: &[u8]) -> Result<Option<usize>> {
    let limit = input.len().min(MAX_HEADER_BYTES + 4);
    if let Some(pos) = window_find(&input[..limit], b"\r\n\r\n") {
        Ok(Some(pos))
    } else if input.len() > MAX_HEADER_BYTES {
        Err(HttpError::HeadersTooLarge {
            limit: MAX_HEADER_BYTES,
        })
    } else {
        Ok(None)
    }
}

fn window_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn parse_version(v: &str) -> Result<bool> {
    match v {
        "HTTP/1.1" => Ok(true),
        "HTTP/1.0" => Ok(false),
        other => Err(HttpError::UnsupportedVersion(other.to_string())),
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers> {
    let mut headers = Headers::new();
    let mut count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        count += 1;
        if count > MAX_HEADER_COUNT {
            return Err(HttpError::HeadersTooLarge {
                limit: MAX_HEADER_COUNT,
            });
        }
        let idx = line
            .find(':')
            .ok_or_else(|| HttpError::MalformedHeader(line.to_string()))?;
        let name = line[..idx].trim();
        if name.is_empty() {
            return Err(HttpError::MalformedHeader(line.to_string()));
        }
        headers.append(name, line[idx + 1..].trim());
    }
    Ok(headers)
}

fn resolve_request_uri(target: &str, headers: &Headers) -> Result<Uri> {
    if target.starts_with('/') {
        let host = headers.get("host").unwrap_or("");
        if host.is_empty() {
            Uri::parse(target)
        } else {
            Uri::parse(&format!("http://{host}{target}"))
        }
    } else {
        Uri::parse(target)
    }
}

/// Parses the message body.  Returns `Ok((None, 0))` when more data is needed,
/// otherwise the body and the number of body bytes consumed.
#[allow(clippy::type_complexity)]
fn parse_body(
    input: &[u8],
    headers: &Headers,
    method: &Method,
) -> Result<(Option<(Body, usize)>, usize)> {
    if headers.is_chunked() {
        return match parse_chunked(input)? {
            Some((body, used)) => Ok((Some((body, used)), used)),
            None => Ok((None, 0)),
        };
    }
    let len = match headers.content_length() {
        Some(n) => n,
        None => {
            if headers.contains("content-length") {
                return Err(HttpError::InvalidContentLength(
                    headers.get("content-length").unwrap_or("").to_string(),
                ));
            }
            // No body expected for requests / responses without
            // Content-Length; bodies terminated by connection close are
            // handled at the transport layer, not here.
            let _ = method;
            0
        }
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge {
            limit: MAX_BODY_BYTES,
        });
    }
    if input.len() < len {
        return Ok((None, 0));
    }
    let body = Body::from_bytes(Bytes::copy_from_slice(&input[..len]));
    Ok((Some((body, len)), len))
}

/// Parses a chunked body; returns `None` when incomplete.  One-shot wrapper
/// over the incremental [`ChunkedDecoder`] so both paths share one state
/// machine.
fn parse_chunked(input: &[u8]) -> Result<Option<(Body, usize)>> {
    // This path materializes the whole body, so the buffering cap applies.
    let mut decoder = ChunkedDecoder::with_limit(MAX_BODY_BYTES);
    let mut chunks = Vec::new();
    let consumed = decoder.feed(input, &mut chunks)?;
    if decoder.is_done() {
        Ok(Some((Body::from_chunks(chunks), consumed)))
    } else {
        Ok(None)
    }
}

/// Incremental decoder for `Transfer-Encoding: chunked` bodies.
///
/// Feed it wire bytes as they arrive; it emits decoded data chunks and
/// reports when the terminating `0`-size chunk (plus trailers) has been
/// seen.  Unlike the one-shot [`parse_response`] path it never needs the
/// whole body in one buffer, which is what lets the transport relay a
/// chunked upstream response one bounded chunk at a time.
///
/// ```
/// use nakika_http::parse::ChunkedDecoder;
///
/// let mut decoder = ChunkedDecoder::new();
/// let mut out = Vec::new();
/// // Bytes may arrive split at any boundary:
/// decoder.feed(b"4\r\nWi", &mut out).unwrap();
/// decoder.feed(b"ki\r\n0\r\n\r\n", &mut out).unwrap();
/// assert!(decoder.is_done());
/// let data: Vec<u8> = out.iter().flat_map(|c| c.to_vec()).collect();
/// assert_eq!(data, b"Wiki");
/// ```
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkedState,
    /// Carry-over for a size line or trailer split across feeds.
    pending: Vec<u8>,
    /// Total decoded bytes so far.
    total: usize,
    /// Cap on `total`, set by consumers that *materialize* the body
    /// ([`ChunkedDecoder::with_limit`]).  The default pass-through decoder
    /// is unlimited: a relay's memory is bounded by its chunk window, not
    /// by body size, and capping it would break exactly the large-instance
    /// streaming it exists for.
    max_total: Option<usize>,
}

#[derive(Debug, PartialEq, Eq)]
enum ChunkedState {
    /// Waiting for a complete `size[;ext]\r\n` line in `pending`.
    SizeLine,
    /// `n` data bytes (plus the trailing CRLF) still to come.
    Data { remaining: usize },
    /// The CRLF after a data chunk (0, 1 or 2 bytes still missing).
    DataCrlf { missing: usize },
    /// After the 0-size chunk: consuming trailers until a bare CRLF.
    Trailer,
    /// Terminator seen; any further input belongs to the next message.
    Done,
}

impl Default for ChunkedDecoder {
    fn default() -> ChunkedDecoder {
        ChunkedDecoder::new()
    }
}

impl ChunkedDecoder {
    /// A decoder positioned at the start of a chunked body, with no cap on
    /// the decoded size (pass-through relays are bounded by their chunk
    /// window, not the body).
    pub fn new() -> ChunkedDecoder {
        ChunkedDecoder {
            state: ChunkedState::SizeLine,
            pending: Vec::new(),
            total: 0,
            max_total: None,
        }
    }

    /// A decoder that refuses bodies larger than `max_total` decoded bytes
    /// — for consumers that materialize the body in memory (the one-shot
    /// parser, buffered clients).
    pub fn with_limit(max_total: usize) -> ChunkedDecoder {
        ChunkedDecoder {
            max_total: Some(max_total),
            ..ChunkedDecoder::new()
        }
    }

    /// True once the terminating chunk and trailer section were consumed.
    pub fn is_done(&self) -> bool {
        self.state == ChunkedState::Done
    }

    /// Consumes as much of `input` as the body extends over, appending
    /// decoded data chunks to `out`.  Returns how many input bytes were
    /// consumed; once [`is_done`](ChunkedDecoder::is_done) turns true the
    /// unconsumed remainder belongs to the next message on the connection.
    pub fn feed(&mut self, input: &[u8], out: &mut Vec<Bytes>) -> Result<usize> {
        let mut pos = 0usize;
        while pos < input.len() {
            match &mut self.state {
                ChunkedState::SizeLine => {
                    // Accumulate into `pending` until the line's CRLF shows.
                    let Some(nl) = input[pos..].iter().position(|&b| b == b'\n') else {
                        self.pending.extend_from_slice(&input[pos..]);
                        if self.pending.len() > 1024 {
                            return Err(HttpError::MalformedChunk(
                                "unterminated chunk size line".to_string(),
                            ));
                        }
                        return Ok(input.len());
                    };
                    self.pending.extend_from_slice(&input[pos..pos + nl]);
                    pos += nl + 1;
                    let line = std::mem::take(&mut self.pending);
                    let line = std::str::from_utf8(&line)
                        .map_err(|_| HttpError::MalformedChunk("non-utf8 size".to_string()))?;
                    let size_str = line
                        .trim_end_matches('\r')
                        .split(';')
                        .next()
                        .unwrap_or("")
                        .trim();
                    let size = usize::from_str_radix(size_str, 16)
                        .map_err(|_| HttpError::MalformedChunk(size_str.to_string()))?;
                    // checked_add: a hostile peer can send a size line like
                    // `ffffffffffffffff` that parses but would overflow the
                    // running total (debug panic / release guard bypass).
                    self.total = self
                        .total
                        .checked_add(size)
                        .ok_or(HttpError::BodyTooLarge {
                            limit: self.max_total.unwrap_or(usize::MAX),
                        })?;
                    if let Some(limit) = self.max_total {
                        if self.total > limit {
                            return Err(HttpError::BodyTooLarge { limit });
                        }
                    }
                    self.state = if size == 0 {
                        ChunkedState::Trailer
                    } else {
                        ChunkedState::Data { remaining: size }
                    };
                }
                ChunkedState::Data { remaining } => {
                    let take = (*remaining).min(input.len() - pos);
                    out.push(Bytes::copy_from_slice(&input[pos..pos + take]));
                    pos += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        self.state = ChunkedState::DataCrlf { missing: 2 };
                    }
                }
                ChunkedState::DataCrlf { missing } => {
                    let expect = if *missing == 2 { b'\r' } else { b'\n' };
                    if input[pos] != expect {
                        return Err(HttpError::MalformedChunk("missing chunk CRLF".to_string()));
                    }
                    pos += 1;
                    *missing -= 1;
                    if *missing == 0 {
                        self.state = ChunkedState::SizeLine;
                    }
                }
                ChunkedState::Trailer => {
                    // Trailer lines end at a bare CRLF; we accept the common
                    // immediate terminator and skip any trailer fields.
                    let Some(nl) = input[pos..].iter().position(|&b| b == b'\n') else {
                        self.pending.extend_from_slice(&input[pos..]);
                        if self.pending.len() > MAX_HEADER_BYTES {
                            return Err(HttpError::HeadersTooLarge {
                                limit: MAX_HEADER_BYTES,
                            });
                        }
                        return Ok(input.len());
                    };
                    self.pending.extend_from_slice(&input[pos..pos + nl]);
                    pos += nl + 1;
                    let line = std::mem::take(&mut self.pending);
                    if line.is_empty() || line == b"\r" {
                        self.state = ChunkedState::Done;
                        return Ok(pos);
                    }
                }
                ChunkedState::Done => return Ok(pos),
            }
        }
        Ok(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete<T>(o: ParseOutcome<T>) -> (T, usize) {
        match o {
            ParseOutcome::Complete { message, consumed } => (message, consumed),
            ParseOutcome::Partial => panic!("expected complete message"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let raw = b"GET /index.html HTTP/1.1\r\nHost: www.google.com\r\nUser-Agent: nakika\r\n\r\n";
        let (req, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.uri.host, "www.google.com");
        assert_eq!(req.uri.path, "/index.html");
        assert!(req.version_11);
        assert_eq!(req.headers.get("user-agent"), Some("nakika"));
    }

    #[test]
    fn parses_absolute_form_request() {
        let raw = b"GET http://med.nyu.edu/simm/1 HTTP/1.0\r\n\r\n";
        let (req, _) = complete(parse_request(raw).unwrap());
        assert_eq!(req.uri.host, "med.nyu.edu");
        assert!(!req.version_11);
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /submit HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello";
        let (req, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(req.body.to_text(), "hello");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"POST /s HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhel";
        assert_eq!(parse_request(raw).unwrap(), ParseOutcome::Partial);
        let raw = b"GET / HTTP/1.1\r\nHost: a\r\n";
        assert_eq!(parse_request(raw).unwrap(), ParseOutcome::Partial);
    }

    #[test]
    fn consumed_excludes_pipelined_data() {
        let raw = b"GET / HTTP/1.1\r\nHost: a\r\n\r\nGET /next HTTP/1.1\r\n";
        let (_, consumed) = complete(parse_request(raw).unwrap());
        assert_eq!(&raw[consumed..], b"GET /next HTTP/1.1\r\n");
    }

    #[test]
    fn parses_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 4\r\n\r\nbody";
        let (resp, consumed) = complete(parse_response(raw).unwrap());
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body.to_text(), "body");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (resp, consumed) = complete(parse_response(raw).unwrap());
        assert_eq!(resp.body.to_text(), "Wikipedia");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn chunked_partial_and_malformed() {
        let partial = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWik";
        assert_eq!(parse_response(partial).unwrap(), ParseOutcome::Partial);
        let bad = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n";
        assert!(parse_response(bad).is_err());
    }

    #[test]
    fn rejects_malformed_messages() {
        assert!(parse_request(b"NOT A REQUEST\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/2.0\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 999 Weird\r\n\r\n").is_err());
        assert!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n").is_err(),
            "non-numeric content length"
        );
    }

    #[test]
    fn header_block_size_limit() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert!(matches!(
            parse_request(&raw),
            Err(HttpError::HeadersTooLarge { .. })
        ));
    }

    #[test]
    fn header_count_limit() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADER_COUNT + 1 {
            raw.extend(format!("X-Flood-{i}: x\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(matches!(
            parse_request(&raw),
            Err(HttpError::HeadersTooLarge { .. })
        ));
        // One under the cap still parses.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADER_COUNT - 1 {
            raw.extend(format!("X-Ok-{i}: x\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(parse_request(&raw).is_ok());
    }

    #[test]
    fn response_head_reports_framing() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789";
        let (head, consumed) = complete(parse_response_head(raw).unwrap());
        assert_eq!(head.framing, BodyFraming::Length(10));
        assert_eq!(&raw[consumed..], b"0123456789");
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
        let (head, _) = complete(parse_response_head(raw).unwrap());
        assert_eq!(head.framing, BodyFraming::Chunked);
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        let (head, _) = complete(parse_response_head(raw).unwrap());
        assert_eq!(head.framing, BodyFraming::None);
        assert!(matches!(
            parse_response_head(b"HTTP/1.1 200 OK\r\nContent-Len"),
            Ok(ParseOutcome::Partial)
        ));
    }

    #[test]
    fn chunked_decoder_matches_one_shot_at_every_split() {
        let wire = b"4\r\nWiki\r\n5\r\npedia\r\n10\r\n 0123456789abcde\r\n0\r\nX-T: v\r\n\r\nNEXT";
        let body_len = wire.len() - 4;
        for split in 0..=body_len {
            let mut decoder = ChunkedDecoder::new();
            let mut out = Vec::new();
            let a = decoder.feed(&wire[..split], &mut out).unwrap();
            assert_eq!(a, split, "everything before Done is consumed");
            let b = decoder.feed(&wire[split..], &mut out).unwrap();
            assert!(decoder.is_done(), "split at {split}");
            assert_eq!(&wire[split + b..], b"NEXT", "remainder is the next message");
            let data: Vec<u8> = out.iter().flat_map(|c| c.to_vec()).collect();
            assert_eq!(data, b"Wikipedia 0123456789abcde");
        }
    }

    #[test]
    fn chunked_decoder_guards_its_total_against_overflow_and_limit() {
        // A size line of ffffffffffffffff parses as usize::MAX; adding it to
        // a non-zero running total must not overflow (debug panic / release
        // guard bypass) — it is an oversize error.
        let mut decoder = ChunkedDecoder::with_limit(MAX_BODY_BYTES);
        let mut out = Vec::new();
        assert!(matches!(
            decoder.feed(b"1\r\nX\r\nffffffffffffffff\r\n", &mut out),
            Err(HttpError::BodyTooLarge { .. })
        ));
        // A limited decoder refuses totals past its cap...
        let mut decoder = ChunkedDecoder::with_limit(16);
        let mut out = Vec::new();
        assert!(matches!(
            decoder.feed(b"20\r\n", &mut out),
            Err(HttpError::BodyTooLarge { .. })
        ));
        // ...while the default pass-through decoder has no body-size cap
        // (a relay's memory is bounded by its chunk window, not the body).
        let mut decoder = ChunkedDecoder::new();
        let mut out = Vec::new();
        let huge = format!("{:x}\r\n", 10usize * MAX_BODY_BYTES);
        decoder.feed(huge.as_bytes(), &mut out).unwrap();
        decoder.feed(&[b'z'; 64], &mut out).unwrap();
        assert_eq!(out.iter().map(|c| c.len()).sum::<usize>(), 64);
    }

    #[test]
    fn chunked_decoder_rejects_malformed_input() {
        let mut decoder = ChunkedDecoder::new();
        let mut out = Vec::new();
        assert!(decoder.feed(b"zz\r\n", &mut out).is_err());
        let mut decoder = ChunkedDecoder::new();
        assert!(decoder.feed(b"2\r\nab__", &mut out).is_err());
    }

    #[test]
    fn response_without_length_has_empty_body() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        let (resp, _) = complete(parse_response(raw).unwrap());
        assert!(resp.body.is_empty());
    }
}
